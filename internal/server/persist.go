package server

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/journal"
)

// The durable-state glue between the server core and internal/journal:
// OpenJournal recovers the store and the operation registry from a data
// directory (snapshot + write-ahead-log tail), then routes every
// subsequent mutation into the journal. Recovery replays the log as an
// ordered sequence of reconfigurations; operations that were in flight
// when the process died are settled as failed with the stable
// INTERRUPTED error code, because their outstanding vehicle
// acknowledgements can never arrive (the ECM writes each ack exactly
// once to the link it arrived on).

// RecoveryStats summarizes what OpenJournal replayed.
type RecoveryStats struct {
	// Journaled reports whether durable state is enabled.
	Journaled bool
	// SnapshotTime is when the loaded snapshot was taken (zero when the
	// directory had none).
	SnapshotTime time.Time
	// Records counts log records replayed after the snapshot.
	Records int
	// Interrupted counts operations settled as INTERRUPTED.
	Interrupted int
	// TornTail reports that the final log record was truncated or
	// corrupt and was dropped.
	TornTail bool
}

// RecoveryStats returns what OpenJournal replayed; the zero value when
// the server runs memory-only.
func (s *Server) RecoveryStats() RecoveryStats { return s.recovery }

// OpenJournal loads the durable state under dir and attaches the
// journal, so every later mutation is persisted. It must be called
// right after New, before the server takes traffic. An empty or fresh
// directory yields an empty server with journaling on.
func (s *Server) OpenJournal(dir string) error {
	j, rec, err := journal.Open(dir, journal.Options{
		Logf: func(format string, args ...any) { s.logf(format, args...) },
	})
	if err != nil {
		return err
	}
	s.recoverFrom(rec)
	j.SetSnapshotSource(s.stateImage)
	s.jn = j
	s.store.SetJournal(j)
	s.logf("server: recovered %d users, %d vehicles, %d apps; replayed %d records, %d operations interrupted",
		len(s.store.users), len(s.store.vehicles), len(s.store.apps), s.recovery.Records, s.recovery.Interrupted)
	// Resume interrupted rollouts only now that the journal is attached:
	// the continuations append state-machine records of their own.
	for _, resume := range s.rolloutResume {
		go resume()
	}
	s.rolloutResume = nil
	return nil
}

// Close shuts the server down cleanly: vehicle links are closed, a
// final snapshot compacts the journal (so a routine restart replays an
// empty tail instead of relying on crash recovery) and the journal is
// flushed and closed. Safe to call on a memory-only server.
func (s *Server) Close() error {
	s.pushCancel()
	s.pusher.CloseAll()
	if s.jn == nil {
		return nil
	}
	if err := s.jn.Snapshot(); err != nil {
		s.logf("server: final snapshot: %v", err)
	}
	err := s.jn.Close()
	s.mu.Lock()
	sh := s.shipper
	s.mu.Unlock()
	if sh != nil {
		// After the journal is closed nothing new can commit; draining the
		// shipper last lets every durable byte reach the followers.
		sh.Close()
	}
	return err
}

// Journal exposes the attached journal (nil when memory-only); tests
// use it to simulate crashes and force compaction.
func (s *Server) Journal() *journal.Journal { return s.jn }

// Health reports readiness plus the recovery counters of GET
// /v1/healthz. The server only serves after recovery completed, so a
// reachable endpoint answers "ok" — degrading to "degraded" if the
// journal has failed since — and orchestrators gate traffic on both.
func (s *Server) Health() api.Health {
	h := api.Health{
		Status:                "ok",
		RecoveredRecords:      s.recovery.Records,
		InterruptedOperations: s.recovery.Interrupted,
		TornTail:              s.recovery.TornTail,
		SnapshotAge:           -1,
	}
	h.Shard, h.Role, h.ShardEpoch = s.ShardInfo()
	h.Replication = s.replicationHealth()
	if s.jn == nil {
		return h
	}
	h.Journal = true
	if err := s.jn.Err(); err != nil {
		// Durability is gone (sticky commit failure): the server still
		// serves, but orchestrators must stop routing traffic here.
		h.Status = "degraded"
		h.JournalError = err.Error()
	}
	if st := s.jn.Stats(); !st.LastSnapshot.IsZero() {
		h.SnapshotAge = time.Since(st.LastSnapshot).Seconds()
	}
	return h
}

// recoverFrom rebuilds the server from a snapshot image and the
// replayed log tail.
func (s *Server) recoverFrom(rec *journal.Recovery) {
	// open tracks operations created but not yet settled; settled keeps
	// the terminal snapshots of recently completed ones so they survive
	// a restart with their real outcome. Batch children have no records
	// of their own — their outcome is derived from the store below.
	open := make(map[string]api.Operation)
	settled := make(map[string]api.Operation)
	var maxSeq uint64
	bump := func(id string) {
		if n := opSeqOf(id); n > maxSeq {
			maxSeq = n
		}
	}

	// rollouts accumulates the rollout state machines seen in the image
	// and the log tail; rebuilt into the registry (and resumed) below.
	rollouts := make(map[string]*rolloutReplayState)
	var maxRolloutSeq uint64

	if img := rec.Image; img != nil {
		s.store.loadImage(img)
		// Shard identity rides the snapshot: a follower promoted from a
		// replicated journal recovers the dead leader's shard name and
		// highest epoch, which BecomeLeader then surpasses.
		if img.Shard != "" && s.shardID == "" {
			s.shardID = img.Shard
		}
		if img.ShardEpoch > s.shardEpoch {
			s.shardEpoch = img.ShardEpoch
		}
		maxSeq = img.OpSeq
		for _, op := range img.OpenOps {
			open[op.ID] = op
			bump(op.ID)
		}
		for _, op := range img.SettledOps {
			settled[op.ID] = op
			bump(op.ID)
		}
		maxRolloutSeq = img.RolloutSeq
		for _, ri := range img.Rollouts {
			rollouts[ri.ID] = &rolloutReplayState{img: ri}
		}
		s.recovery.SnapshotTime = time.Unix(img.TakenUnix, 0)
	}
	for _, r := range rec.Records {
		switch r.Type {
		case journal.TypeRolloutStarted:
			if r.Rollout == nil {
				continue
			}
			c := r.Rollout
			rollouts[c.ID] = &rolloutReplayState{img: journal.RolloutImage{
				ID: c.ID, User: c.User, FromApp: c.FromApp, ToApp: c.ToApp,
				Vehicles: c.Vehicles, Bounds: c.Bounds, Health: c.Health,
			}}
		case journal.TypeWavePromoted:
			if r.Rollout == nil {
				continue
			}
			if rr := rollouts[r.Rollout.ID]; rr != nil && r.Rollout.Wave > rr.img.Promoted {
				rr.img.Promoted = r.Rollout.Wave
			}
		case journal.TypeRolloutRolledBack:
			if r.Rollout == nil {
				continue
			}
			if rr := rollouts[r.Rollout.ID]; rr != nil {
				rr.img.RolledBack = true
				rr.img.Reason = r.Rollout.Reason
			}
		case journal.TypeRolloutDone:
			if r.Rollout == nil {
				continue
			}
			if rr := rollouts[r.Rollout.ID]; rr != nil {
				rr.done = true
				rr.final = r.Rollout.Final
			}
		case journal.TypeOpCreated:
			if r.Op == nil {
				continue
			}
			op := r.Op.Op
			bump(op.ID)
			for _, cid := range op.Children {
				bump(cid)
			}
			if _, done := settled[op.ID]; !done {
				open[op.ID] = op
			}
		case journal.TypeOpSettled:
			if r.Op == nil {
				continue
			}
			op := r.Op.Op
			bump(op.ID)
			delete(open, op.ID)
			settled[op.ID] = op
		case journal.TypeShardEpoch:
			if r.Epoch == nil {
				continue
			}
			if r.Epoch.Shard != "" && s.shardID == "" {
				s.shardID = r.Epoch.Shard
			}
			if r.Epoch.Epoch > s.shardEpoch {
				s.shardEpoch = r.Epoch.Epoch
			}
		default:
			s.store.applyRecord(r)
		}
	}

	// Settle every top-level operation still open as INTERRUPTED: its
	// pushes can never be acknowledged on this side of the restart.
	final := make(map[string]api.Operation, len(open)+len(settled))
	interrupted := 0
	for id, op := range settled {
		final[id] = op
	}
	for id, op := range open {
		if op.Parent != "" {
			continue // image-captured children are re-derived below
		}
		op.State = api.StateFailed
		op.Done = true
		op.Error = api.Errorf(api.CodeInterrupted,
			"server: operation interrupted by server restart")
		interrupted++
		final[id] = op
	}
	// Rebuild the children of every INTERRUPTED batch from the parent's
	// record and the recovered store: a deploy child succeeded exactly
	// when its InstalledAPP row is fully acknowledged (success == all
	// acks received); anything less is INTERRUPTED too, and a journaled
	// child settle (failed children carry one — their reason is not
	// derivable from the store) wins outright. The interrupted parent
	// then recomputes its tallies from those outcomes.
	//
	// Children of a *settled* parent are not resurrected (beyond their
	// journaled failures): the batch's history is closed, its tallies
	// ride the parent's settle record, and re-deriving outcomes from a
	// store that kept evolving after the batch (uninstalls, drops)
	// would rewrite history. A hole behind a settled parent is already
	// normal — registry retention evicts exactly those children.
	for id, op := range final {
		if len(op.Children) == 0 {
			continue
		}
		if op.Error == nil || op.Error.Code != api.CodeInterrupted {
			continue
		}
		succ, fail := 0, 0
		for i, cid := range op.Children {
			if child, done := settled[cid]; done {
				if child.State == api.StateSucceeded {
					succ++
				} else {
					fail++
				}
				final[cid] = child
				continue
			}
			child, ok := open[cid]
			if !ok {
				child = api.Operation{
					ID: cid, Kind: childKindOf(op.Kind), User: op.User, App: op.App, ToApp: op.ToApp, Parent: op.ID,
				}
				if i < len(op.Vehicles) {
					child.Vehicle = op.Vehicles[i]
				}
			}
			if s.deriveChildOutcome(&child) {
				interrupted++
			}
			if child.State == api.StateSucceeded {
				succ++
			} else {
				fail++
			}
			final[cid] = child
		}
		op.VehiclesSucceeded, op.VehiclesFailed = succ, fail
		final[id] = op
	}

	ids := make([]string, 0, len(final))
	for id := range final {
		ids = append(ids, id)
	}
	// Ids are zero-padded, so lexicographic order is creation order.
	sort.Strings(ids)
	s.mu.Lock()
	for _, id := range ids {
		op := final[id]
		s.ops[id] = &opRecord{op: op, launched: true, parent: op.Parent}
		s.opOrder = append(s.opOrder, id)
		// Rebind the idempotency key, so a client retrying a create across
		// the restart (or across a shard failover onto this server) gets
		// the recovered operation instead of a duplicate.
		if op.IdempotencyKey != "" {
			s.idem[op.IdempotencyKey] = settledClaim(id)
		}
	}
	s.opSeq = maxSeq
	s.mu.Unlock()

	s.recoverRollouts(rollouts, maxRolloutSeq)

	s.recovery.Journaled = true
	s.recovery.Records = len(rec.Records)
	s.recovery.Interrupted = interrupted
	s.recovery.TornTail = rec.TornTail
}

// rolloutReplayState is the recovered essence of one rollout's state
// machine: its identity record plus how far the log says it got.
type rolloutReplayState struct {
	img   journal.RolloutImage
	done  bool
	final string
}

// recoverRollouts rebuilds the rollout registry and stages the resume
// continuations. The policy: a rollout with a durable rollout_done is
// closed; one with a durable rollout_rolled_back resumes its fleet
// rollback (idempotent — already-downgraded vehicles are skipped); an
// open rollout resumes forward from the last promoted wave boundary
// only if the boundary is clean — no vehicle past it holds a committed
// To row. A dirty boundary means the crash interrupted a wave whose
// health window died with the process, so the fleet rolls back.
func (s *Server) recoverRollouts(rollouts map[string]*rolloutReplayState, maxRolloutSeq uint64) {
	ids := make([]string, 0, len(rollouts))
	for id := range rollouts {
		ids = append(ids, id)
		if n := rolloutSeqOf(id); n > maxRolloutSeq {
			maxRolloutSeq = n
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		rr := rollouts[id]
		bounds := append([]int(nil), rr.img.Bounds...)
		rec := &rolloutRecord{
			st: api.RolloutStatus{
				ID: id, User: rr.img.User, From: rr.img.FromApp, To: rr.img.ToApp,
				State:    api.RolloutRunning,
				Vehicles: append([]core.VehicleID(nil), rr.img.Vehicles...),
				Waves:    waveStatuses(bounds),
			},
			bounds:   bounds,
			promoted: rr.img.Promoted,
		}
		if rr.img.Health != nil {
			rec.health = *rr.img.Health
		}
		for w := 0; w < rr.img.Promoted && w < len(rec.st.Waves); w++ {
			rec.st.Waves[w].Started = true
			rec.st.Waves[w].Promoted = true
		}
		rec.st.CurrentWave = rr.img.Promoted
		reason := rr.img.Reason
		code := api.CodeRolloutUnhealthy
		if strings.Contains(reason, "operator abort") {
			code = api.CodeRolloutAborted
		}
		switch {
		case rr.done && rr.final == "rolled_back":
			rec.st.State = api.RolloutRolledBack
			rec.st.GateReason = reason
			rec.st.Done = true
			rec.st.Error = api.Errorf(code, "server: rollout %s rolled back: %s", id, reason)
		case rr.done:
			rec.st.State = api.RolloutSucceeded
			rec.st.CurrentWave = len(bounds)
			for w := range rec.st.Waves {
				rec.st.Waves[w].Started = true
				rec.st.Waves[w].Promoted = true
			}
			rec.st.Done = true
		case rr.img.RolledBack:
			rec.st.State = api.RolloutRollingBack
			rec.st.GateReason = reason
			s.rolloutResume = append(s.rolloutResume, func() {
				s.rollbackRollout(id, reason, code, true)
			})
		default:
			// Clean-boundary rule: the wave in flight at the crash left
			// committed To rows exactly when some vehicle past the last
			// promoted boundary holds one.
			promotedBound := 0
			if rr.img.Promoted > 0 && rr.img.Promoted <= len(bounds) {
				promotedBound = bounds[rr.img.Promoted-1]
			}
			dirty := false
			for _, v := range rr.img.Vehicles[min(promotedBound, len(rr.img.Vehicles)):] {
				if _, ok := s.store.InstalledApp(v, rr.img.ToApp); ok {
					dirty = true
					break
				}
			}
			startWave := rr.img.Promoted
			if dirty {
				interruptedReason := fmt.Sprintf(
					"server restart interrupted wave %d with partial upgrades committed", startWave+1)
				s.rolloutResume = append(s.rolloutResume, func() {
					s.rollbackRollout(id, interruptedReason, api.CodeRolloutUnhealthy, false)
				})
			} else {
				s.rolloutResume = append(s.rolloutResume, func() {
					s.runRollout(id, startWave)
				})
			}
		}
		s.mu.Lock()
		s.rollouts[id] = rec
		s.rolloutOrder = append(s.rolloutOrder, id)
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.rolloutSeq = maxRolloutSeq
	s.mu.Unlock()
}

// rolloutSeqOf parses the numeric part of a rollout id ("ro-%08d"), 0
// for foreign ids.
func rolloutSeqOf(id string) uint64 {
	if len(id) < 4 || id[:3] != "ro-" {
		return 0
	}
	var n uint64
	for i := 3; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}

// deriveChildOutcome settles one child of an interrupted batch from the
// store and reports whether it was interrupted: a fully acknowledged
// deploy row proves success; everything else is interrupted, because
// the acks that would have finished it can never arrive. "Success" here
// is goal-state semantics: a vehicle whose row was already complete
// before the batch (an earlier deploy of the same app) reads as
// succeeded even if its child never ran — the claim the child's success
// makes, "the app runs acknowledged on this vehicle", is true either
// way (had the child run, it would have failed already_exists and
// journaled that settle).
func (s *Server) deriveChildOutcome(child *api.Operation) (wasInterrupted bool) {
	child.Done = true
	if child.Kind == api.OpDeploy {
		if row, ok := s.store.InstalledApp(child.Vehicle, child.App); ok && row.Complete() {
			child.State = api.StateSucceeded
			child.Total, child.Acked = len(row.Plugins), len(row.Plugins)
			return false
		}
	}
	// An upgrade child succeeded exactly when its commit record replaced
	// the old row with the new app's: the row swap is the transaction's
	// one visible effect. Anything less recovers to the old version and
	// reads as interrupted.
	if child.Kind == api.OpUpgrade {
		if row, ok := s.store.InstalledApp(child.Vehicle, child.ToApp); ok && row.Complete() {
			child.State = api.StateSucceeded
			child.Total, child.Acked = len(row.Plugins), len(row.Plugins)
			return false
		}
	}
	child.State = api.StateFailed
	child.Error = api.Errorf(api.CodeInterrupted,
		"server: operation interrupted by server restart")
	return true
}

// childKindOf maps a batch kind onto its per-vehicle child kind.
func childKindOf(kind api.OperationKind) api.OperationKind {
	switch kind {
	case api.OpBatchDeploy:
		return api.OpDeploy
	case api.OpBatchUninstall:
		return api.OpUninstall
	case api.OpBatchUpgrade:
		return api.OpUpgrade
	default:
		return kind
	}
}

// opSeqOf parses the numeric part of an operation id ("op-%08d"), 0
// for foreign ids.
func opSeqOf(id string) uint64 {
	if len(id) < 4 || id[:3] != "op-" {
		return 0
	}
	var n uint64
	for i := 3; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}

// stateImage builds the snapshot image for journal compaction: the
// full store plus the still-open operations and the id counter. It
// runs on the journal's writer goroutine; no appender ever waits on
// the journal while holding the locks it takes, so it cannot deadlock.
// The store part and the operation part are captured a moment apart —
// safe, because records enqueued in between land in the next segment
// and record application is idempotent.
func (s *Server) stateImage() *journal.StateImage {
	img := journal.NewStateImage()
	s.store.imageInto(img)
	s.mu.Lock()
	img.Shard = s.shardID
	img.ShardEpoch = s.shardEpoch
	img.OpSeq = s.opSeq
	for _, id := range s.opOrder {
		rec := s.ops[id]
		if rec == nil {
			continue
		}
		if rec.op.Done {
			img.SettledOps = append(img.SettledOps, snapshotOpLocked(rec))
		} else {
			img.OpenOps = append(img.OpenOps, snapshotOpLocked(rec))
		}
	}
	// Open rollouts ride the snapshot too, so compaction cannot lose a
	// state machine whose records predate the snapshot point. Terminal
	// rollouts are history and are left to registry retention.
	img.RolloutSeq = s.rolloutSeq
	for _, id := range s.rolloutOrder {
		rec := s.rollouts[id]
		if rec == nil || rec.st.Done {
			continue
		}
		health := rec.health
		img.Rollouts = append(img.Rollouts, journal.RolloutImage{
			ID: id, User: rec.st.User, FromApp: rec.st.From, ToApp: rec.st.To,
			Vehicles:   append([]core.VehicleID(nil), rec.st.Vehicles...),
			Bounds:     append([]int(nil), rec.bounds...),
			Health:     &health,
			Promoted:   rec.promoted,
			RolledBack: rec.st.State == api.RolloutRollingBack,
			Reason:     rec.st.GateReason,
		})
	}
	s.mu.Unlock()
	return img
}

// loadImage fills an empty store from a snapshot image; called before
// the store serves traffic. The image was freshly unmarshaled, so its
// slices are owned here and need no defensive copies.
func (s *Store) loadImage(img *journal.StateImage) {
	s.mu.Lock()
	for i := range img.Users {
		u := img.Users[i]
		s.users[u.ID] = &u
	}
	for i := range img.Vehicles {
		v := img.Vehicles[i]
		s.vehicles[v.ID] = &v
	}
	for i := range img.Apps {
		a := img.Apps[i]
		s.apps[a.Name] = &a
	}
	s.mu.Unlock()
	for i := range img.Installed {
		row := img.Installed[i]
		sh := s.shard(row.Vehicle)
		sh.mu.Lock()
		sh.rows[row.Vehicle] = append(sh.rows[row.Vehicle], &row)
		sh.mu.Unlock()
	}
}

// imageInto captures the store into a snapshot image, deterministic
// order throughout (stable snapshots diff cleanly).
func (s *Store) imageInto(img *journal.StateImage) {
	s.mu.RLock()
	img.Users = make([]api.User, 0, len(s.users))
	for _, u := range s.users {
		cp := *u
		cp.Vehicles = append([]core.VehicleID(nil), u.Vehicles...)
		img.Users = append(img.Users, cp)
	}
	img.Vehicles = make([]api.VehicleRecord, 0, len(s.vehicles))
	for _, v := range s.vehicles {
		img.Vehicles = append(img.Vehicles, snapshotVehicle(v))
	}
	img.Apps = make([]api.App, 0, len(s.apps))
	for _, a := range s.apps {
		img.Apps = append(img.Apps, copyApp(a))
	}
	s.mu.RUnlock()
	sort.Slice(img.Users, func(i, k int) bool { return img.Users[i].ID < img.Users[k].ID })
	sort.Slice(img.Vehicles, func(i, k int) bool { return img.Vehicles[i].ID < img.Vehicles[k].ID })
	sort.Slice(img.Apps, func(i, k int) bool { return img.Apps[i].Name < img.Apps[k].Name })
	for i := range s.installed {
		sh := &s.installed[i]
		sh.mu.RLock()
		for _, rows := range sh.rows {
			for _, r := range rows {
				img.Installed = append(img.Installed, snapshotRow(r))
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(img.Installed, func(i, k int) bool {
		a, b := &img.Installed[i], &img.Installed[k]
		if a.Vehicle != b.Vehicle {
			return a.Vehicle < b.Vehicle
		}
		return a.App < b.App
	})
}

// applyRecord applies one replayed store mutation. Application is
// idempotent: compaction may leave a record in the new segment whose
// effect the snapshot image already contains (the image is always at
// least as new as anything flushed before it), so every branch
// tolerates finding its work already done — and the richer state
// (e.g. a row with acks) always wins over a replayed older record.
func (s *Store) applyRecord(rec journal.Record) {
	switch rec.Type {
	case journal.TypeUserAdded:
		if rec.User == nil {
			return
		}
		s.mu.Lock()
		if _, ok := s.users[rec.User.ID]; !ok {
			s.users[rec.User.ID] = &User{ID: rec.User.ID}
		}
		s.mu.Unlock()
	case journal.TypeVehicleBound:
		if rec.Vehicle == nil {
			return
		}
		owner, conf := rec.Vehicle.Owner, rec.Vehicle.Conf
		s.mu.Lock()
		if _, dup := s.vehicles[conf.Vehicle]; !dup {
			u, ok := s.users[owner]
			if !ok {
				// Defensive: the user record always precedes its
				// vehicles in the log.
				u = &User{ID: owner}
				s.users[owner] = u
			}
			s.vehicles[conf.Vehicle] = &VehicleRecord{ID: conf.Vehicle, Owner: owner, Conf: conf}
			u.Vehicles = append(u.Vehicles, conf.Vehicle)
		}
		s.mu.Unlock()
	case journal.TypeAppUploaded:
		if rec.App == nil {
			return
		}
		s.mu.Lock()
		if _, dup := s.apps[rec.App.Name]; !dup {
			s.apps[rec.App.Name] = rec.App
		}
		s.mu.Unlock()
	case journal.TypeInstallRecorded:
		if rec.Install == nil || rec.Install.Row == nil {
			return
		}
		row := rec.Install.Row
		sh := s.shard(row.Vehicle)
		sh.mu.Lock()
		dup := false
		for _, r := range sh.rows[row.Vehicle] {
			if r.App == row.App {
				dup = true
				break
			}
		}
		if !dup {
			sh.rows[row.Vehicle] = append(sh.rows[row.Vehicle], row)
		}
		sh.mu.Unlock()
	case journal.TypeInstallAcked:
		if rec.Install == nil {
			return
		}
		sh := s.shard(rec.Install.Vehicle)
		sh.mu.Lock()
		markAckedLocked(sh, rec.Install.Vehicle, rec.Install.App, rec.Install.Plugin)
		sh.mu.Unlock()
	case journal.TypeInstallRemoved:
		if rec.Install == nil {
			return
		}
		sh := s.shard(rec.Install.Vehicle)
		sh.mu.Lock()
		removeRowLocked(sh, rec.Install.Vehicle, rec.Install.App)
		sh.mu.Unlock()
	case journal.TypePluginDropped:
		if rec.Install == nil {
			return
		}
		sh := s.shard(rec.Install.Vehicle)
		sh.mu.Lock()
		dropPluginLocked(sh, rec.Install.Vehicle, rec.Install.App, rec.Install.Plugin)
		sh.mu.Unlock()
	case journal.TypeUpgradeCommitted:
		// The commit point of a live upgrade: the old app's row is
		// replaced by the fully acknowledged new one. Idempotent — a
		// snapshot may already contain the new row, in which case the
		// old one is gone too and both branches are no-ops.
		if rec.Upgrade == nil || rec.Upgrade.Row == nil {
			return
		}
		row := rec.Upgrade.Row
		sh := s.shard(row.Vehicle)
		sh.mu.Lock()
		removeRowLocked(sh, row.Vehicle, rec.Upgrade.FromApp)
		dup := false
		for _, r := range sh.rows[row.Vehicle] {
			if r.App == row.App {
				dup = true
				break
			}
		}
		if !dup {
			sh.rows[row.Vehicle] = append(sh.rows[row.Vehicle], row)
		}
		sh.mu.Unlock()
	case journal.TypeUpgradeStarted, journal.TypeUpgradeRolledBack:
		// Row-neutral markers: an upgrade that never reached its commit
		// record resolves to the old row, which is exactly what the
		// store already holds. The started record is the write-ahead
		// intent (audit + crash diagnosis), the rolled-back record the
		// closure; neither mutates the table.
	}
}
