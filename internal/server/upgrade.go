package server

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/journal"
	"dynautosar/internal/plugin"
	"dynautosar/internal/verify"
)

// The live-upgrade pipeline: POST /v1/upgrade (and upgrade:batch) plan
// a version transition for an installed app, push one MsgUpgrade per
// plug-in to the running vehicle, and commit the InstalledAPP row swap
// only once every plug-in acknowledged its hot-swap. The vehicle side
// (internal/pirte, internal/ecm) quiesces each plug-in, transfers its
// exported state into the new version, health-probes it and rolls back
// on failure; a rollback nack settles the operation failed with the
// stable "rollback" error code and the server pushes compensating
// downgrades to any plug-in that had already swapped, so server record
// and vehicle runtime converge on the old version.
//
// This is the first scenario where server durability and the vehicle
// runtime must agree on a multi-step protocol; the journal carries it
// as a transaction:
//
//	upgrade_started   durable BEFORE the first push (write-ahead intent)
//	upgrade_committed replaces the old row with the acknowledged new one
//	upgrade_rolled_back closes a failed transition, rows untouched
//
// A crash between started and a settle record recovers to exactly the
// old version (the row was never touched); a crash after committed
// recovers to exactly the new one — never neither, never a mix.

// upgradeAckTimeout bounds the real-time wait for one upgrade's vehicle
// acknowledgements; a var so tests can shrink it.
var upgradeAckTimeout = 30 * time.Second

// upgradePlan is the vehicle-independent half of one upgrade: the new
// app's dependency-ordered deployments, packaged against the old row's
// recorded port ids (same-named ports keep their SW-C-scope identity).
// Like deployPlan it transfers between vehicles of equal configuration
// — here additionally requiring a structurally equal old row, which
// batch-deployed fleets have by construction (package-once/push-many
// assigns identical PICs).
type upgradePlan struct {
	conf   core.VehicleConf
	oldRow InstalledApp
	// sole records that the donor vehicle had no installed apps besides
	// the one being upgraded — the transfer precondition, mirroring
	// deployPlan's fresh flag: other installed apps change conflict
	// resolution, quota headroom and free port-id space, so such
	// vehicles always plan individually.
	sole  bool
	order []Deployment
	pics  map[core.PluginName]core.PIC
	raws  map[core.PluginName][]byte
	// oldRaws are the compensation packages: the old binaries re-packaged
	// with their recorded contexts, pushed to roll already-swapped
	// plug-ins back when a later plug-in of the same upgrade fails.
	oldOrder []Deployment
	oldRaws  map[core.PluginName][]byte
	// vplan is the verifier model built (and checked) by verifyUpgrade;
	// rollout start reuses it for the wave-prefix abortability check.
	vplan *verify.Plan
}

// UpgradeAsync starts a live in-place upgrade of fromApp to toApp on a
// running vehicle and returns its operation; the heavy lifting runs in
// the background and the operation settles as the vehicle acknowledges
// each plug-in swap.
func (s *Server) UpgradeAsync(user core.UserID, vehicleID core.VehicleID, fromApp, toApp core.AppName) (api.Operation, error) {
	return s.upgradeAsyncIdem("", user, vehicleID, fromApp, toApp)
}

func (s *Server) upgradeAsyncIdem(idemKey string, user core.UserID, vehicleID core.VehicleID, fromApp, toApp core.AppName) (api.Operation, error) {
	if err := s.precheckUpgrade(user, vehicleID, fromApp, toApp); err != nil {
		return api.Operation{}, err
	}
	rec := s.newOperation(api.OpUpgrade, user, vehicleID, fromApp, toApp, "", idemKey)
	id := rec.op.ID
	go func() {
		s.finishLaunch(id, s.upgrade(id, user, vehicleID, fromApp, toApp, nil))
	}()
	return s.operationSnapshot(id), nil
}

// Upgrade is the synchronous variant: it returns once the upgrade
// committed or failed (tests and in-process tooling).
func (s *Server) Upgrade(user core.UserID, vehicleID core.VehicleID, fromApp, toApp core.AppName) error {
	if err := s.precheckUpgrade(user, vehicleID, fromApp, toApp); err != nil {
		return err
	}
	rec := s.newOperation(api.OpUpgrade, user, vehicleID, fromApp, toApp, "", "")
	err := s.upgrade(rec.op.ID, user, vehicleID, fromApp, toApp, nil)
	s.finishLaunch(rec.op.ID, err)
	return err
}

// BatchUpgradeAsync starts a fleet-wide live upgrade with the batch
// engine's parent/child semantics and plan reuse.
func (s *Server) BatchUpgradeAsync(user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector, fromApp, toApp core.AppName) (api.Operation, error) {
	return s.batchUpgradeAsyncIdem("", user, vehicles, sel, fromApp, toApp)
}

func (s *Server) batchUpgradeAsyncIdem(idemKey string, user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector, fromApp, toApp core.AppName) (api.Operation, error) {
	if !s.store.HasApp(fromApp) {
		return api.Operation{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", fromApp)
	}
	if !s.store.HasApp(toApp) {
		return api.Operation{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", toApp)
	}
	if fromApp == toApp {
		return api.Operation{}, api.Errorf(api.CodeInvalidArgument, "server: upgrade from %s to itself", fromApp)
	}
	fleet, err := s.resolveFleet(user, vehicles, sel)
	if err != nil {
		return api.Operation{}, err
	}
	parentID, children := s.newBatchOperation(api.OpBatchUpgrade, api.OpUpgrade, user, fromApp, toApp, fleet, idemKey)
	go func() {
		cache := &planCache{}
		// An upgrade child blocks through its vehicle's swap round trip
		// (it must collect the acks before committing the row), so the
		// waits run off the worker pool: the pool dispatches, the
		// inflight semaphore bounds how many vehicles sit between push
		// and commit at once — the same backpressure shape as
		// deployChild's commit-wait hand-off.
		inflight := make(chan struct{}, batchInflight)
		var wg sync.WaitGroup
		s.runBatch(children, func(c batchChild) {
			inflight <- struct{}{}
			wg.Add(1)
			go func() {
				defer func() { <-inflight; wg.Done() }()
				s.finishLaunch(c.opID, s.upgrade(c.opID, user, c.vehicle, fromApp, toApp, cache))
			}()
		})
		wg.Wait()
		hits, misses := cache.upgradeStats()
		s.logf("server: upgrade batch %s over %d vehicles: plan cache %d hits / %d misses", parentID, len(fleet), hits, misses)
	}()
	return s.operationSnapshot(parentID), nil
}

// precheckUpgrade validates the cheap preconditions of an upgrade: the
// vehicle is known and owned, the old app is installed and fully
// acknowledged, the new app exists and is not installed yet.
func (s *Server) precheckUpgrade(user core.UserID, vehicleID core.VehicleID, fromApp, toApp core.AppName) error {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return api.Errorf(api.CodeNotFound, "server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return api.Errorf(api.CodePermissionDenied, "server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	if toApp == "" || fromApp == "" {
		return api.Errorf(api.CodeInvalidArgument, "server: upgrade needs both the installed app and its replacement")
	}
	if fromApp == toApp {
		return api.Errorf(api.CodeInvalidArgument, "server: upgrade from %s to itself", fromApp)
	}
	if !s.store.HasApp(toApp) {
		return api.Errorf(api.CodeNotFound, "server: unknown app %s", toApp)
	}
	// Advisory duplicate probe (the claim in upgrade() decides): a
	// second upgrade touching either app of one in flight is refused
	// synchronously, so callers get the stable code at POST time.
	if s.upgradeTarget(vehicleID, fromApp) || s.upgradeTarget(vehicleID, toApp) {
		return api.Errorf(api.CodeAlreadyExists,
			"server: upgrade involving %s on %s already in progress", fromApp, vehicleID)
	}
	row, ok := s.store.InstalledApp(vehicleID, fromApp)
	if !ok {
		return api.Errorf(api.CodeNotFound, "server: app %s is not installed on %s", fromApp, vehicleID)
	}
	if !row.Complete() {
		return api.Errorf(api.CodeFailedPrecondition,
			"server: installation of %s on %s is still in progress", fromApp, vehicleID)
	}
	if _, dup := s.store.InstalledApp(vehicleID, toApp); dup {
		return api.Errorf(api.CodeAlreadyExists, "server: app %s already installed on %s", toApp, vehicleID)
	}
	return nil
}

// claimUpgrade takes the per-vehicle upgrade claim on both app names,
// so concurrent upgrades touching either side are refused instead of
// interleaving their swaps. Released by the pipeline when it settles.
func (s *Server) claimUpgrade(vehicleID core.VehicleID, fromApp, toApp core.AppName, opID string) error {
	fromKey, toKey := failureKey(vehicleID, fromApp), failureKey(vehicleID, toApp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.upgrading == nil {
		s.upgrading = make(map[string]string)
	}
	if owner := s.upgrading[fromKey]; owner != "" && owner != opID {
		return api.Errorf(api.CodeAlreadyExists,
			"server: upgrade of %s on %s already in progress", fromApp, vehicleID)
	}
	if owner := s.upgrading[toKey]; owner != "" && owner != opID {
		return api.Errorf(api.CodeAlreadyExists,
			"server: upgrade involving %s on %s already in progress", toApp, vehicleID)
	}
	s.upgrading[fromKey] = opID
	s.upgrading[toKey] = opID
	return nil
}

// releaseUpgradeClaim frees the claims taken by claimUpgrade.
func (s *Server) releaseUpgradeClaim(vehicleID core.VehicleID, fromApp, toApp core.AppName, opID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range []string{failureKey(vehicleID, fromApp), failureKey(vehicleID, toApp)} {
		if s.upgrading[key] == opID {
			delete(s.upgrading, key)
		}
	}
}

// upgradeTarget reports whether app on vehicle is a side of an
// in-flight upgrade (takes s.mu itself); the deploy and uninstall
// paths consult it so operations racing an open upgrade transaction
// are refused early.
func (s *Server) upgradeTarget(vehicleID core.VehicleID, app core.AppName) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.upgrading[failureKey(vehicleID, app)] != ""
}

// planUpgrade builds the transition plan: the new app re-checked for
// compatibility against the vehicle *minus* the old app, placements
// matched 1:1 against the old row, contexts generated with the old
// version's port ids forced for same-named ports, and both directions
// packaged (forward swap and compensation).
func (s *Server) planUpgrade(vr VehicleRecord, oldRow InstalledApp, fromApp, toApp core.AppName) (*upgradePlan, error) {
	app, ok := s.store.App(toApp)
	if !ok {
		return nil, api.Errorf(api.CodeNotFound, "server: unknown app %s", toApp)
	}
	report := s.checkCompatibility(app, vr, fromApp)
	if err := report.Error(); err != nil {
		return nil, err
	}
	order, err := InstallOrder(app, report.Conf)
	if err != nil {
		return nil, err
	}
	// Placement match: a live upgrade swaps plug-ins in place, so the
	// new conf must keep the old plug-in set and its SW-C placements.
	// Added or removed plug-ins need the uninstall+deploy path.
	oldByName := make(map[core.PluginName]InstalledPlugin, len(oldRow.Plugins))
	for _, p := range oldRow.Plugins {
		oldByName[p.Plugin] = p
	}
	if len(order) != len(oldRow.Plugins) {
		return nil, api.Errorf(api.CodeFailedPrecondition,
			"server: %s deploys %d plug-ins but %s has %d installed; live upgrade needs a 1:1 match (use uninstall+deploy)",
			toApp, len(order), fromApp, len(oldRow.Plugins))
	}
	forced := make(map[core.PluginName]core.PIC, len(order))
	for _, d := range order {
		old, ok := oldByName[d.Plugin]
		if !ok {
			return nil, api.Errorf(api.CodeFailedPrecondition,
				"server: plug-in %s of %s has no counterpart in installed %s; live upgrade needs a 1:1 match (use uninstall+deploy)",
				d.Plugin, toApp, fromApp)
		}
		if old.ECU != d.ECU || old.SWC != d.SWC {
			return nil, api.Errorf(api.CodeFailedPrecondition,
				"server: plug-in %s moves from %s/%s to %s/%s; live upgrade swaps in place (use uninstall+deploy)",
				d.Plugin, old.ECU, old.SWC, d.ECU, d.SWC)
		}
		forced[d.Plugin] = old.PIC
	}
	contexts, err := s.generateContexts(app, vr, order, forced)
	if err != nil {
		return nil, err
	}
	plan := &upgradePlan{
		conf:   vr.Conf,
		oldRow: oldRow,
		order:  order,
		pics:   make(map[core.PluginName]core.PIC, len(order)),
		raws:   make(map[core.PluginName][]byte, len(order)),
	}
	for _, d := range order {
		bin, _ := app.Binary(d.Plugin)
		pkg := plugin.Package{Binary: bin, Context: *contexts[d.Plugin]}
		raw, err := pkg.MarshalBinary()
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "server: packaging %s: %v", d.Plugin, err)
		}
		plan.pics[d.Plugin] = contexts[d.Plugin].PIC
		plan.raws[d.Plugin] = raw
	}
	oldContexts, err := s.planCompensation(plan, vr, fromApp)
	if err != nil {
		return nil, err
	}
	// Static verification: the forward swap path and the rollback path
	// are both walked state by state before the plan is staged.
	if err := s.verifyUpgrade(vr, fromApp, app, plan, contexts, oldContexts); err != nil {
		return nil, err
	}
	return plan, nil
}

// planCompensation packages the old app against its own recorded
// contexts, so a partially acknowledged upgrade can push the old
// version back onto plug-ins that already swapped. It returns the
// regenerated old contexts for the plan verifier's rollback walk.
func (s *Server) planCompensation(plan *upgradePlan, vr VehicleRecord, fromApp core.AppName) (generatedContexts, error) {
	app, ok := s.store.App(fromApp)
	if !ok {
		return nil, api.Errorf(api.CodeNotFound, "server: unknown app %s", fromApp)
	}
	conf, ok := app.ConfFor(vr.Conf.Model)
	if !ok {
		return nil, api.Errorf(api.CodeFailedPrecondition,
			"server: no SW conf of %s matches model %q", fromApp, vr.Conf.Model)
	}
	order, err := InstallOrder(app, conf)
	if err != nil {
		return nil, err
	}
	forced := make(map[core.PluginName]core.PIC, len(plan.oldRow.Plugins))
	for _, p := range plan.oldRow.Plugins {
		forced[p.Plugin] = p.PIC
	}
	contexts, err := s.generateContexts(app, vr, order, forced)
	if err != nil {
		return nil, err
	}
	plan.oldOrder = order
	plan.oldRaws = make(map[core.PluginName][]byte, len(order))
	for _, d := range order {
		bin, _ := app.Binary(d.Plugin)
		pkg := plugin.Package{Binary: bin, Context: *contexts[d.Plugin]}
		raw, err := pkg.MarshalBinary()
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "server: packaging compensation %s: %v", d.Plugin, err)
		}
		plan.oldRaws[d.Plugin] = raw
	}
	return contexts, nil
}

// stageUpgrade runs the synchronous half under the vehicle's deploy
// stripe: prerequisites re-checked, plan computed (or reused from the
// batch cache), the planned row's port ids reserved against concurrent
// deploy planning, and the write-ahead intent record enqueued. The
// durability wait is the caller's, outside the stripe.
func (s *Server) stageUpgrade(user core.UserID, vehicleID core.VehicleID, fromApp, toApp core.AppName, cache *planCache) (*upgradePlan, *InstalledApp, journal.Ticket, error) {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return nil, nil, journal.Ticket{}, api.Errorf(api.CodeNotFound, "server: unknown vehicle %s", vehicleID)
	}
	stripe := &s.deployMu[shardIndex(vehicleID)]
	stripe.Lock()
	defer stripe.Unlock()
	oldRow, ok := s.store.InstalledApp(vehicleID, fromApp)
	if !ok {
		return nil, nil, journal.Ticket{}, api.Errorf(api.CodeNotFound, "server: app %s is not installed on %s", fromApp, vehicleID)
	}
	// A cached plan transfers only between vehicles whose sole installed
	// app is the one being upgraded: anything else on the vehicle
	// changes the compatibility check (conflicts, quotas) and the free
	// port-id space, so those vehicles plan individually — the same rule
	// deployPlan applies with its fresh flag.
	sole := len(s.store.InstalledApps(vehicleID)) == 1
	var plan *upgradePlan
	if cache != nil && sole {
		plan = cache.lookupUpgrade(vr.Conf, oldRow)
	}
	if plan == nil {
		var err error
		plan, err = s.planUpgrade(vr, oldRow, fromApp, toApp)
		if err != nil {
			return nil, nil, journal.Ticket{}, err
		}
		plan.sole = sole
		if cache != nil && sole {
			cache.addUpgrade(plan)
		}
	}
	newRow := &InstalledApp{App: toApp, Vehicle: vehicleID}
	for _, d := range plan.order {
		newRow.Plugins = append(newRow.Plugins, InstalledPlugin{
			Plugin: d.Plugin, ECU: d.ECU, SWC: d.SWC,
			PIC: append(core.PIC(nil), plan.pics[d.Plugin]...),
		})
	}
	s.store.ReserveUpgrade(newRow)
	var ticket journal.Ticket
	if s.jn != nil {
		ticket = s.jn.Append(journal.UpgradeStartedRec(vehicleID, fromApp, toApp))
	}
	return plan, newRow, ticket, nil
}

// upgrade runs one vehicle's live upgrade end to end: stage, durable
// intent, concurrent MsgUpgrade pushes, ack collection, then either the
// atomic row commit or compensation back to the old version. The
// returned error (nil on success) carries the stable "rollback" code
// when the vehicle rolled a plug-in back.
func (s *Server) upgrade(opID string, user core.UserID, vehicleID core.VehicleID, fromApp, toApp core.AppName, cache *planCache) error {
	if err := s.precheckUpgrade(user, vehicleID, fromApp, toApp); err != nil {
		return err
	}
	if err := s.claimUpgrade(vehicleID, fromApp, toApp, opID); err != nil {
		return err
	}
	defer s.releaseUpgradeClaim(vehicleID, fromApp, toApp, opID)

	plan, newRow, ticket, err := s.stageUpgrade(user, vehicleID, fromApp, toApp, cache)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			s.store.ReleaseUpgrade(vehicleID, toApp)
		}
	}()
	// Write-ahead intent: the swap messages go on the wire only after
	// the started record is on disk.
	if err := waitDurable(ticket); err != nil {
		return err
	}

	// Push every plug-in swap pinned to the current link; each plug-in
	// quiesces and swaps independently on the vehicle, the server
	// serializes nothing and collects the outcomes.
	epoch := s.pusher.Epoch(vehicleID)
	notify := make(chan ackOutcome, len(plan.order))
	pushed := 0
	pushedSet := make(map[core.PluginName]bool, len(plan.order))
	var launchErr error
	for _, d := range plan.order {
		seq := s.enqueuePending(pendingOp{
			vehicle: vehicleID, app: fromApp, plugin: d.Plugin,
			kind: "upgrade", opID: opID, epoch: epoch, notify: notify,
		})
		msg := core.Message{Type: core.MsgUpgrade, Plugin: d.Plugin,
			ECU: d.ECU, SWC: d.SWC, Seq: seq, Payload: plan.raws[d.Plugin]}
		if err := s.pusher.PushOn(vehicleID, epoch, msg); err != nil {
			s.dropPending(seq)
			launchErr = api.Errorf(api.CodeUnavailable, "server: push to %s: %v", vehicleID, err)
			break
		}
		pushed++
		pushedSet[d.Plugin] = true
		s.logf("server: pushed {%d, '%s', %s, upgrade} to %s", core.MsgUpgrade, d.Plugin, d.ECU, vehicleID)
	}

	// Collect the outcomes of everything that made it onto the wire,
	// bounded by the configurable ack deadline and by server shutdown
	// (pushCtx), so a silent vehicle or a dying shard leader cannot
	// wedge a batch worker forever.
	outcomes := make(map[core.PluginName]string, pushed)
	ctx, cancel := context.WithTimeout(s.pushCtx, s.ackWaitTimeout())
	defer cancel()
	timedOut := false
collect:
	for i := 0; i < pushed; i++ {
		select {
		case out := <-notify:
			outcomes[out.plugin] = out.failure
		case <-ctx.Done():
			timedOut = true
			break collect
		}
	}

	var failures []string
	rolledBack := false
	for _, d := range plan.order {
		failure, settled := outcomes[d.Plugin]
		switch {
		case settled && failure == "":
			// Swapped and acknowledged.
		case settled:
			failures = append(failures, failure)
			if strings.Contains(failure, "rollback: ") {
				rolledBack = true
			}
		default:
			// Never pushed, or unsettled at timeout.
		}
	}

	if launchErr == nil && !timedOut && len(failures) == 0 {
		// Every plug-in swapped: commit the row atomically. The new row
		// is fully acknowledged by construction.
		for i := range newRow.Plugins {
			newRow.Plugins[i].Acked = true
		}
		if err := s.store.CommitUpgrade(fromApp, newRow); err != nil {
			// A concurrent operation interleaved (old row gone or new
			// app deployed meanwhile): the vehicle runs the new version,
			// the record lost the race — compensate back to the old.
			s.compensate(vehicleID, fromApp, toApp, plan, pushedSet, outcomes)
			s.journalUpgradeRolledBack(vehicleID, fromApp, toApp, err.Error())
			return err
		}
		committed = true
		s.logf("server: upgraded %s to %s on %s (%d plug-ins swapped live)",
			fromApp, toApp, vehicleID, len(plan.order))
		return nil
	}

	// Failure: compensate every plug-in that swapped (or whose outcome
	// is unknown), close the journal transaction, surface the reason.
	s.compensate(vehicleID, fromApp, toApp, plan, pushedSet, outcomes)
	reason := ""
	switch {
	case rolledBack:
		reason = fmt.Sprintf("vehicle rolled back: %s", strings.Join(failures, "; "))
	case len(failures) > 0:
		reason = strings.Join(failures, "; ")
	case launchErr != nil:
		reason = launchErr.Error()
	default:
		reason = "timed out waiting for upgrade acknowledgements"
	}
	s.journalUpgradeRolledBack(vehicleID, fromApp, toApp, reason)
	if rolledBack {
		return api.Errorf(api.CodeRolledBack, "server: upgrade of %s to %s on %s rolled back: %s",
			fromApp, toApp, vehicleID, strings.Join(failures, "; "))
	}
	if launchErr != nil {
		return launchErr
	}
	if len(failures) > 0 {
		return api.Errorf(api.CodeUnavailable, "server: upgrade of %s to %s on %s failed: %s",
			fromApp, toApp, vehicleID, strings.Join(failures, "; "))
	}
	return api.Errorf(api.CodeUnavailable, "server: upgrade of %s to %s on %s timed out awaiting acknowledgements",
		fromApp, toApp, vehicleID)
}

// compensate pushes the old version back onto every plug-in whose swap
// frame made it onto the wire and either acknowledged the new version
// or is unsettled, in reverse install order; plug-ins that nacked
// already rolled back on the vehicle, and plug-ins never pushed still
// run the old version untouched. Best-effort: a dead link leaves the
// vehicle to its own NvM-restore consistency, and the server row —
// still the old version — is the authoritative record either way.
func (s *Server) compensate(vehicleID core.VehicleID, fromApp, toApp core.AppName, plan *upgradePlan, pushedSet map[core.PluginName]bool, outcomes map[core.PluginName]string) {
	var targets []Deployment
	for _, d := range plan.oldOrder {
		if !pushedSet[d.Plugin] {
			continue // never left the server; the old version still runs
		}
		if failure, settled := outcomes[d.Plugin]; settled && failure != "" {
			continue // the vehicle already runs the old version here
		}
		targets = append(targets, d)
	}
	if len(targets) == 0 {
		return
	}
	slices.Reverse(targets)
	epoch := s.pusher.Epoch(vehicleID)
	notify := make(chan ackOutcome, len(targets))
	pushed := 0
	for _, d := range targets {
		seq := s.enqueuePending(pendingOp{
			vehicle: vehicleID, app: toApp, plugin: d.Plugin,
			kind: "upgrade", epoch: epoch, notify: notify,
		})
		msg := core.Message{Type: core.MsgUpgrade, Plugin: d.Plugin,
			ECU: d.ECU, SWC: d.SWC, Seq: seq, Payload: plan.oldRaws[d.Plugin]}
		if err := s.pusher.PushOn(vehicleID, epoch, msg); err != nil {
			s.dropPending(seq)
			s.logf("server: compensation push of %s to %s failed: %v", d.Plugin, vehicleID, err)
			continue
		}
		pushed++
	}
	// Drain the outcomes so the downgrade completed before the claim is
	// released; failures are logged, not escalated.
	ctx, cancel := context.WithTimeout(s.pushCtx, s.ackWaitTimeout())
	defer cancel()
	for i := 0; i < pushed; i++ {
		select {
		case out := <-notify:
			if out.failure != "" {
				s.logf("server: compensation of %s on %s: %s", out.plugin, vehicleID, out.failure)
			}
		case <-ctx.Done():
			s.logf("server: compensation on %s timed out", vehicleID)
			return
		}
	}
}

// journalUpgradeRolledBack closes a failed upgrade transaction on the
// journal; fire-and-forget like the other settle-side records — a lost
// record recovers identically (the old row stands).
func (s *Server) journalUpgradeRolledBack(vehicleID core.VehicleID, fromApp, toApp core.AppName, reason string) {
	if s.jn == nil {
		return
	}
	s.jn.Append(journal.UpgradeRolledBackRec(vehicleID, fromApp, toApp, reason))
}

// lookupUpgrade returns a cached upgrade plan applicable to a vehicle
// with this configuration and old row, nil when none fits.
func (c *planCache) lookupUpgrade(conf core.VehicleConf, oldRow InstalledApp) *upgradePlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.upgrades {
		if p.sole && confsEqual(p.conf, conf) && rowsEquivalent(p.oldRow, oldRow) {
			c.upHits++
			return p
		}
	}
	c.upMisses++
	return nil
}

// addUpgrade caches a computed upgrade plan.
func (c *planCache) addUpgrade(p *upgradePlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.upgrades = append(c.upgrades, p)
}

// upgradeStats returns the upgrade-plan reuse counters.
func (c *planCache) upgradeStats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upHits, c.upMisses
}

// rowsEquivalent reports whether two installed rows describe the same
// placement and port-id assignment — the condition for one upgrade
// plan's forced PICs to apply to another vehicle.
func rowsEquivalent(a, b InstalledApp) bool {
	if a.App != b.App || len(a.Plugins) != len(b.Plugins) {
		return false
	}
	for i := range a.Plugins {
		x, y := &a.Plugins[i], &b.Plugins[i]
		if x.Plugin != y.Plugin || x.ECU != y.ECU || x.SWC != y.SWC || !slices.Equal(x.PIC, y.PIC) {
			return false
		}
	}
	return true
}
