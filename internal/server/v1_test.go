package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
)

// newV1Client serves the full Handler (v1 + legacy) and returns a typed
// HTTP client against it.
func newV1Client(t *testing.T, s *Server) *api.Client {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return api.NewClient(srv.URL, nil)
}

func wantCode(t *testing.T, err error, code api.ErrorCode) {
	t.Helper()
	if got := api.CodeOf(err); got != code {
		t.Fatalf("error code = %q (%v), want %q", got, err, code)
	}
}

func TestV1UserAndVehicleRoundTrip(t *testing.T) {
	s := New()
	c := newV1Client(t, s)
	ctx := context.Background()

	u, err := c.CreateUser(ctx, api.CreateUserRequest{ID: "alice"})
	if err != nil || u.ID != "alice" {
		t.Fatalf("CreateUser = %+v, %v", u, err)
	}
	_, err = c.CreateUser(ctx, api.CreateUserRequest{ID: "alice"})
	wantCode(t, err, api.CodeAlreadyExists)
	_, err = c.CreateUser(ctx, api.CreateUserRequest{})
	wantCode(t, err, api.CodeInvalidArgument)
	_, err = c.GetUser(ctx, "nobody")
	wantCode(t, err, api.CodeNotFound)

	vr, err := c.BindVehicle(ctx, api.BindVehicleRequest{Owner: "alice", Conf: modelCarConf("VIN-V1")})
	if err != nil || vr.ID != "VIN-V1" || vr.Owner != "alice" {
		t.Fatalf("BindVehicle = %+v, %v", vr, err)
	}
	_, err = c.BindVehicle(ctx, api.BindVehicleRequest{Owner: "ghost", Conf: modelCarConf("VIN-V2")})
	wantCode(t, err, api.CodeNotFound)

	// The bound vehicle appears on the user and in the detail view, and
	// the conf survives the round trip.
	u, err = c.GetUser(ctx, "alice")
	if err != nil || len(u.Vehicles) != 1 || u.Vehicles[0] != "VIN-V1" {
		t.Fatalf("GetUser = %+v, %v", u, err)
	}
	vd, err := c.GetVehicle(ctx, "VIN-V1")
	if err != nil || vd.Conf.Model != "modelcar-v1" || len(vd.Conf.SWCs) != 2 {
		t.Fatalf("GetVehicle = %+v, %v", vd, err)
	}
	swc2, ok := vd.Conf.SWC("ECU2", "SW-C2")
	if !ok {
		t.Fatal("SW-C2 missing after round trip")
	}
	if vp, ok := swc2.VirtualPort("WheelsReq"); !ok || vp.ID != 4 || vp.Format != "i16be" {
		t.Fatalf("WheelsReq after round trip = %+v", vp)
	}
	_, err = c.GetVehicle(ctx, "NOPE")
	wantCode(t, err, api.CodeNotFound)
}

func TestV1AppUploadAndGet(t *testing.T) {
	s := New()
	c := newV1Client(t, s)
	ctx := context.Background()
	app := paperApp(t)

	ref, err := c.UploadApp(ctx, app)
	if err != nil || ref.Name != "RemoteControl" {
		t.Fatalf("UploadApp = %+v, %v", ref, err)
	}
	_, err = c.UploadApp(ctx, app)
	wantCode(t, err, api.CodeAlreadyExists)
	_, err = c.UploadApp(ctx, api.App{Name: ""})
	wantCode(t, err, api.CodeInvalidArgument)

	// The stored binaries survived the HTTP round trip bit-exactly.
	got, err := c.GetApp(ctx, "RemoteControl")
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got.Binaries {
		if err := b.Validate(); err != nil {
			t.Fatalf("binary %d corrupted by round trip: %v", i, err)
		}
	}
	_, err = c.GetApp(ctx, "Nope")
	wantCode(t, err, api.CodeNotFound)

	list, err := c.ListApps(ctx, api.Page{})
	if err != nil || len(list.Apps) != 1 || list.Apps[0] != "RemoteControl" {
		t.Fatalf("ListApps = %+v, %v", list, err)
	}
}

func TestV1ListPagination(t *testing.T) {
	s := New()
	c := newV1Client(t, s)
	ctx := context.Background()
	if _, err := c.CreateUser(ctx, api.CreateUserRequest{ID: "fleet"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.VehicleID{"VIN-A", "VIN-B", "VIN-C"} {
		if _, err := c.BindVehicle(ctx, api.BindVehicleRequest{Owner: "fleet", Conf: modelCarConf(id)}); err != nil {
			t.Fatal(err)
		}
	}

	page1, err := c.ListVehicles(ctx, api.Page{Size: 2})
	if err != nil || len(page1.Vehicles) != 2 || page1.NextPageToken == "" {
		t.Fatalf("page 1 = %+v, %v", page1, err)
	}
	if page1.Vehicles[0].ID != "VIN-A" || page1.Vehicles[1].ID != "VIN-B" {
		t.Fatalf("page 1 order = %+v", page1.Vehicles)
	}
	page2, err := c.ListVehicles(ctx, api.Page{Size: 2, Token: page1.NextPageToken})
	if err != nil || len(page2.Vehicles) != 1 || page2.Vehicles[0].ID != "VIN-C" || page2.NextPageToken != "" {
		t.Fatalf("page 2 = %+v, %v", page2, err)
	}
}

func TestV1AsyncDeployLifecycle(t *testing.T) {
	s := newServerWithVehicle(t, "VIN-V1A")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	car, eng := connectCar(t, s, "VIN-V1A")
	c := newV1Client(t, s)
	ctx := context.Background()

	// Deploy returns an operation immediately, without blocking on acks.
	op, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-V1A", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	if op.ID == "" || op.Done || op.Kind != api.OpDeploy {
		t.Fatalf("deploy operation = %+v", op)
	}

	// Poll it to completion while pumping the vehicle simulation.
	pumpUntil(t, eng, func() bool {
		got, err := c.GetOperation(ctx, op.ID)
		if err != nil {
			t.Fatal(err)
		}
		return got.Done
	})
	final, err := c.GetOperation(ctx, op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateSucceeded || final.Acked != 2 || final.Total != 2 || len(final.Failures) != 0 {
		t.Fatalf("final operation = %+v", final)
	}
	st, err := c.Status(ctx, "VIN-V1A", "RemoteControl")
	if err != nil || !st.Complete() {
		t.Fatalf("status = %+v, %v", st, err)
	}
	if _, ok := car.ECM.Plugin("COM"); !ok {
		t.Fatal("COM missing after v1 deploy")
	}

	// Restore after "replacing" ECU2, driven through the client.
	if err := car.SWC2PIRTE.Uninstall("OP"); err != nil {
		t.Fatal(err)
	}
	rop, err := c.Restore(ctx, api.RestoreRequest{User: "alice", Vehicle: "VIN-V1A", ECU: "ECU2"})
	if err != nil {
		t.Fatal(err)
	}
	pumpUntil(t, eng, func() bool {
		got, _ := c.GetOperation(ctx, rop.ID)
		return got.Done
	})
	if got, _ := c.GetOperation(ctx, rop.ID); got.State != api.StateSucceeded || got.Total != 1 {
		t.Fatalf("restore operation = %+v", got)
	}

	// Uninstall through the client removes the row.
	uop, err := c.Uninstall(ctx, api.UninstallRequest{User: "alice", Vehicle: "VIN-V1A", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	pumpUntil(t, eng, func() bool {
		got, _ := c.GetOperation(ctx, uop.ID)
		return got.Done
	})
	if _, ok := s.Store().InstalledApp("VIN-V1A", "RemoteControl"); ok {
		t.Fatal("row survived v1 uninstall")
	}

	// The operations listing pages through all three, oldest first.
	list, err := c.ListOperations(ctx, api.Page{Size: 2})
	if err != nil || len(list.Operations) != 2 || list.NextPageToken == "" {
		t.Fatalf("operations page 1 = %+v, %v", list, err)
	}
	if list.Operations[0].ID != op.ID {
		t.Fatalf("operations order = %+v", list.Operations)
	}
	rest, err := c.ListOperations(ctx, api.Page{Size: 2, Token: list.NextPageToken})
	if err != nil || len(rest.Operations) != 1 || rest.Operations[0].ID != uop.ID {
		t.Fatalf("operations page 2 = %+v, %v", rest, err)
	}
}

func TestV1DeployErrorCodes(t *testing.T) {
	s := newServerWithVehicle(t, "VIN-V1E")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	c := newV1Client(t, s)
	ctx := context.Background()

	_, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-V1E", App: "Nope"})
	wantCode(t, err, api.CodeNotFound)
	_, err = c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "NoVehicle", App: "RemoteControl"})
	wantCode(t, err, api.CodeNotFound)
	_, err = c.Deploy(ctx, api.DeployRequest{User: "mallory", Vehicle: "VIN-V1E", App: "RemoteControl"})
	wantCode(t, err, api.CodePermissionDenied)
	_, err = c.Uninstall(ctx, api.UninstallRequest{User: "alice", Vehicle: "VIN-V1E", App: "RemoteControl"})
	wantCode(t, err, api.CodeNotFound)
	_, err = c.Status(ctx, "NoVehicle", "RemoteControl")
	wantCode(t, err, api.CodeNotFound)
	_, err = c.GetOperation(ctx, "op-nope")
	wantCode(t, err, api.CodeNotFound)

	// The vehicle exists but is offline: the precheck passes, the
	// operation is created, and the launch failure lands in it with the
	// unavailable code.
	op, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-V1E", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitOperation(ctx, op.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateFailed || final.Error == nil || final.Error.Code != api.CodeUnavailable {
		t.Fatalf("offline deploy operation = %+v", final)
	}
	if _, ok := s.Store().InstalledApp("VIN-V1E", "RemoteControl"); ok {
		t.Fatal("failed async deploy left a row")
	}
}

// TestV1ConcurrentDeploys hammers deploy/status/operations from many
// goroutines (run under -race): exactly one deploy of the app must win,
// the losers must fail with already_exists, and no read may tear.
func TestV1ConcurrentDeploys(t *testing.T) {
	s := newServerWithVehicle(t, "VIN-CC")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	_, eng := connectCar(t, s, "VIN-CC")
	c := newV1Client(t, s)
	ctx := context.Background()

	const attempts = 8
	ops := make([]api.Operation, attempts)
	errs := make([]error, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops[i], errs[i] = c.Deploy(ctx, api.DeployRequest{
				User: "alice", Vehicle: "VIN-CC", App: "RemoteControl",
			})
		}(i)
		// Readers race the writers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Status(ctx, "VIN-CC", "RemoteControl")
			_, _ = c.ListOperations(ctx, api.Page{})
			_, _ = c.GetVehicle(ctx, "VIN-CC")
		}()
	}
	wg.Wait()

	// Wait for every accepted operation to settle while pumping the car.
	pumpUntil(t, eng, func() bool {
		for i := range ops {
			if errs[i] != nil || ops[i].ID == "" {
				continue
			}
			got, err := c.GetOperation(ctx, ops[i].ID)
			if err != nil || !got.Done {
				return false
			}
		}
		return true
	})

	succeeded := 0
	for i := range ops {
		if errs[i] != nil {
			wantCode(t, errs[i], api.CodeAlreadyExists)
			continue
		}
		got, err := c.GetOperation(ctx, ops[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		switch got.State {
		case api.StateSucceeded:
			succeeded++
		case api.StateFailed:
			// A loser fails at the atomic record (already_exists) or,
			// if the winner's row landed first, at the compatibility
			// check (failed_precondition).
			code := api.ErrorCode("")
			if got.Error != nil {
				code = got.Error.Code
			}
			if code != api.CodeAlreadyExists && code != api.CodeFailedPrecondition {
				t.Fatalf("loser failed oddly: %+v", got)
			}
		default:
			t.Fatalf("unsettled operation %+v", got)
		}
	}
	if succeeded != 1 {
		t.Fatalf("%d deploys succeeded, want exactly 1", succeeded)
	}
	st, err := c.Status(ctx, "VIN-CC", "RemoteControl")
	if err != nil || !st.Complete() {
		t.Fatalf("final status = %+v, %v", st, err)
	}
}

// TestV1ConcurrentUninstalls: only one of several simultaneous
// uninstalls of the same app may push MsgUninstall frames; the rest
// fail with already_exists instead of double-uninstalling.
func TestV1ConcurrentUninstalls(t *testing.T) {
	s := newServerWithVehicle(t, "VIN-CU")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	_, eng := connectCar(t, s, "VIN-CU")
	c := newV1Client(t, s)
	ctx := context.Background()

	op, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-CU", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	pumpUntil(t, eng, func() bool {
		got, _ := c.GetOperation(ctx, op.ID)
		return got.Done
	})

	const attempts = 6
	ops := make([]api.Operation, attempts)
	errs := make([]error, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops[i], errs[i] = c.Uninstall(ctx, api.UninstallRequest{
				User: "alice", Vehicle: "VIN-CU", App: "RemoteControl",
			})
		}(i)
	}
	wg.Wait()
	pumpUntil(t, eng, func() bool {
		for i := range ops {
			if errs[i] != nil {
				continue
			}
			got, err := c.GetOperation(ctx, ops[i].ID)
			if err != nil || !got.Done {
				return false
			}
		}
		return true
	})

	succeeded := 0
	for i := range ops {
		if errs[i] != nil {
			// Late entrants are rejected at precheck once the row is gone.
			wantCode(t, errs[i], api.CodeNotFound)
			continue
		}
		got, _ := c.GetOperation(ctx, ops[i].ID)
		switch got.State {
		case api.StateSucceeded:
			succeeded++
		case api.StateFailed:
			code := api.ErrorCode("")
			if got.Error != nil {
				code = got.Error.Code
			}
			if code != api.CodeAlreadyExists && code != api.CodeNotFound {
				t.Fatalf("loser failed oddly: %+v", got)
			}
		default:
			t.Fatalf("unsettled operation %+v", got)
		}
	}
	if succeeded != 1 {
		t.Fatalf("%d uninstalls succeeded, want exactly 1", succeeded)
	}
	if _, ok := s.Store().InstalledApp("VIN-CU", "RemoteControl"); ok {
		t.Fatal("row survived uninstall")
	}
	// The claim is released after completion: a fresh uninstall is
	// rejected for the right reason (nothing installed), not as
	// "in progress".
	_, err = c.Uninstall(ctx, api.UninstallRequest{User: "alice", Vehicle: "VIN-CU", App: "RemoteControl"})
	wantCode(t, err, api.CodeNotFound)
}

// connectMuteVehicle attaches a fake vehicle that identifies itself and
// swallows every push without ever acknowledging.
func connectMuteVehicle(t *testing.T, s *Server, id core.VehicleID) (closeConn func()) {
	t.Helper()
	vehicleSide, serverSide := net.Pipe()
	go s.Pusher().ServeConn(serverSide)
	if err := core.WriteMessage(vehicleSide, core.Message{Type: core.MsgHello, Payload: []byte(id)}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := core.ReadMessage(vehicleSide); err != nil {
				return
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !s.Pusher().Connected(id) {
		if time.Now().After(deadline) {
			t.Fatal("mute vehicle never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { vehicleSide.Close() }
}

// TestDisconnectFailsInFlightOpsAndReleasesClaim: losing the vehicle
// link terminates operations whose acks can never arrive, and frees the
// uninstall claim so a retry is possible.
func TestDisconnectFailsInFlightOpsAndReleasesClaim(t *testing.T) {
	s := newServerWithVehicle(t, "VIN-DC")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	closeConn := connectMuteVehicle(t, s, "VIN-DC")
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	dop, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-DC", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	// Give the launch goroutine time to push; the mute vehicle never acks.
	waitFor(t, func() bool {
		got, _ := c.GetOperation(ctx, dop.ID)
		return got.State == api.StateRunning
	})
	uop, err := c.Uninstall(ctx, api.UninstallRequest{User: "alice", Vehicle: "VIN-DC", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := c.GetOperation(ctx, uop.ID)
		return got.State == api.StateRunning
	})
	// A second uninstall is blocked by the in-flight claim (the sync
	// path surfaces the claim error directly; async would record it on
	// its operation).
	err = s.Uninstall("alice", "VIN-DC", "RemoteControl")
	wantCode(t, err, api.CodeAlreadyExists)

	// The vehicle vanishes: both operations terminate with the loss
	// recorded, and the claim is released.
	closeConn()
	for _, id := range []string{dop.ID, uop.ID} {
		final, err := c.WaitOperation(ctx, id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != api.StateFailed || len(final.Failures) == 0 {
			t.Fatalf("operation %s after disconnect = %+v", id, final)
		}
	}
	// Retrying now fails on the dead link (unavailable), not on a stale
	// "already in progress" claim.
	err = s.Uninstall("alice", "VIN-DC", "RemoteControl")
	wantCode(t, err, api.CodeUnavailable)
	// The losses are visible on the legacy progress surface too, so the
	// two status views agree.
	if st := s.Status("VIN-DC", "RemoteControl"); len(st.Failures) == 0 {
		t.Fatalf("status after disconnect shows no failures: %+v", st)
	}
}

// TestReconnectSweepsOnlyOldPushes: a vehicle replacing its link fails
// the pushes stranded on the old connection, but never the ones made on
// the successor.
func TestReconnectSweepsOnlyOldPushes(t *testing.T) {
	s := newServerWithVehicle(t, "VIN-RC")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	closeOld := connectMuteVehicle(t, s, "VIN-RC")
	defer closeOld()
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	op1, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-RC", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := c.GetOperation(ctx, op1.ID)
		return got.State == api.StateRunning
	})

	// The vehicle reconnects: the stranded deploy fails...
	closeNew := connectMuteVehicle(t, s, "VIN-RC")
	defer closeNew()
	final, err := c.WaitOperation(ctx, op1.ID, 0)
	if err != nil || final.State != api.StateFailed {
		t.Fatalf("stranded deploy after reconnect = %+v, %v", final, err)
	}
	// ...the replacement sweep also rolled nothing fresh back: a deploy
	// on the new link stays running (the mute vehicle never acks), it
	// is NOT failed by the old link's teardown.
	s.Store().RemoveInstallation("VIN-RC", "RemoteControl")
	op2, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-RC", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := c.GetOperation(ctx, op2.ID)
		return got.State == api.StateRunning
	})
	time.Sleep(50 * time.Millisecond)
	if got, _ := c.GetOperation(ctx, op2.ID); got.Done {
		t.Fatalf("fresh deploy killed by old link teardown: %+v", got)
	}
}

func TestLegacyVehicleLinkHeaderInterpolated(t *testing.T) {
	s := New()
	_ = s.Store().AddUser("alice")
	_ = s.Store().BindVehicle("alice", modelCarConf("VIN-HDR"))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/vehicles/VIN-HDR")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := "</v1/vehicles/VIN-HDR>; rel=\"successor-version\""
	if got := resp.Header.Get("Link"); got != want {
		t.Fatalf("Link = %q, want %q", got, want)
	}
}

// waitFor spins on a condition with a wall-clock deadline (no sim
// engine involved).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOperationRetention: completed operations are evicted once the
// registry exceeds its bound; in-flight state is never lost.
func TestOperationRetention(t *testing.T) {
	old := opRetention
	opRetention = 4
	defer func() { opRetention = old }()

	s := newServerWithVehicle(t, "VIN-RET")
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	// Each deploy fails terminally (vehicle offline), creating a
	// completed operation.
	var last string
	for i := 0; i < 10; i++ {
		op, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-RET", App: "RemoteControl"})
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.WaitOperation(ctx, op.ID, 0)
		if err != nil || !final.Done {
			t.Fatalf("operation %s never settled: %+v, %v", op.ID, final, err)
		}
		last = op.ID
	}
	ops := s.Operations()
	if len(ops) > 4 {
		t.Fatalf("registry holds %d ops, want <= 4", len(ops))
	}
	// The newest operation survives; the oldest were evicted.
	if _, ok := s.Operation(last); !ok {
		t.Fatalf("latest operation %s evicted", last)
	}
	if _, ok := s.Operation("op-00000001"); ok {
		t.Fatal("oldest operation survived past retention")
	}
}

func TestV1RateLimit(t *testing.T) {
	s := New()
	h := api.NewHandler(NewService(s), &api.HandlerOptions{RatePerSecond: 0.001, Burst: 2})
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := api.NewClient(srv.URL, nil)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.ListApps(ctx, api.Page{}); err != nil {
			t.Fatalf("request %d refused: %v", i, err)
		}
	}
	_, err := c.ListApps(ctx, api.Page{})
	wantCode(t, err, api.CodeResourceExhausted)
}

func TestV1LegacyPathsStillServedAndDeprecated(t *testing.T) {
	s := New()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/apps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy GET /apps = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy path not marked deprecated")
	}
	// The same listing is live on v1, without the deprecation mark.
	resp, err = http.Get(srv.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") != "" {
		t.Fatalf("v1 GET /apps = %d (deprecation %q)", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
}

// TestLocalClientMatchesHTTP runs the same flow through the in-process
// transport, pinning the two transports to one behavior.
func TestLocalClientMatchesHTTP(t *testing.T) {
	s := New()
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	if _, err := c.CreateUser(ctx, api.CreateUserRequest{ID: "alice"}); err != nil {
		t.Fatal(err)
	}
	_, err := c.CreateUser(ctx, api.CreateUserRequest{ID: "alice"})
	wantCode(t, err, api.CodeAlreadyExists)
	if _, err := c.BindVehicle(ctx, api.BindVehicleRequest{Owner: "alice", Conf: modelCarConf("VIN-L")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadApp(ctx, paperApp(t)); err != nil {
		t.Fatal(err)
	}
	vd, err := c.GetVehicle(ctx, "VIN-L")
	if err != nil || vd.ID != "VIN-L" {
		t.Fatalf("GetVehicle = %+v, %v", vd, err)
	}
	// Offline deploy: the operation fails with unavailable, same as HTTP.
	op, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-L", App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitOperation(ctx, op.ID, 0)
	if err != nil || final.State != api.StateFailed || final.Error.Code != api.CodeUnavailable {
		t.Fatalf("local offline deploy = %+v, %v", final, err)
	}
}
