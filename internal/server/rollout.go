package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/journal"
	"dynautosar/internal/verify"
)

// Progressive rollouts: POST /v1/rollout upgrades a fleet From -> To in
// health-gated canary waves. The fleet is bucketed deterministically by
// hashed vehicle id (the same fleet always yields the same wave
// membership), each wave runs through the batch-upgrade machinery, and
// promotion to the next wave is gated on the wave's health window —
// failure rate, vehicle-side probe rollbacks and ack p99. A tripped
// gate (or an operator abort) downgrades every already-upgraded vehicle
// in reverse wave order. The rollout is a journaled state machine
// (rollout_started / wave_promoted / rollout_rolled_back /
// rollout_done), so a crash mid-wave recovers to a consistent wave
// boundary: a clean boundary resumes forward, a wave that died with
// partial upgrades rolls the fleet back (its health window died with
// the process and can never be re-evaluated).

// rolloutRecord is the mutable server-side state of one rollout;
// guarded by Server.mu.
type rolloutRecord struct {
	st     api.RolloutStatus
	bounds []int // cumulative wave boundaries into st.Vehicles
	health api.RolloutHealthPolicy
	// abort is the operator's rollback request; the wave loop checks it
	// at every wave boundary.
	abort bool
	// promoted counts waves whose wave_promoted record is durable.
	promoted int
}

// rolloutRetention bounds how many rollouts the registry keeps; once
// exceeded, the oldest terminal ones are evicted. A var so tests can
// shrink it.
var rolloutRetention = 256

// rolloutRetryDelay and rolloutRollbackAttempts pace the fleet-rollback
// retry loop: a vehicle that is disconnected (or whose forward child is
// still draining its claim) when its downgrade is pushed is retried
// until it converges or the attempts run out. Vars so tests can speed
// them up.
var (
	rolloutRetryDelay       = 250 * time.Millisecond
	rolloutRollbackAttempts = 40
)

// defaultRolloutWaves is the wave plan used when a request carries
// none: one canary vehicle, then 10% of the fleet, then everything.
var defaultRolloutWaves = []api.RolloutWave{{Count: 1}, {Fraction: 0.10}, {Fraction: 1}}

// StartRollout validates the request, buckets the fleet, journals the
// rollout_started record durably and launches the wave loop in the
// background. The returned status snapshot has every wave pending.
func (s *Server) StartRollout(req api.RolloutRequest) (api.RolloutStatus, error) {
	if !s.store.HasApp(req.From) {
		return api.RolloutStatus{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", req.From)
	}
	if !s.store.HasApp(req.To) {
		return api.RolloutStatus{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", req.To)
	}
	if req.From == req.To {
		return api.RolloutStatus{}, api.Errorf(api.CodeInvalidArgument, "server: rollout from %s to itself", req.From)
	}
	fleet, err := s.resolveFleet(req.User, req.Vehicles, req.Selector)
	if err != nil {
		return api.RolloutStatus{}, err
	}
	ordered := bucketFleet(fleet)
	bounds, err := resolveWaveBounds(req.Waves, len(ordered))
	if err != nil {
		return api.RolloutStatus{}, err
	}
	var health api.RolloutHealthPolicy
	if req.Health != nil {
		health = *req.Health
		if health.MaxFailureRate < 0 || health.MaxFailureRate >= 1 {
			return api.RolloutStatus{}, api.Errorf(api.CodeInvalidArgument,
				"server: rollout health maxFailureRate %v outside [0, 1)", health.MaxFailureRate)
		}
		if health.MaxProbeFailures < 0 || health.MaxAckP99Millis < 0 {
			return api.RolloutStatus{}, api.Errorf(api.CodeInvalidArgument,
				"server: rollout health bounds must not be negative")
		}
	}
	// Fleet-level abortability: every wave prefix must be rollback-able
	// before the first package moves.
	if err := s.verifyRolloutWaves(ordered, bounds, req.From, req.To); err != nil {
		return api.RolloutStatus{}, err
	}

	s.mu.Lock()
	s.rolloutSeq++
	id := fmt.Sprintf("ro-%08d", s.rolloutSeq)
	rec := &rolloutRecord{
		st: api.RolloutStatus{
			ID: id, User: req.User, From: req.From, To: req.To,
			State:    api.RolloutRunning,
			Vehicles: ordered,
			Waves:    waveStatuses(bounds),
		},
		bounds: bounds,
		health: health,
	}
	s.rollouts[id] = rec
	s.rolloutOrder = append(s.rolloutOrder, id)
	s.pruneRolloutsLocked()
	s.mu.Unlock()

	// Write-ahead gate: the rollout exists durably before its first wave
	// launches, so a crash at any later point recovers the state machine.
	if err := s.journalRollout(journal.RolloutStartedRec(id, req.User, req.From, req.To, ordered, bounds, req.Health)); err != nil {
		s.mu.Lock()
		delete(s.rollouts, id)
		for i, rid := range s.rolloutOrder {
			if rid == id {
				s.rolloutOrder = append(s.rolloutOrder[:i], s.rolloutOrder[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return api.RolloutStatus{}, err
	}
	go s.runRollout(id, 0)
	return s.rolloutSnapshot(id)
}

// GetRollout returns one rollout by id.
func (s *Server) GetRollout(id string) (api.RolloutStatus, error) {
	return s.rolloutSnapshot(id)
}

// AbortRollout requests a fleet rollback of a running rollout. The
// request is acknowledged immediately; the wave loop acts on it at the
// next wave boundary (an executing wave always drains first, so the
// rollback targets a known set of upgraded vehicles).
func (s *Server) AbortRollout(id string) (api.RolloutStatus, error) {
	s.mu.Lock()
	rec := s.rollouts[id]
	if rec == nil {
		s.mu.Unlock()
		return api.RolloutStatus{}, api.Errorf(api.CodeNotFound, "server: unknown rollout %q", id)
	}
	if rec.st.Done {
		st := rec.st.State
		s.mu.Unlock()
		return api.RolloutStatus{}, api.Errorf(api.CodeFailedPrecondition,
			"server: rollout %s is already terminal (%s)", id, st)
	}
	rec.abort = true
	s.mu.Unlock()
	s.logf("server: rollout %s: operator abort requested", id)
	return s.rolloutSnapshot(id)
}

// RolloutIDs returns the ids of every live rollout, oldest first.
func (s *Server) RolloutIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.rolloutOrder...)
}

// Rollout returns one rollout snapshot by id.
func (s *Server) Rollout(id string) (api.RolloutStatus, bool) {
	st, err := s.rolloutSnapshot(id)
	return st, err == nil
}

func (s *Server) rolloutSnapshot(id string) (api.RolloutStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.rollouts[id]
	if rec == nil {
		return api.RolloutStatus{}, api.Errorf(api.CodeNotFound, "server: unknown rollout %q", id)
	}
	return snapshotRolloutLocked(rec), nil
}

func snapshotRolloutLocked(rec *rolloutRecord) api.RolloutStatus {
	st := rec.st
	st.Vehicles = append([]core.VehicleID(nil), rec.st.Vehicles...)
	st.Waves = append([]api.RolloutWaveStatus(nil), rec.st.Waves...)
	if rec.st.Error != nil {
		e := *rec.st.Error
		st.Error = &e
	}
	return st
}

// pruneRolloutsLocked evicts the oldest terminal rollouts past the
// retention bound; running ones are always kept. Called with s.mu held.
func (s *Server) pruneRolloutsLocked() {
	excess := len(s.rolloutOrder) - rolloutRetention
	if excess <= 0 {
		return
	}
	kept := s.rolloutOrder[:0]
	for _, id := range s.rolloutOrder {
		if excess > 0 {
			if rec := s.rollouts[id]; rec == nil || rec.st.Done {
				delete(s.rollouts, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.rolloutOrder = kept
}

// bucketFleet orders a resolved fleet deterministically by (FNV-1a
// hash, id): the same fleet always buckets identically, so wave
// membership is stable across retries and restarts, and the hash keeps
// wave composition independent of enrollment order.
func bucketFleet(fleet []core.VehicleID) []core.VehicleID {
	out := append([]core.VehicleID(nil), fleet...)
	sort.Slice(out, func(i, k int) bool {
		hi, hk := fnv64a(out[i]), fnv64a(out[k])
		if hi != hk {
			return hi < hk
		}
		return out[i] < out[k]
	})
	return out
}

func fnv64a(v core.VehicleID) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(v); i++ {
		h = (h ^ uint64(v[i])) * 1099511628211
	}
	return h
}

// resolveWaveBounds turns a wave plan into cumulative vehicle counts
// over a fleet of n. An empty plan defaults to 1 -> 10% -> all, with
// degenerate boundaries (a fleet too small to distinguish them)
// deduplicated.
func resolveWaveBounds(waves []api.RolloutWave, n int) ([]int, error) {
	if n == 0 {
		return nil, api.Errorf(api.CodeFailedPrecondition, "server: rollout resolves to an empty fleet")
	}
	if len(waves) == 0 {
		var out []int
		for _, w := range defaultRolloutWaves {
			b := w.Count
			if b == 0 {
				b = int(math.Ceil(w.Fraction * float64(n)))
			}
			if b > n {
				b = n
			}
			if len(out) == 0 || b > out[len(out)-1] {
				out = append(out, b)
			}
		}
		return out, nil
	}
	out := make([]int, 0, len(waves))
	for i, w := range waves {
		var b int
		switch {
		case w.Count > 0:
			b = w.Count
			if b > n {
				b = n
			}
		case w.Fraction > 0 && w.Fraction <= 1:
			b = int(math.Ceil(w.Fraction * float64(n)))
		default:
			return nil, api.Errorf(api.CodeInvalidArgument,
				"server: rollout wave %d needs count > 0 or fraction in (0, 1]", i+1)
		}
		if len(out) > 0 && b <= out[len(out)-1] {
			return nil, api.Errorf(api.CodeInvalidArgument,
				"server: rollout wave boundaries must be strictly increasing (wave %d covers %d, previous %d)",
				i+1, b, out[len(out)-1])
		}
		out = append(out, b)
	}
	if out[len(out)-1] != n {
		return nil, api.Errorf(api.CodeInvalidArgument,
			"server: rollout's last wave covers %d of %d vehicles; it must cover the whole fleet",
			out[len(out)-1], n)
	}
	return out, nil
}

func waveStatuses(bounds []int) []api.RolloutWaveStatus {
	out := make([]api.RolloutWaveStatus, len(bounds))
	prev := 0
	for i, b := range bounds {
		out[i] = api.RolloutWaveStatus{Targets: b - prev}
		prev = b
	}
	return out
}

// verifyRolloutWaves runs the fleet-level wave-prefix abortability
// check: one representative upgrade plan per wave (the first vehicle
// with the From app installed — plans transfer across same-conf
// vehicles, so one stands for the wave), mirrored and walked by
// verify.VerifyWavePrefixes. A representative whose plan is statically
// unsafe fails the rollout up front; vehicles that cannot plan for
// other reasons fail individually at push time as batch children do.
func (s *Server) verifyRolloutWaves(ordered []core.VehicleID, bounds []int, from, to core.AppName) error {
	waves := make([][]*verify.Plan, len(bounds))
	prev := 0
	for wi, b := range bounds {
		for _, v := range ordered[prev:b] {
			vr, ok := s.store.Vehicle(v)
			if !ok {
				continue
			}
			oldRow, ok := s.store.InstalledApp(v, from)
			if !ok {
				continue
			}
			plan, err := s.planUpgrade(vr, oldRow, from, to)
			if err != nil {
				if api.CodeOf(err) == api.CodeUnsafePlan {
					return err
				}
				continue
			}
			waves[wi] = []*verify.Plan{plan.vplan}
			break
		}
		prev = b
	}
	if err := verify.VerifyWavePrefixes(waves); err != nil {
		return unsafePlan(err)
	}
	return nil
}

// journalRollout appends one rollout state-machine record and waits for
// it to be durable; a no-op on a memory-only server.
func (s *Server) journalRollout(rec journal.Record) error {
	if s.jn == nil {
		return nil
	}
	return waitDurable(s.jn.Append(rec))
}

// runRollout executes waves startWave.. in order, evaluating the health
// gate after each; it runs on its own goroutine (spawned by
// StartRollout, or by crash recovery when resuming at a clean
// boundary).
func (s *Server) runRollout(id string, startWave int) {
	s.mu.Lock()
	rec := s.rollouts[id]
	if rec == nil {
		s.mu.Unlock()
		return
	}
	user, from, to := rec.st.User, rec.st.From, rec.st.To
	ordered := append([]core.VehicleID(nil), rec.st.Vehicles...)
	bounds := append([]int(nil), rec.bounds...)
	health := rec.health
	s.mu.Unlock()

	for wave := startWave; wave < len(bounds); wave++ {
		if s.rolloutAborted(id) {
			s.rollbackRollout(id, "operator abort", api.CodeRolloutAborted, false)
			return
		}
		prev := 0
		if wave > 0 {
			prev = bounds[wave-1]
		}
		targets := ordered[prev:bounds[wave]]
		s.mu.Lock()
		rec.st.CurrentWave = wave
		s.mu.Unlock()

		ws := s.runRolloutWave(id, wave, user, from, to, targets)
		if reason, tripped := gateTrips(health, ws); tripped {
			s.logf("server: rollout %s: wave %d gate tripped: %s", id, wave+1, reason)
			s.rollbackRollout(id, reason, api.CodeRolloutUnhealthy, false)
			return
		}
		if s.rolloutAborted(id) {
			s.rollbackRollout(id, "operator abort", api.CodeRolloutAborted, false)
			return
		}
		// Promote: the boundary is only real once it is on disk — a
		// crash after this record resumes at wave+1, a crash before it
		// re-evaluates (and, with partial upgrades committed, rolls
		// back). A journal failure means no boundary can be promised, so
		// the fleet goes back to the known-good version.
		if err := s.journalRollout(journal.WavePromotedRec(id, wave+1)); err != nil {
			s.rollbackRollout(id, fmt.Sprintf("journal failure at wave %d promotion: %v", wave+1, err),
				api.CodeRolloutUnhealthy, false)
			return
		}
		s.mu.Lock()
		rec.st.Waves[wave].Promoted = true
		rec.promoted = wave + 1
		rec.st.CurrentWave = wave + 1
		s.mu.Unlock()
		s.logf("server: rollout %s: wave %d/%d promoted (%d vehicles)", id, wave+1, len(bounds), len(targets))
	}
	if s.rolloutAborted(id) {
		s.rollbackRollout(id, "operator abort", api.CodeRolloutAborted, false)
		return
	}
	if err := s.journalRollout(journal.RolloutDoneRec(id, "succeeded")); err != nil {
		s.logf("server: rollout %s: journaling completion: %v", id, err)
	}
	s.mu.Lock()
	rec.st.State = api.RolloutSucceeded
	rec.st.Done = true
	s.mu.Unlock()
	s.logf("server: rollout %s: succeeded (%d vehicles on %s)", id, len(ordered), to)
}

// runRolloutWave pushes one wave through the batch-upgrade machinery
// and returns its health window: per-child outcome counts, probe
// rollbacks and the p99 launch-to-settle latency.
func (s *Server) runRolloutWave(id string, wave int, user core.UserID, from, to core.AppName, targets []core.VehicleID) api.RolloutWaveStatus {
	parentID, children := s.newBatchOperation(api.OpBatchUpgrade, api.OpUpgrade, user, from, to, targets, "")
	s.mu.Lock()
	if rec := s.rollouts[id]; rec != nil {
		rec.st.Waves[wave].Started = true
		rec.st.Waves[wave].BatchOp = parentID
	}
	s.mu.Unlock()

	cache := &planCache{}
	inflight := make(chan struct{}, batchInflight)
	var wg sync.WaitGroup
	var resMu sync.Mutex
	var okN, failN, probeN int
	durs := make([]float64, 0, len(children))
	s.runBatch(children, func(c batchChild) {
		inflight <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() { <-inflight; wg.Done() }()
			start := time.Now()
			err := s.upgrade(c.opID, user, c.vehicle, from, to, cache)
			ms := float64(time.Since(start).Microseconds()) / 1000.0
			resMu.Lock()
			durs = append(durs, ms)
			if err == nil {
				okN++
			} else {
				failN++
				if api.CodeOf(err) == api.CodeRolledBack {
					probeN++
				}
			}
			resMu.Unlock()
			s.finishLaunch(c.opID, err)
		}()
	})
	wg.Wait()

	ws := api.RolloutWaveStatus{
		Targets: len(targets), Started: true, BatchOp: parentID,
		Succeeded: okN, Failed: failN, ProbeFailures: probeN,
		AckP99Millis: p99(durs),
	}
	s.mu.Lock()
	if rec := s.rollouts[id]; rec != nil {
		promoted := rec.st.Waves[wave].Promoted
		rec.st.Waves[wave] = ws
		rec.st.Waves[wave].Promoted = promoted
	}
	s.mu.Unlock()
	return ws
}

// p99 returns the 99th-percentile of the samples (nearest-rank), 0 for
// none.
func p99(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	idx := int(math.Ceil(0.99*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return samples[idx]
}

// gateTrips evaluates one wave's health window against the policy and
// returns the violation description. The zero policy is the strictest
// gate: any failed child trips it.
func gateTrips(pol api.RolloutHealthPolicy, ws api.RolloutWaveStatus) (string, bool) {
	if ws.Targets > 0 {
		rate := float64(ws.Failed) / float64(ws.Targets)
		if rate > pol.MaxFailureRate {
			return fmt.Sprintf("wave failure rate %.3f over the %.3f bound (%d of %d children failed)",
				rate, pol.MaxFailureRate, ws.Failed, ws.Targets), true
		}
	}
	if ws.ProbeFailures > pol.MaxProbeFailures {
		return fmt.Sprintf("%d vehicle-side probe rollbacks over the %d bound",
			ws.ProbeFailures, pol.MaxProbeFailures), true
	}
	if pol.MaxAckP99Millis > 0 && ws.AckP99Millis > pol.MaxAckP99Millis {
		return fmt.Sprintf("ack p99 %.1fms over the %.1fms bound", ws.AckP99Millis, pol.MaxAckP99Millis), true
	}
	return "", false
}

func (s *Server) rolloutAborted(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.rollouts[id]
	return rec != nil && rec.abort
}

// rollbackRollout downgrades every upgraded vehicle of the rollout in
// reverse wave order and closes the state machine. The pivot record is
// journaled durably before the first downgrade is pushed (skipped on
// resume — recovery already replayed it), so a crash mid-rollback
// always resumes rolling back. Vehicles whose downgrade fails
// transiently (disconnected, claim still draining) are retried with a
// bounded backoff; a vehicle no longer holding the To row needs no
// downgrade, which also makes resume idempotent.
func (s *Server) rollbackRollout(id, reason string, code api.ErrorCode, resumed bool) {
	s.mu.Lock()
	rec := s.rollouts[id]
	if rec == nil {
		s.mu.Unlock()
		return
	}
	rec.st.State = api.RolloutRollingBack
	if rec.st.GateReason == "" {
		rec.st.GateReason = reason
	}
	user, from, to := rec.st.User, rec.st.From, rec.st.To
	ordered := append([]core.VehicleID(nil), rec.st.Vehicles...)
	bounds := append([]int(nil), rec.bounds...)
	s.mu.Unlock()

	if !resumed {
		if err := s.journalRollout(journal.RolloutRolledBackRec(id, reason)); err != nil {
			// Durability is gone, but the downgrade is still the right
			// action; recovery will re-derive the partial state from the
			// store's rows.
			s.logf("server: rollout %s: journaling rollback pivot: %v", id, err)
		}
	}
	s.logf("server: rollout %s: rolling back fleet to %s: %s", id, from, reason)

	for wave := len(bounds) - 1; wave >= 0; wave-- {
		prev := 0
		if wave > 0 {
			prev = bounds[wave-1]
		}
		var targets []core.VehicleID
		for _, v := range ordered[prev:bounds[wave]] {
			if _, ok := s.store.InstalledApp(v, to); ok {
				targets = append(targets, v)
			}
		}
		if len(targets) == 0 {
			continue
		}
		parentID, children := s.newBatchOperation(api.OpBatchUpgrade, api.OpUpgrade, user, to, from, targets, "")
		s.mu.Lock()
		if rec := s.rollouts[id]; rec != nil {
			rec.st.Waves[wave].RollbackOp = parentID
			rec.st.CurrentWave = wave
		}
		s.mu.Unlock()
		cache := &planCache{}
		inflight := make(chan struct{}, batchInflight)
		var wg sync.WaitGroup
		s.runBatch(children, func(c batchChild) {
			inflight <- struct{}{}
			wg.Add(1)
			go func() {
				defer func() { <-inflight; wg.Done() }()
				s.finishLaunch(c.opID, s.downgradeWithRetry(c.opID, user, c.vehicle, from, to, cache))
			}()
		})
		wg.Wait()
	}
	if err := s.journalRollout(journal.RolloutDoneRec(id, "rolled_back")); err != nil {
		s.logf("server: rollout %s: journaling rollback completion: %v", id, err)
	}
	s.mu.Lock()
	if rec := s.rollouts[id]; rec != nil {
		rec.st.State = api.RolloutRolledBack
		rec.st.Done = true
		rec.st.Error = api.Errorf(code, "server: rollout %s rolled back: %s", id, reason)
	}
	s.mu.Unlock()
	s.logf("server: rollout %s: fleet rolled back to %s", id, from)
}

// downgradeWithRetry pushes one vehicle's downgrade (To -> From),
// retrying transient failures until the vehicle converges or the
// attempts run out. A vehicle that no longer holds the To row is
// already converged.
func (s *Server) downgradeWithRetry(opID string, user core.UserID, vehicle core.VehicleID, from, to core.AppName, cache *planCache) error {
	var err error
	for attempt := 0; attempt < rolloutRollbackAttempts; attempt++ {
		if _, ok := s.store.InstalledApp(vehicle, to); !ok {
			return nil
		}
		err = s.upgrade(opID, user, vehicle, to, from, cache)
		if err == nil {
			return nil
		}
		switch api.CodeOf(err) {
		case api.CodeUnavailable, api.CodeAlreadyExists:
			// Disconnected, or the forward child's claim is still
			// draining — both resolve with time.
		default:
			return err
		}
		t := time.NewTimer(rolloutRetryDelay)
		<-t.C
	}
	return err
}
