package server

import (
	"fmt"
	"sync"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
)

// Server is the trusted server: store, pusher and the deployment engine.
type Server struct {
	store  *Store
	pusher *Pusher

	mu  sync.Mutex
	seq uint32
	// pending tracks in-flight operations by sequence number.
	pending map[uint32]pendingOp
	// failures collects nack reasons keyed by vehicle|app.
	failures map[string][]string

	logf func(format string, args ...any)
}

// pendingOp records what an awaited acknowledgement completes.
type pendingOp struct {
	vehicle core.VehicleID
	app     core.AppName
	plugin  core.PluginName
	// kind is "install" or "uninstall".
	kind string
}

// OpStatus reports the progress of a deployment or uninstallation.
type OpStatus struct {
	App      core.AppName `json:"app"`
	Total    int          `json:"total"`
	Acked    int          `json:"acked"`
	Failures []string     `json:"failures"`
}

// Complete reports whether all operations acknowledged successfully.
func (st OpStatus) Complete() bool { return st.Acked == st.Total && len(st.Failures) == 0 }

// New creates a server with an empty store and a pusher.
func New() *Server {
	s := &Server{
		store:    NewStore(),
		pending:  make(map[uint32]pendingOp),
		failures: make(map[string][]string),
		logf:     func(string, ...any) {},
	}
	s.pusher = NewPusher(s.HandleVehicleMessage)
	return s
}

// Store exposes the database (Web Services layer and tests).
func (s *Server) Store() *Store { return s.store }

// Pusher exposes the vehicle connection manager.
func (s *Server) Pusher() *Pusher { return s.pusher }

// SetLogger routes server diagnostics.
func (s *Server) SetLogger(fn func(format string, args ...any)) {
	if fn != nil {
		s.logf = fn
	}
}

func (s *Server) nextSeq() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// Deploy runs the full deployment pipeline of section 3.2.2 for app on
// vehicle: compatibility check, dependency-ordered planning, context
// generation, packaging and push. It returns after the packages are sent;
// acknowledgements arrive asynchronously and are tracked in the
// InstalledAPP table (query with Status).
func (s *Server) Deploy(user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return fmt.Errorf("server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return fmt.Errorf("server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	app, ok := s.store.App(appName)
	if !ok {
		return fmt.Errorf("server: unknown app %s", appName)
	}
	if _, dup := s.store.InstalledApp(vehicleID, appName); dup {
		return fmt.Errorf("server: app %s already installed on %s", appName, vehicleID)
	}

	// Compatibility and dependency checks; failures are presented to the
	// user as the reasons collected in the report.
	report := s.CheckCompatibility(app, vr)
	if err := report.Error(); err != nil {
		return err
	}
	order, err := InstallOrder(app, report.Conf)
	if err != nil {
		return err
	}
	contexts, err := s.GenerateContexts(app, vr, order)
	if err != nil {
		return err
	}

	// Record the installation before pushing so arriving acks always find
	// their row.
	row := &InstalledApp{App: appName, Vehicle: vehicleID}
	for _, d := range order {
		ctx := contexts[d.Plugin]
		row.Plugins = append(row.Plugins, InstalledPlugin{
			Plugin: d.Plugin, ECU: d.ECU, SWC: d.SWC, PIC: ctx.PIC,
		})
	}
	s.store.RecordInstallation(row)

	// Package and push in dependency order.
	for _, d := range order {
		bin, _ := app.Binary(d.Plugin)
		pkg := plugin.Package{Binary: bin, Context: *contexts[d.Plugin]}
		raw, err := pkg.MarshalBinary()
		if err != nil {
			s.store.RemoveInstallation(vehicleID, appName)
			return fmt.Errorf("server: packaging %s: %v", d.Plugin, err)
		}
		seq := s.nextSeq()
		s.mu.Lock()
		s.pending[seq] = pendingOp{vehicle: vehicleID, app: appName, plugin: d.Plugin, kind: "install"}
		s.mu.Unlock()
		msg := core.Message{
			Type: core.MsgInstall, Plugin: d.Plugin,
			ECU: d.ECU, SWC: d.SWC, Seq: seq, Payload: raw,
		}
		if err := s.pusher.Push(vehicleID, msg); err != nil {
			s.store.RemoveInstallation(vehicleID, appName)
			return fmt.Errorf("server: push to %s: %v", vehicleID, err)
		}
		s.logf("server: pushed {%d, '%s', %s, %s.pkg} to %s", core.MsgInstall, d.Plugin, d.ECU, d.Plugin, vehicleID)
	}
	return nil
}

// Uninstall removes an app from a vehicle after verifying that no other
// installed app depends on its plug-ins; the InstalledAPP row is dropped
// once every uninstallation has been acknowledged.
func (s *Server) Uninstall(user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return fmt.Errorf("server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return fmt.Errorf("server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	row, ok := s.store.InstalledApp(vehicleID, appName)
	if !ok {
		return fmt.Errorf("server: app %s is not installed on %s", appName, vehicleID)
	}

	// Dependency supervision: other apps requiring these plug-ins block
	// the uninstall, and the user is told which ones.
	removing := make(map[core.PluginName]bool, len(row.Plugins))
	for _, p := range row.Plugins {
		removing[p.Plugin] = true
	}
	var dependants []string
	for _, other := range s.store.InstalledApps(vehicleID) {
		if other.App == appName {
			continue
		}
		app, ok := s.store.App(other.App)
		if !ok {
			continue
		}
		for _, b := range app.Binaries {
			for _, req := range b.Manifest.Requires {
				if removing[req] {
					dependants = append(dependants,
						fmt.Sprintf("%s (plug-in %s requires %s)", other.App, b.Manifest.Name, req))
				}
			}
		}
	}
	if len(dependants) > 0 {
		return fmt.Errorf("server: cannot uninstall %s: dependent apps must be uninstalled first: %v",
			appName, dependants)
	}

	// Send uninstall messages in reverse install order.
	for i := len(row.Plugins) - 1; i >= 0; i-- {
		p := row.Plugins[i]
		seq := s.nextSeq()
		s.mu.Lock()
		s.pending[seq] = pendingOp{vehicle: vehicleID, app: appName, plugin: p.Plugin, kind: "uninstall"}
		s.mu.Unlock()
		msg := core.Message{Type: core.MsgUninstall, Plugin: p.Plugin, ECU: p.ECU, SWC: p.SWC, Seq: seq}
		if err := s.pusher.Push(vehicleID, msg); err != nil {
			return fmt.Errorf("server: push to %s: %v", vehicleID, err)
		}
	}
	return nil
}

// Restore re-installs the plug-ins previously installed on a replaced
// ECU, reusing their recorded PICs so port ids stay stable (paper section
// 3.2.2, the restore operation).
func (s *Server) Restore(user core.UserID, vehicleID core.VehicleID, replaced core.ECUID) (int, error) {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return 0, fmt.Errorf("server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return 0, fmt.Errorf("server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	sent := 0
	for _, row := range s.store.InstalledApps(vehicleID) {
		app, ok := s.store.App(row.App)
		if !ok {
			continue
		}
		conf, ok := app.ConfFor(vr.Conf.Model)
		if !ok {
			continue
		}
		order, err := InstallOrder(app, conf)
		if err != nil {
			return sent, err
		}
		// Regenerate contexts with recorded PICs forced, so PLC remote
		// ids match the surviving plug-ins.
		contexts, err := s.GenerateContexts(app, vr, order)
		if err != nil {
			return sent, err
		}
		for _, d := range order {
			if d.ECU != replaced {
				continue
			}
			var recorded core.PIC
			for _, p := range row.Plugins {
				if p.Plugin == d.Plugin {
					recorded = p.PIC
				}
			}
			ctx := contexts[d.Plugin]
			if recorded != nil {
				ctx = remapContext(ctx, recorded)
			}
			bin, _ := app.Binary(d.Plugin)
			pkg := plugin.Package{Binary: bin, Context: *ctx}
			raw, err := pkg.MarshalBinary()
			if err != nil {
				return sent, fmt.Errorf("server: restore packaging %s: %v", d.Plugin, err)
			}
			seq := s.nextSeq()
			s.mu.Lock()
			s.pending[seq] = pendingOp{vehicle: vehicleID, app: row.App, plugin: d.Plugin, kind: "install"}
			s.mu.Unlock()
			msg := core.Message{Type: core.MsgInstall, Plugin: d.Plugin,
				ECU: d.ECU, SWC: d.SWC, Seq: seq, Payload: raw}
			if err := s.pusher.Push(vehicleID, msg); err != nil {
				return sent, err
			}
			sent++
		}
	}
	return sent, nil
}

// remapContext rewrites a freshly generated context to use the recorded
// PIC's port ids.
func remapContext(ctx *core.Context, recorded core.PIC) *core.Context {
	remap := make(map[core.PluginPortID]core.PluginPortID, len(ctx.PIC))
	for _, e := range ctx.PIC {
		if id, ok := recorded.Lookup(e.Name); ok {
			remap[e.ID] = id
		}
	}
	out := &core.Context{PIC: recorded}
	for _, p := range ctx.PLC {
		np := p
		if id, ok := remap[p.Plugin]; ok {
			np.Plugin = id
		}
		if p.Kind == core.LinkPeer {
			if id, ok := remap[p.Peer]; ok {
				np.Peer = id
			}
		}
		out.PLC = append(out.PLC, np)
	}
	for _, e := range ctx.ECC {
		ne := e
		if id, ok := remap[e.Port]; ok {
			ne.Port = id
		}
		out.ECC = append(out.ECC, ne)
	}
	return out
}

// HandleVehicleMessage processes acknowledgements arriving from a
// vehicle's ECM.
func (s *Server) HandleVehicleMessage(vehicle core.VehicleID, msg core.Message) {
	switch msg.Type {
	case core.MsgAck, core.MsgNack:
		s.mu.Lock()
		op, ok := s.pending[msg.Seq]
		if ok {
			delete(s.pending, msg.Seq)
		}
		s.mu.Unlock()
		if !ok {
			s.logf("server: stray %v seq %d from %s", msg.Type, msg.Seq, vehicle)
			return
		}
		s.applyAck(op, msg)
	default:
		s.logf("server: unexpected %v from %s", msg.Type, vehicle)
	}
}

func failureKey(vehicle core.VehicleID, app core.AppName) string {
	return string(vehicle) + "|" + string(app)
}

func (s *Server) applyAck(op pendingOp, msg core.Message) {
	if msg.Type == core.MsgNack {
		s.mu.Lock()
		key := failureKey(op.vehicle, op.app)
		s.failures[key] = append(s.failures[key],
			fmt.Sprintf("%s: %s", op.plugin, string(msg.Payload)))
		s.mu.Unlock()
		s.logf("server: %s of %s on %s failed: %s", op.kind, op.plugin, op.vehicle, msg.Payload)
		return
	}
	switch op.kind {
	case "install":
		if row, ok := s.store.InstalledApp(op.vehicle, op.app); ok {
			for i := range row.Plugins {
				if row.Plugins[i].Plugin == op.plugin {
					row.Plugins[i].Acked = true
				}
			}
		}
	case "uninstall":
		row, ok := s.store.InstalledApp(op.vehicle, op.app)
		if !ok {
			return
		}
		kept := row.Plugins[:0]
		for _, p := range row.Plugins {
			if p.Plugin != op.plugin {
				kept = append(kept, p)
			}
		}
		row.Plugins = kept
		if len(row.Plugins) == 0 {
			// "The InstalledAPP table is updated once successful
			// uninstallation has been fully acknowledged."
			s.store.RemoveInstallation(op.vehicle, op.app)
		}
	}
}

// ResolveExternal finds the in-vehicle destination of an external message
// id on a vehicle by walking its installed apps' SW confs and recorded
// PICs. Federation brokers use it to push FES traffic (see internal/fes).
func (s *Server) ResolveExternal(vehicle core.VehicleID, messageID string) (core.ECUID, core.PluginPortID, bool) {
	vr, ok := s.store.Vehicle(vehicle)
	if !ok {
		return "", 0, false
	}
	for _, row := range s.store.InstalledApps(vehicle) {
		app, ok := s.store.App(row.App)
		if !ok {
			continue
		}
		conf, ok := app.ConfFor(vr.Conf.Model)
		if !ok {
			continue
		}
		for _, d := range conf.Deployments {
			for _, conn := range d.Connections {
				if conn.External == nil || conn.External.MessageID != messageID {
					continue
				}
				for _, p := range row.Plugins {
					if p.Plugin != d.Plugin {
						continue
					}
					if id, ok := p.PIC.Lookup(conn.Port); ok {
						return d.ECU, id, true
					}
				}
			}
		}
	}
	return "", 0, false
}

// Status reports the progress of the most recent operation on an app.
func (s *Server) Status(vehicle core.VehicleID, app core.AppName) OpStatus {
	st := OpStatus{App: app}
	s.mu.Lock()
	st.Failures = append(st.Failures, s.failures[failureKey(vehicle, app)]...)
	s.mu.Unlock()
	if row, ok := s.store.InstalledApp(vehicle, app); ok {
		st.Total = len(row.Plugins)
		for _, p := range row.Plugins {
			if p.Acked {
				st.Acked++
			}
		}
	}
	return st
}
