package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/journal"
	"dynautosar/internal/plugin"
)

// Server is the trusted server: store, pusher and the deployment engine.
type Server struct {
	store  *Store
	pusher *Pusher

	// jn is the durable-state journal (nil when running memory-only);
	// see persist.go for the recovery path and DESIGN.md for the record
	// and snapshot semantics. recovery summarizes what Open replayed.
	jn       *journal.Journal
	recovery RecoveryStats

	mu  sync.Mutex
	seq uint32
	// pending tracks in-flight pushes by sequence number.
	pending map[uint32]pendingOp
	// failures collects nack reasons keyed by vehicle|app.
	failures map[string][]string
	// uninstalling claims one in-flight uninstall per vehicle|app (value
	// is the owning operation id), the counterpart of the deploy path's
	// atomic check-and-record.
	uninstalling map[string]string
	// upgrading claims both app names of an in-flight live upgrade per
	// vehicle (value is the owning operation id), so concurrent upgrades
	// and deploys touching either side are refused instead of
	// interleaving their swaps (see upgrade.go).
	upgrading map[string]string
	// ops is the async-operation registry (see ops.go).
	ops     map[string]*opRecord
	opOrder []string
	opSeq   uint64
	// opPruneDefer suppresses prune scans until the registry grows past
	// it: set when a scan leaves the registry over budget (a live
	// batch's children are unevictable), cleared when a batch parent
	// completes, so operation creation stays amortized O(1) instead of
	// rescanning the whole registry per op for the life of the batch.
	opPruneDefer int
	// statOpsCreated/statOpsSettled feed GET /v1/statz (see statz.go):
	// operations registered since process start, and terminal outcomes
	// bucketed by code.
	statOpsCreated uint64
	statOpsSettled map[string]uint64
	// rollouts is the progressive-rollout registry (see rollout.go).
	rollouts     map[string]*rolloutRecord
	rolloutOrder []string
	rolloutSeq   uint64
	// rolloutResume holds the continuations of rollouts interrupted by a
	// restart; recoverFrom fills it and OpenJournal launches them once
	// the journal is attached.
	rolloutResume []func()
	// idem maps idempotency keys to the operations they created, so a
	// client retry of a create whose response was lost (crash, failover)
	// is answered with the original operation instead of a duplicate.
	// Bindings are journaled with the op_created records they ride and
	// rebuilt by recovery (see shard.go).
	idem map[string]*idemClaim
	// shardID/shardRole/shardEpoch are the server's federated-control-
	// plane identity (see shard.go): which shard it serves, whether it is
	// that shard's replication leader, and its leadership epoch — bumped
	// and journaled on every (re)assumption of leadership so a deposed
	// leader's stale writes are recognizable.
	shardID    string
	shardRole  string
	shardEpoch uint64

	// deployMu stripes a per-vehicle critical section over deploy
	// planning + check-and-record: planning reads the vehicle's free
	// port-id space, so two concurrent deploys of *different* apps to
	// one vehicle must not both plan before either records (the atomic
	// check-and-record only excludes same-app duplicates). Striped by
	// the store's vehicle hash, so batch workers on different vehicles
	// rarely meet.
	deployMu [installedShardCount]sync.Mutex

	// shipper, when set, replicates the journal to follower peers;
	// healthz and statz surface its per-follower lag (see shard.go).
	shipper *journal.Shipper

	// ackWait overrides the ack-collection deadline of the upgrade
	// pipeline (0 = the upgradeAckTimeout default); pushCtx is canceled
	// by Close so no collect loop outlives the server.
	ackWait    time.Duration
	pushCtx    context.Context
	pushCancel context.CancelFunc

	logf func(format string, args ...any)
}

// pendingOp records what an awaited acknowledgement completes.
type pendingOp struct {
	vehicle core.VehicleID
	app     core.AppName
	plugin  core.PluginName
	// kind is "install", "uninstall" or "upgrade".
	kind string
	// opID ties the push to its async operation ("" for none).
	opID string
	// epoch is the vehicle-link registration the frame travelled on; the
	// disconnect sweep settles only frames of the dead epoch or older.
	epoch uint64
	// notify, when set, receives this push's settlement exactly once —
	// the upgrade pipeline blocks on its swaps' outcomes instead of
	// polling the operation. Must be buffered for every push sharing it.
	notify chan ackOutcome
}

// ackOutcome is one settled push as seen by a waiting pipeline.
type ackOutcome struct {
	plugin core.PluginName
	// failure is the nack/loss reason, "" on success.
	failure string
}

// New creates a server with an empty store and a pusher.
func New() *Server {
	s := &Server{
		store:        NewStore(),
		pending:      make(map[uint32]pendingOp),
		failures:     make(map[string][]string),
		uninstalling: make(map[string]string),
		ops:          make(map[string]*opRecord),
		rollouts:     make(map[string]*rolloutRecord),
		idem:         make(map[string]*idemClaim),
		logf:         func(string, ...any) {},
	}
	s.pushCtx, s.pushCancel = context.WithCancel(context.Background())
	s.pusher = NewPusher(s.HandleVehicleMessage)
	s.pusher.SetDisconnectHandler(s.handleVehicleDisconnect)
	return s
}

// handleVehicleDisconnect fails every in-flight push that travelled on
// the dead link (epoch or older): the ECM writes each acknowledgement
// exactly once to the link it arrived on — there is no replay buffer —
// so those acks are gone for good and the owning operations terminate
// instead of hanging. Terminal operations release their uninstall
// claims, keeping retries possible. Pushes on a successor link carry a
// newer epoch and are untouched.
func (s *Server) handleVehicleDisconnect(vehicle core.VehicleID, epoch uint64) {
	s.mu.Lock()
	var lost []pendingOp
	for seq, p := range s.pending {
		if p.vehicle == vehicle && p.epoch <= epoch {
			delete(s.pending, seq)
			lost = append(lost, p)
		}
	}
	// Record the losses where Status reads them too, so the per-app
	// progress surface agrees with the failed operation instead of
	// showing acked < total with no failures forever.
	for _, p := range lost {
		key := failureKey(p.vehicle, p.app)
		s.failures[key] = append(s.failures[key],
			fmt.Sprintf("%s: vehicle disconnected before acknowledgement", p.plugin))
	}
	s.mu.Unlock()
	for _, p := range lost {
		s.settleAck(p, fmt.Sprintf("%s: vehicle disconnected before acknowledgement", p.plugin))
		s.logf("server: %s of %s on %s lost: vehicle disconnected", p.kind, p.plugin, vehicle)
	}
}

// Store exposes the database (Web Services layer and tests).
func (s *Server) Store() *Store { return s.store }

// Pusher exposes the vehicle connection manager.
func (s *Server) Pusher() *Pusher { return s.pusher }

// SetLogger routes server diagnostics.
func (s *Server) SetLogger(fn func(format string, args ...any)) {
	if fn != nil {
		s.logf = fn
	}
}

// enqueuePending allocates the next sequence number, registers the
// pending push and charges it to its operation, all atomically.
func (s *Server) enqueuePending(p pendingOp) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.pending[s.seq] = p
	if rec := s.ops[p.opID]; rec != nil {
		rec.op.Total++
		rec.outstanding++
		if prec := s.ops[rec.parent]; prec != nil && !prec.op.Done {
			prec.op.Total++
		}
	}
	return s.seq
}

// dropPending undoes enqueuePending when the frame never made it onto
// the wire, so a failed push leaves neither a dangling entry nor
// phantom totals on its operation.
func (s *Server) dropPending(seq uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[seq]
	if !ok {
		return
	}
	delete(s.pending, seq)
	if rec := s.ops[p.opID]; rec != nil && !rec.op.Done {
		if rec.op.Total > 0 {
			rec.op.Total--
		}
		if rec.outstanding > 0 {
			rec.outstanding--
		}
		if prec := s.ops[rec.parent]; prec != nil && !prec.op.Done && prec.op.Total > 0 {
			prec.op.Total--
		}
	}
}

// Deploy runs the full deployment pipeline of section 3.2.2 for app on
// vehicle: compatibility check, dependency-ordered planning, context
// generation, packaging and push. It returns after the packages are sent;
// acknowledgements arrive asynchronously and are tracked in the
// InstalledAPP table (query with Status) and in the operation registry.
func (s *Server) Deploy(user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	if err := s.precheckDeploy(user, vehicleID, appName); err != nil {
		return err
	}
	rec := s.newOperation(api.OpDeploy, user, vehicleID, appName, "", "", "")
	err := s.deploy(rec.op.ID, user, vehicleID, appName)
	s.finishLaunch(rec.op.ID, err)
	return err
}

// DeployAsync validates the cheap preconditions synchronously, then
// runs the deployment pipeline in the background; progress is reported
// through the returned operation.
func (s *Server) DeployAsync(user core.UserID, vehicleID core.VehicleID, appName core.AppName) (api.Operation, error) {
	return s.deployAsyncIdem("", user, vehicleID, appName)
}

// deployAsyncIdem is DeployAsync with the operation's idempotency key
// threaded through to creation (so the key is journaled atomically with
// the op_created record); the Service adapter is the keyed caller.
func (s *Server) deployAsyncIdem(idemKey string, user core.UserID, vehicleID core.VehicleID, appName core.AppName) (api.Operation, error) {
	if err := s.precheckDeploy(user, vehicleID, appName); err != nil {
		return api.Operation{}, err
	}
	rec := s.newOperation(api.OpDeploy, user, vehicleID, appName, "", "", idemKey)
	id := rec.op.ID
	go func() {
		s.finishLaunch(id, s.deploy(id, user, vehicleID, appName))
	}()
	return s.operationSnapshot(id), nil
}

// deployPrereqs validates vehicle, ownership and app existence and
// returns the vehicle record — the single validator shared by the
// precheck and the pipeline, so the two cannot drift.
func (s *Server) deployPrereqs(user core.UserID, vehicleID core.VehicleID, appName core.AppName) (VehicleRecord, error) {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return VehicleRecord{}, api.Errorf(api.CodeNotFound, "server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return VehicleRecord{}, api.Errorf(api.CodePermissionDenied, "server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	if !s.store.HasApp(appName) {
		return VehicleRecord{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", appName)
	}
	return vr, nil
}

// precheckDeploy runs the checks that should reject a deploy request
// before an operation is created; the duplicate-install probe is only
// advisory here — the pipeline's atomic check-and-record decides.
func (s *Server) precheckDeploy(user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	if _, err := s.deployPrereqs(user, vehicleID, appName); err != nil {
		return err
	}
	if _, dup := s.store.InstalledApp(vehicleID, appName); dup {
		return api.Errorf(api.CodeAlreadyExists, "server: app %s already installed on %s", appName, vehicleID)
	}
	return nil
}

// deploy is the deployment pipeline shared by the sync and async entry
// points; pushes are charged to the operation opID.
func (s *Server) deploy(opID string, user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	return s.deployWith(opID, user, vehicleID, appName, nil)
}

// deployPlan is the vehicle-independent half of one deployment: the
// dependency-ordered deployments, the generated port-id assignments and
// the marshaled installation packages. A plan computed against a fresh
// vehicle (no installed apps) applies verbatim to every other fresh
// vehicle with an equal configuration — what lets a batch plan and
// package once, then push many.
type deployPlan struct {
	// conf is the donor vehicle's configuration (already a deep copy,
	// courtesy of Store.Vehicle).
	conf core.VehicleConf
	// fresh records that the donor vehicle had no installed apps, the
	// precondition for reusing the plan elsewhere.
	fresh bool
	order []Deployment
	pics  map[core.PluginName]core.PIC
	raws  map[core.PluginName][]byte
}

// planDeploy runs the read-only part of the pipeline: compatibility
// check, dependency-ordered planning, context generation and packaging.
func (s *Server) planDeploy(app App, vr VehicleRecord) (*deployPlan, error) {
	// Compatibility and dependency checks; failures are presented to the
	// user as the reasons collected in the report.
	report := s.CheckCompatibility(app, vr)
	if err := report.Error(); err != nil {
		return nil, err
	}
	order, err := InstallOrder(app, report.Conf)
	if err != nil {
		return nil, err
	}
	contexts, err := s.GenerateContexts(app, vr, order)
	if err != nil {
		return nil, err
	}
	// Static verification: every intermediate configuration along the
	// install path must satisfy the invariant catalogue, or nothing is
	// packaged, recorded or pushed.
	if err := s.verifyDeploy(app, vr, order, contexts); err != nil {
		return nil, err
	}
	plan := &deployPlan{
		conf:  vr.Conf,
		order: order,
		pics:  make(map[core.PluginName]core.PIC, len(order)),
		raws:  make(map[core.PluginName][]byte, len(order)),
	}
	for _, d := range order {
		bin, _ := app.Binary(d.Plugin)
		pkg := plugin.Package{Binary: bin, Context: *contexts[d.Plugin]}
		raw, err := pkg.MarshalBinary()
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "server: packaging %s: %v", d.Plugin, err)
		}
		plan.pics[d.Plugin] = contexts[d.Plugin].PIC
		plan.raws[d.Plugin] = raw
	}
	return plan, nil
}

// pushPlan pushes the plan's packages to the vehicle, pinned to the
// link that is current at launch; the installation row must already be
// recorded so arriving acks always find it.
func (s *Server) pushPlan(opID string, vehicleID core.VehicleID, appName core.AppName, plan *deployPlan) error {
	epoch := s.pusher.Epoch(vehicleID)
	for _, d := range plan.order {
		seq := s.enqueuePending(pendingOp{vehicle: vehicleID, app: appName, plugin: d.Plugin, kind: "install", opID: opID, epoch: epoch})
		msg := core.Message{
			Type: core.MsgInstall, Plugin: d.Plugin,
			ECU: d.ECU, SWC: d.SWC, Seq: seq, Payload: plan.raws[d.Plugin],
		}
		if err := s.pusher.PushOn(vehicleID, epoch, msg); err != nil {
			s.dropPending(seq)
			s.store.RemoveInstallation(vehicleID, appName)
			return api.Errorf(api.CodeUnavailable, "server: push to %s: %v", vehicleID, err)
		}
		s.logf("server: pushed {%d, '%s', %s, %s.pkg} to %s", core.MsgInstall, d.Plugin, d.ECU, d.Plugin, vehicleID)
	}
	return nil
}

// stageDeploy runs the synchronous half of one deployment: plan and
// record under the vehicle's deploy stripe (pushes happen outside it —
// they block on the vehicle link). The PICs are copied per row so rows
// of different vehicles never share a reused plan's memory; the atomic
// check-and-record rejects duplicate deploys of the same app. The
// returned ticket resolves when the installation record is durable;
// waiting is the caller's, and happens outside the stripe — the row is
// already visible to concurrent planners (their port-id reads include
// it), so holding the stripe across a group commit would only
// serialize unrelated deploys behind an fsync.
func (s *Server) stageDeploy(user core.UserID, vehicleID core.VehicleID, appName core.AppName, cache *planCache) (*deployPlan, journal.Ticket, error) {
	vr, err := s.deployPrereqs(user, vehicleID, appName)
	if err != nil {
		return nil, journal.Ticket{}, err
	}
	// A deploy of an app that is a side of an in-flight live upgrade
	// would race the upgrade's atomic row commit; refuse it up front.
	if s.upgradeTarget(vehicleID, appName) {
		return nil, journal.Ticket{}, api.Errorf(api.CodeAlreadyExists,
			"server: app %s on %s is part of an in-flight upgrade", appName, vehicleID)
	}
	stripe := &s.deployMu[shardIndex(vehicleID)]
	stripe.Lock()
	defer stripe.Unlock()
	plan, err := s.planFor(vr, appName, cache)
	if err != nil {
		return nil, journal.Ticket{}, err
	}
	row := &InstalledApp{App: appName, Vehicle: vehicleID}
	for _, d := range plan.order {
		row.Plugins = append(row.Plugins, InstalledPlugin{
			Plugin: d.Plugin, ECU: d.ECU, SWC: d.SWC,
			PIC: append(core.PIC(nil), plan.pics[d.Plugin]...),
		})
	}
	ticket, err := s.store.tryRecordInstallation(row)
	if err != nil {
		return nil, journal.Ticket{}, err
	}
	return plan, ticket, nil
}

// awaitInstallDurable is the write-ahead gate shared by the single and
// batch deploy paths: it blocks until a staged row's record is on disk,
// rolling the row back (for the journal it never existed) when the
// commit failed.
func (s *Server) awaitInstallDurable(t journal.Ticket, vehicleID core.VehicleID, appName core.AppName) error {
	if err := waitDurable(t); err != nil {
		s.store.rollbackInstallation(vehicleID, appName)
		return err
	}
	return nil
}

// deployWith runs the full pipeline for one vehicle, consulting the
// batch plan cache (nil for single deploys) before planning from
// scratch.
func (s *Server) deployWith(opID string, user core.UserID, vehicleID core.VehicleID, appName core.AppName, cache *planCache) error {
	plan, ticket, err := s.stageDeploy(user, vehicleID, appName, cache)
	if err != nil {
		return err
	}
	// Write-ahead gate: the packages go on the wire only after the
	// installation record is on disk.
	if err := s.awaitInstallDurable(ticket, vehicleID, appName); err != nil {
		return err
	}
	return s.pushPlan(opID, vehicleID, appName, plan)
}

// planFor returns the deployment plan for one vehicle: a cached fleet
// plan when the vehicle is fresh and a structurally equal conf was
// already planned, a fresh pipeline run otherwise. Plans transfer only
// between fresh vehicles: installed apps change port-id assignment,
// quota headroom and dependency resolution, so vehicles with history
// always plan individually. Called with the vehicle's deploy stripe
// held.
func (s *Server) planFor(vr VehicleRecord, appName core.AppName, cache *planCache) (*deployPlan, error) {
	fresh := !s.store.HasInstalledApps(vr.ID)
	if cache != nil && fresh {
		if plan := cache.lookup(vr.Conf); plan != nil {
			return plan, nil
		}
	}
	var app App
	if cache != nil {
		// One deep copy of the app per batch instead of one per vehicle.
		a, ok := cache.appRecord(s.store, appName)
		if !ok {
			return nil, api.Errorf(api.CodeNotFound, "server: unknown app %s", appName)
		}
		app = a
	} else {
		app, _ = s.store.App(appName)
	}
	plan, err := s.planDeploy(app, vr)
	if err != nil {
		return nil, err
	}
	plan.fresh = fresh
	if cache != nil && fresh {
		cache.add(plan)
	}
	return plan, nil
}

// Uninstall removes an app from a vehicle after verifying that no other
// installed app depends on its plug-ins; the InstalledAPP row is dropped
// once every uninstallation has been acknowledged.
func (s *Server) Uninstall(user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	if err := s.precheckUninstall(user, vehicleID, appName); err != nil {
		return err
	}
	rec := s.newOperation(api.OpUninstall, user, vehicleID, appName, "", "", "")
	err := s.uninstall(rec.op.ID, user, vehicleID, appName)
	s.finishLaunch(rec.op.ID, err)
	return err
}

// UninstallAsync is the operation-returning variant of Uninstall.
func (s *Server) UninstallAsync(user core.UserID, vehicleID core.VehicleID, appName core.AppName) (api.Operation, error) {
	return s.uninstallAsyncIdem("", user, vehicleID, appName)
}

func (s *Server) uninstallAsyncIdem(idemKey string, user core.UserID, vehicleID core.VehicleID, appName core.AppName) (api.Operation, error) {
	if err := s.precheckUninstall(user, vehicleID, appName); err != nil {
		return api.Operation{}, err
	}
	rec := s.newOperation(api.OpUninstall, user, vehicleID, appName, "", "", idemKey)
	id := rec.op.ID
	go func() {
		s.finishLaunch(id, s.uninstall(id, user, vehicleID, appName))
	}()
	return s.operationSnapshot(id), nil
}

func (s *Server) precheckUninstall(user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return api.Errorf(api.CodeNotFound, "server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return api.Errorf(api.CodePermissionDenied, "server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	if _, ok := s.store.InstalledApp(vehicleID, appName); !ok {
		return api.Errorf(api.CodeNotFound, "server: app %s is not installed on %s", appName, vehicleID)
	}
	return nil
}

func (s *Server) uninstall(opID string, user core.UserID, vehicleID core.VehicleID, appName core.AppName) error {
	if err := s.precheckUninstall(user, vehicleID, appName); err != nil {
		return err
	}
	// An uninstall racing a live upgrade of the same app would fight the
	// upgrade's row commit; refuse it while the upgrade is in flight.
	if s.upgradeTarget(vehicleID, appName) {
		return api.Errorf(api.CodeFailedPrecondition,
			"server: app %s on %s is part of an in-flight upgrade", appName, vehicleID)
	}
	// Claim the uninstall before snapshotting the row, so concurrent
	// requests cannot each push a full set of MsgUninstall frames. The
	// claim is released when the operation reaches a terminal state
	// (finishLaunch / completeLocked).
	key := failureKey(vehicleID, appName)
	s.mu.Lock()
	if owner := s.uninstalling[key]; owner != "" && owner != opID {
		s.mu.Unlock()
		return api.Errorf(api.CodeAlreadyExists,
			"server: uninstall of %s on %s already in progress", appName, vehicleID)
	}
	s.uninstalling[key] = opID
	s.mu.Unlock()
	row, ok := s.store.InstalledApp(vehicleID, appName)
	if !ok {
		return api.Errorf(api.CodeNotFound, "server: app %s is not installed on %s", appName, vehicleID)
	}

	// Dependency supervision: other apps requiring these plug-ins block
	// the uninstall, and the user is told which ones.
	if dependants := s.uninstallDependants(vehicleID, appName, row); len(dependants) > 0 {
		return api.Errorf(api.CodeFailedPrecondition,
			"server: cannot uninstall %s: dependent apps must be uninstalled first: %v", appName, dependants)
	}

	// Static verification of the removal path: every intermediate state
	// (plug-ins leave in reverse install order) must keep the surviving
	// population consistent, or nothing is pushed.
	if vr, ok := s.store.Vehicle(vehicleID); ok {
		if err := s.verifyUninstall(vr, row); err != nil {
			return err
		}
	}

	// Send uninstall messages in reverse install order, pinned to the
	// current vehicle link.
	epoch := s.pusher.Epoch(vehicleID)
	for i := len(row.Plugins) - 1; i >= 0; i-- {
		p := row.Plugins[i]
		seq := s.enqueuePending(pendingOp{vehicle: vehicleID, app: appName, plugin: p.Plugin, kind: "uninstall", opID: opID, epoch: epoch})
		msg := core.Message{Type: core.MsgUninstall, Plugin: p.Plugin, ECU: p.ECU, SWC: p.SWC, Seq: seq}
		if err := s.pusher.PushOn(vehicleID, epoch, msg); err != nil {
			s.dropPending(seq)
			return api.Errorf(api.CodeUnavailable, "server: push to %s: %v", vehicleID, err)
		}
	}
	return nil
}

// Restore re-installs the plug-ins previously installed on a replaced
// ECU, reusing their recorded PICs so port ids stay stable (paper section
// 3.2.2, the restore operation).
func (s *Server) Restore(user core.UserID, vehicleID core.VehicleID, replaced core.ECUID) (int, error) {
	if err := s.precheckRestore(user, vehicleID); err != nil {
		return 0, err
	}
	rec := s.newOperation(api.OpRestore, user, vehicleID, "", "", replaced, "")
	n, err := s.restore(rec.op.ID, user, vehicleID, replaced)
	s.finishLaunch(rec.op.ID, err)
	return n, err
}

// RestoreAsync is the operation-returning variant of Restore; the
// number of re-installed plug-ins appears as the operation's Total.
func (s *Server) RestoreAsync(user core.UserID, vehicleID core.VehicleID, replaced core.ECUID) (api.Operation, error) {
	return s.restoreAsyncIdem("", user, vehicleID, replaced)
}

func (s *Server) restoreAsyncIdem(idemKey string, user core.UserID, vehicleID core.VehicleID, replaced core.ECUID) (api.Operation, error) {
	if err := s.precheckRestore(user, vehicleID); err != nil {
		return api.Operation{}, err
	}
	rec := s.newOperation(api.OpRestore, user, vehicleID, "", "", replaced, idemKey)
	id := rec.op.ID
	go func() {
		_, err := s.restore(id, user, vehicleID, replaced)
		s.finishLaunch(id, err)
	}()
	return s.operationSnapshot(id), nil
}

func (s *Server) precheckRestore(user core.UserID, vehicleID core.VehicleID) error {
	vr, ok := s.store.Vehicle(vehicleID)
	if !ok {
		return api.Errorf(api.CodeNotFound, "server: unknown vehicle %s", vehicleID)
	}
	if vr.Owner != user {
		return api.Errorf(api.CodePermissionDenied, "server: vehicle %s is not bound to user %s", vehicleID, user)
	}
	return nil
}

func (s *Server) restore(opID string, user core.UserID, vehicleID core.VehicleID, replaced core.ECUID) (int, error) {
	if err := s.precheckRestore(user, vehicleID); err != nil {
		return 0, err
	}
	vr, _ := s.store.Vehicle(vehicleID)
	epoch := s.pusher.Epoch(vehicleID)
	sent := 0
	for _, row := range s.store.InstalledApps(vehicleID) {
		app, ok := s.store.App(row.App)
		if !ok {
			continue
		}
		conf, ok := app.ConfFor(vr.Conf.Model)
		if !ok {
			continue
		}
		order, err := InstallOrder(app, conf)
		if err != nil {
			return sent, err
		}
		// Regenerate contexts with recorded PICs forced, so PLC remote
		// ids match the surviving plug-ins.
		contexts, err := s.GenerateContexts(app, vr, order)
		if err != nil {
			return sent, err
		}
		for _, d := range order {
			if d.ECU != replaced {
				continue
			}
			var recorded core.PIC
			for _, p := range row.Plugins {
				if p.Plugin == d.Plugin {
					recorded = p.PIC
				}
			}
			ctx := contexts[d.Plugin]
			if recorded != nil {
				ctx = remapContext(ctx, recorded)
			}
			bin, _ := app.Binary(d.Plugin)
			pkg := plugin.Package{Binary: bin, Context: *ctx}
			raw, err := pkg.MarshalBinary()
			if err != nil {
				return sent, api.Errorf(api.CodeInternal, "server: restore packaging %s: %v", d.Plugin, err)
			}
			seq := s.enqueuePending(pendingOp{vehicle: vehicleID, app: row.App, plugin: d.Plugin, kind: "install", opID: opID, epoch: epoch})
			msg := core.Message{Type: core.MsgInstall, Plugin: d.Plugin,
				ECU: d.ECU, SWC: d.SWC, Seq: seq, Payload: raw}
			if err := s.pusher.PushOn(vehicleID, epoch, msg); err != nil {
				s.dropPending(seq)
				return sent, api.Errorf(api.CodeUnavailable, "server: push to %s: %v", vehicleID, err)
			}
			sent++
		}
	}
	return sent, nil
}

// remapContext rewrites a freshly generated context to use the recorded
// PIC's port ids.
func remapContext(ctx *core.Context, recorded core.PIC) *core.Context {
	remap := make(map[core.PluginPortID]core.PluginPortID, len(ctx.PIC))
	for _, e := range ctx.PIC {
		if id, ok := recorded.Lookup(e.Name); ok {
			remap[e.ID] = id
		}
	}
	out := &core.Context{PIC: recorded}
	for _, p := range ctx.PLC {
		np := p
		if id, ok := remap[p.Plugin]; ok {
			np.Plugin = id
		}
		if p.Kind == core.LinkPeer {
			if id, ok := remap[p.Peer]; ok {
				np.Peer = id
			}
		}
		out.PLC = append(out.PLC, np)
	}
	for _, e := range ctx.ECC {
		ne := e
		if id, ok := remap[e.Port]; ok {
			ne.Port = id
		}
		out.ECC = append(out.ECC, ne)
	}
	return out
}

// HandleVehicleMessage processes acknowledgements arriving from a
// vehicle's ECM.
func (s *Server) HandleVehicleMessage(vehicle core.VehicleID, msg core.Message) {
	switch msg.Type {
	case core.MsgAck, core.MsgNack:
		s.mu.Lock()
		op, ok := s.pending[msg.Seq]
		if ok {
			delete(s.pending, msg.Seq)
		}
		s.mu.Unlock()
		if !ok {
			s.logf("server: stray %v seq %d from %s", msg.Type, msg.Seq, vehicle)
			return
		}
		s.applyAck(op, msg)
	default:
		s.logf("server: unexpected %v from %s", msg.Type, vehicle)
	}
}

func failureKey(vehicle core.VehicleID, app core.AppName) string {
	return string(vehicle) + "|" + string(app)
}

func (s *Server) applyAck(op pendingOp, msg core.Message) {
	if msg.Type == core.MsgNack {
		reason := fmt.Sprintf("%s: %s", op.plugin, string(msg.Payload))
		s.mu.Lock()
		key := failureKey(op.vehicle, op.app)
		s.failures[key] = append(s.failures[key], reason)
		s.mu.Unlock()
		s.settleAck(op, reason)
		s.logf("server: %s of %s on %s failed: %s", op.kind, op.plugin, op.vehicle, msg.Payload)
		return
	}
	switch op.kind {
	case "install":
		s.store.MarkInstallAcked(op.vehicle, op.app, op.plugin)
	case "uninstall":
		// "The InstalledAPP table is updated once successful
		// uninstallation has been fully acknowledged."
		s.store.DropUninstalledPlugin(op.vehicle, op.app, op.plugin)
	case "upgrade":
		// The store is untouched per swap: the row replacement commits
		// atomically once every plug-in of the upgrade acknowledged
		// (see upgrade.go), so a partial upgrade never leaks a mixed
		// row.
	}
	s.settleAck(op, "")
}

// Status reports the progress of the most recent operation on an app.
func (s *Server) Status(vehicle core.VehicleID, app core.AppName) OpStatus {
	st := OpStatus{App: app}
	s.mu.Lock()
	st.Failures = append(st.Failures, s.failures[failureKey(vehicle, app)]...)
	s.mu.Unlock()
	if row, ok := s.store.InstalledApp(vehicle, app); ok {
		st.Total = len(row.Plugins)
		for _, p := range row.Plugins {
			if p.Acked {
				st.Acked++
			}
		}
	}
	return st
}

// ResolveExternal finds the in-vehicle destination of an external message
// id on a vehicle by walking its installed apps' SW confs and recorded
// PICs. Federation brokers use it to push FES traffic (see internal/fes).
func (s *Server) ResolveExternal(vehicle core.VehicleID, messageID string) (core.ECUID, core.PluginPortID, bool) {
	vr, ok := s.store.Vehicle(vehicle)
	if !ok {
		return "", 0, false
	}
	for _, row := range s.store.InstalledApps(vehicle) {
		app, ok := s.store.App(row.App)
		if !ok {
			continue
		}
		conf, ok := app.ConfFor(vr.Conf.Model)
		if !ok {
			continue
		}
		for _, d := range conf.Deployments {
			for _, conn := range d.Connections {
				if conn.External == nil || conn.External.MessageID != messageID {
					continue
				}
				for _, p := range row.Plugins {
					if p.Plugin != d.Plugin {
						continue
					}
					if id, ok := p.PIC.Lookup(conn.Port); ok {
						return d.ECU, id, true
					}
				}
			}
		}
	}
	return "", 0, false
}

// PushExternal delivers an external-message value to a resolved
// in-vehicle destination through the vehicle's ECM. Together with
// ResolveExternal it implements api.ExternalRouter for the federation
// layer.
func (s *Server) PushExternal(vehicle core.VehicleID, ecu core.ECUID, port core.PluginPortID, value int64) error {
	payload := core.NewEnc(10)
	payload.U16(uint16(port))
	payload.I64(value)
	msg := core.Message{Type: core.MsgExternal, ECU: ecu, Payload: payload.Bytes()}
	return s.pusher.Push(vehicle, msg)
}

var _ api.ExternalRouter = (*Server)(nil)
