package server

import (
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/sim"
	"dynautosar/internal/vehicle"
	"dynautosar/internal/vm"
)

// Two plug-ins deployed to the same SW-C and connected to each other must
// be linked directly in the PIRTE (paper section 3.1.2: "In the case of
// two plug-ins being located on the same SW-C, their ports are linked
// directly"), i.e. the generator emits LinkPeer posts instead of routing
// through the type II mux.
func TestContextGenPeerLinkSameSWC(t *testing.T) {
	mk := func(src string) plugin.Binary {
		prog, err := vm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := plugin.FromProgram(prog, plugin.Manifest{Developer: "peer"})
		if err != nil {
			t.Fatal(err)
		}
		return bin
	}
	producer := mk(`
.plugin Producer 1.0
.port tick required
.port feed provided
on_message tick:
	ARG
	PWR feed
	RET
`)
	consumer := mk(`
.plugin Consumer 1.0
.port feed required
.port result provided
on_message feed:
	ARG
	PWR result
	RET
`)
	app := App{
		Name:     "Pair",
		Binaries: []plugin.Binary{producer, consumer},
		Confs: []SWConf{{
			Model: "modelcar-v1",
			Deployments: []Deployment{
				{Plugin: "Producer", ECU: vehicle.ECU1, SWC: vehicle.SWC1,
					Connections: []PortConnection{
						{Port: "feed", RemotePlugin: "Consumer", RemotePort: "feed"},
					}},
				{Plugin: "Consumer", ECU: vehicle.ECU1, SWC: vehicle.SWC1},
			},
		}},
	}
	s := newServerWithVehicle(t, "VIN-PEER")
	vr, _ := s.Store().Vehicle("VIN-PEER")
	report := s.CheckCompatibility(app, vr)
	if err := report.Error(); err != nil {
		t.Fatal(err)
	}
	order, err := InstallOrder(app, report.Conf)
	if err != nil {
		t.Fatal(err)
	}
	contexts, err := s.GenerateContexts(app, vr, order)
	if err != nil {
		t.Fatal(err)
	}
	prod := contexts["Producer"]
	cons := contexts["Consumer"]
	feedOut, _ := prod.PIC.Lookup("feed")
	feedIn, _ := cons.PIC.Lookup("feed")
	post, ok := prod.PLC.Lookup(feedOut)
	if !ok || post.Kind != core.LinkPeer || post.Peer != feedIn {
		t.Fatalf("producer feed post = %+v, want peer link to %s", post, feedIn)
	}
	// Ids are SW-C-scope unique across both plug-ins.
	seen := make(map[core.PluginPortID]bool)
	for _, pic := range []core.PIC{prod.PIC, cons.PIC} {
		for _, e := range pic {
			if seen[e.ID] {
				t.Fatalf("port id %s assigned twice on one SW-C", e.ID)
			}
			seen[e.ID] = true
		}
	}
	// The pair must actually install and route on a live PIRTE: the
	// install order puts the peer target first.
	eng, car := newCarForPeers(t)
	for _, d := range order {
		pkg := plugin.Package{}
		bin, _ := app.Binary(d.Plugin)
		pkg.Binary = bin
		pkg.Context = *contexts[d.Plugin]
		if err := car.ECM.Install(pkg); err != nil {
			t.Fatalf("installing %s: %v", d.Plugin, err)
		}
	}
	tick, _ := prod.PIC.Lookup("tick")
	if err := car.ECM.DeliverToPlugin(tick, 123); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(100_000)
	result, _ := cons.PIC.Lookup("result")
	if v, ok := car.ECM.DirectRead(result); !ok || v != 123 {
		t.Fatalf("peer chain result = %v %v", v, ok)
	}
}

func newCarForPeers(t *testing.T) (*sim.Engine, *vehicle.ModelCar) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := vehicle.NewModelCar(eng, "VIN-PEER-LIVE")
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}
