package server

import (
	"fmt"
	"sync"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/vehicle"
)

// Regression tests for the store aliasing bugs: reads must return deep
// copies, writes must not retain caller memory, and in-place filters
// must not pin removed rows. The hammer test at the bottom runs the
// same surfaces concurrently so the race detector locks the fixes in.

func TestStoreVehicleDeepCopy(t *testing.T) {
	s := NewStore()
	if err := s.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	conf := modelCarConf("VIN-CP")
	if err := s.BindVehicle("alice", conf); err != nil {
		t.Fatal(err)
	}
	// Mutating the conf the caller kept must not reach the store.
	conf.SWCs[0].VirtualPorts[0].Name = "Hijacked"
	conf.SWCs[1].ECU = "ECU-EVIL"
	vr, ok := s.Vehicle("VIN-CP")
	if !ok {
		t.Fatal("vehicle missing")
	}
	if vr.Conf.SWCs[0].VirtualPorts[0].Name == "Hijacked" || vr.Conf.SWCs[1].ECU == "ECU-EVIL" {
		t.Fatal("BindVehicle retained the caller's slices")
	}
	// Mutating a read must not reach the store either, through Vehicle
	// or Vehicles.
	vr.Conf.SWCs[0].VirtualPorts[0].Name = "Scribbled"
	vr.Conf.SWCs[0].MemoryQuota = -1
	all := s.Vehicles()
	all[0].Conf.SWCs[1].VirtualPorts[0].ID = 99
	again, _ := s.Vehicle("VIN-CP")
	if again.Conf.SWCs[0].VirtualPorts[0].Name == "Scribbled" || again.Conf.SWCs[0].MemoryQuota == -1 {
		t.Fatal("Vehicle returned store-aliased slices")
	}
	if again.Conf.SWCs[1].VirtualPorts[0].ID == 99 {
		t.Fatal("Vehicles returned store-aliased slices")
	}
}

func TestStoreAppDeepCopy(t *testing.T) {
	s := NewStore()
	app := paperApp(t)
	if err := s.UploadApp(app); err != nil {
		t.Fatal(err)
	}
	// The uploader scribbling over its own copy must not corrupt the
	// stored app.
	app.Binaries[0].Manifest.Ports[0].Name = "Hijacked"
	app.Binaries[0].Program[0] ^= 0xFF
	app.Confs[0].Deployments[0].Connections[0].Port = "Hijacked"
	app.Confs[0].Deployments[0].Connections[0].External.Endpoint = "evil:1"
	got, ok := s.App("RemoteControl")
	if !ok {
		t.Fatal("app missing")
	}
	if got.Binaries[0].Manifest.Ports[0].Name == "Hijacked" ||
		got.Confs[0].Deployments[0].Connections[0].Port == "Hijacked" ||
		got.Confs[0].Deployments[0].Connections[0].External.Endpoint == "evil:1" {
		t.Fatal("UploadApp retained the caller's slices")
	}
	if err := got.Binaries[0].Validate(); err != nil {
		t.Fatalf("stored program corrupted by uploader: %v", err)
	}
	// A reader scribbling over its copy must not corrupt the store.
	got.Confs[0].Deployments[0].Plugin = "Scribbled"
	got.Binaries[0].Manifest.Requires = append(got.Binaries[0].Manifest.Requires, "Ghost")
	again, _ := s.App("RemoteControl")
	if again.Confs[0].Deployments[0].Plugin == "Scribbled" || len(again.Binaries[0].Manifest.Requires) != 0 {
		t.Fatal("App returned store-aliased slices")
	}
}

func TestStoreRemoveInstallationUnpinsRows(t *testing.T) {
	s := NewStore()
	for _, a := range []core.AppName{"A", "B", "C"} {
		s.RecordInstallation(&InstalledApp{App: a, Vehicle: "V"})
	}
	sh := s.shard("V")
	sh.mu.RLock()
	backing := sh.rows["V"]
	sh.mu.RUnlock()
	if len(backing) != 3 {
		t.Fatalf("backing rows = %d, want 3", len(backing))
	}
	s.RemoveInstallation("V", "B")
	// The in-place filter reuses the backing array; the freed tail slot
	// must be nil so the removed row is collectable.
	if backing[2] != nil {
		t.Fatal("RemoveInstallation left a stale row pointer in the tail")
	}
	if backing[0].App != "A" || backing[1].App != "C" {
		t.Fatalf("kept rows = %v, %v", backing[0].App, backing[1].App)
	}
}

func TestStoreDropUninstalledPluginUnpinsRow(t *testing.T) {
	s := NewStore()
	s.RecordInstallation(&InstalledApp{App: "A", Vehicle: "V",
		Plugins: []InstalledPlugin{{Plugin: "P1"}, {Plugin: "P2"}}})
	s.RecordInstallation(&InstalledApp{App: "B", Vehicle: "V",
		Plugins: []InstalledPlugin{{Plugin: "Q", PIC: core.PIC{{Name: "x", ID: 0}}}}})
	sh := s.shard("V")
	sh.mu.RLock()
	backing := sh.rows["V"]
	rowA := backing[0]
	sh.mu.RUnlock()

	// Dropping one of two plug-ins zeroes the vacated tail entry.
	s.DropUninstalledPlugin("V", "A", "P1")
	if got := rowA.Plugins[:2][1]; got.Plugin != "" || got.PIC != nil {
		t.Fatalf("plugin tail not zeroed: %+v", got)
	}
	// Dropping the last plug-in of B removes its row and nils the tail
	// slot of the rows array.
	s.DropUninstalledPlugin("V", "B", "Q")
	if backing[1] != nil {
		t.Fatal("DropUninstalledPlugin left a stale row pointer in the tail")
	}
	if rows := s.InstalledApps("V"); len(rows) != 1 || rows[0].App != "A" {
		t.Fatalf("rows after drops = %+v", rows)
	}
}

// TestStoreAliasRaceHammer runs concurrent readers that scribble over
// everything they read against writers mutating the same records; under
// -race this fails if any read still shares memory with the store.
func TestStoreAliasRaceHammer(t *testing.T) {
	s := NewStore()
	if err := s.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	app := paperApp(t)
	if err := s.UploadApp(app); err != nil {
		t.Fatal(err)
	}
	const vehicles = 8
	ids := make([]core.VehicleID, vehicles)
	for i := range ids {
		ids[i] = core.VehicleID(fmt.Sprintf("VIN-H-%d", i))
		if err := s.BindVehicle("alice", modelCarConf(ids[i])); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 200
	var wg sync.WaitGroup
	// Writers: install/ack/uninstall churn per vehicle.
	for _, id := range ids {
		wg.Add(1)
		go func(id core.VehicleID) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				row := &InstalledApp{App: "RemoteControl", Vehicle: id, Plugins: []InstalledPlugin{
					{Plugin: "COM", ECU: vehicle.ECU1, SWC: vehicle.SWC1, PIC: core.PIC{{Name: "in", ID: 0}}},
					{Plugin: "OP", ECU: vehicle.ECU2, SWC: vehicle.SWC2, PIC: core.PIC{{Name: "in", ID: 0}}},
				}}
				if err := s.TryRecordInstallation(row); err != nil {
					continue
				}
				s.MarkInstallAcked(id, "RemoteControl", "COM")
				s.MarkInstallAcked(id, "RemoteControl", "OP")
				s.DropUninstalledPlugin(id, "RemoteControl", "COM")
				s.RemoveInstallation(id, "RemoteControl")
			}
		}(id)
	}
	// Readers: fetch and deliberately scribble over every copy.
	for _, id := range ids {
		wg.Add(1)
		go func(id core.VehicleID) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if vr, ok := s.Vehicle(id); ok {
					vr.Conf.SWCs[0].VirtualPorts[0].Name = "scribble"
					vr.Conf.Model = "scribble"
				}
				if a, ok := s.App("RemoteControl"); ok {
					a.Binaries[0].Manifest.Ports[0].Name = "scribble"
					a.Confs[0].Deployments[0].Connections[0].Port = "scribble"
				}
				for _, row := range s.InstalledApps(id) {
					for i := range row.Plugins {
						row.Plugins[i].Acked = !row.Plugins[i].Acked
					}
				}
				if row, ok := s.InstalledApp(id, "RemoteControl"); ok && len(row.Plugins) > 0 {
					row.Plugins[0].Plugin = "scribble"
				}
				_ = s.InstalledPlugins(id)
				_ = s.UsedPortIDs(id, vehicle.ECU2, vehicle.SWC2)
				_ = s.Vehicles()
				_ = s.HasInstalledApps(id)
			}
		}(id)
	}
	wg.Wait()

	// The scribbling never reached the store.
	vr, _ := s.Vehicle(ids[0])
	if vr.Conf.Model != "modelcar-v1" {
		t.Fatalf("vehicle conf corrupted: %+v", vr.Conf)
	}
	a, _ := s.App("RemoteControl")
	if a.Binaries[0].Manifest.Ports[0].Name == "scribble" ||
		a.Confs[0].Deployments[0].Connections[0].Port == "scribble" {
		t.Fatal("app record corrupted")
	}
}
