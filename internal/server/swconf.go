// Package server implements the trusted server of the dynamic component
// model (paper section 3.2): the central point of intelligence that
// stores users, vehicles and applications, verifies compatibility,
// resolves dependencies, generates the PIC/PLC/ECC contexts and pushes
// installation packages to the vehicles through the Pusher, tracking
// their acknowledgements.
package server

import (
	"fmt"

	"dynautosar/internal/core"
)

// SWConf describes, for one vehicle model, how an APP's plug-ins are
// distributed over the vehicle and how their ports are connected (paper
// section 3.2.1: "each APP comes with one or several configurations,
// which describe for various vehicle models how the plug-ins should be
// distributed in the vehicle and how the different plug-in ports should
// be connected").
type SWConf struct {
	// Model selects the vehicle models this configuration fits.
	Model string `json:"model"`
	// Deployments place each plug-in of the APP on a plug-in SW-C.
	Deployments []Deployment `json:"deployments"`
}

// Deployment places one plug-in and declares its port connections.
type Deployment struct {
	Plugin core.PluginName `json:"plugin"`
	ECU    core.ECUID      `json:"ecu"`
	SWC    core.SWCID      `json:"swc"`
	// Connections wire the plug-in's ports; ports without a connection
	// become PIRTE-direct ("P0-") posts.
	Connections []PortConnection `json:"connections"`
}

// PortConnection wires one developer-named plug-in port. Exactly one of
// the target fields is used:
//
//   - Virtual: a named virtual port on the same SW-C (type I/III), the
//     paper's "connected to the SpeedReq virtual port" case;
//   - RemotePlugin/RemotePort: a port of another plug-in; same SW-C
//     becomes a peer link, another SW-C goes through the type II mux with
//     the recipient id attached;
//   - External: an off-board resource, generating an ECC entry.
type PortConnection struct {
	Port string `json:"port"`

	Virtual string `json:"virtual,omitempty"`

	RemotePlugin core.PluginName `json:"remotePlugin,omitempty"`
	RemotePort   string          `json:"remotePort,omitempty"`

	External *ExternalSpec `json:"external,omitempty"`
}

// ExternalSpec names an off-board resource and the message id used on its
// link.
type ExternalSpec struct {
	Endpoint  string `json:"endpoint"`
	MessageID string `json:"messageId"`
}

// Validate checks structural consistency of the configuration.
func (c SWConf) Validate() error {
	if c.Model == "" {
		return fmt.Errorf("server: SW conf without vehicle model")
	}
	if len(c.Deployments) == 0 {
		return fmt.Errorf("server: SW conf for %q has no deployments", c.Model)
	}
	seen := make(map[core.PluginName]bool, len(c.Deployments))
	for _, d := range c.Deployments {
		if d.Plugin == "" || d.ECU == "" || d.SWC == "" {
			return fmt.Errorf("server: SW conf for %q: incomplete deployment %+v", c.Model, d)
		}
		if seen[d.Plugin] {
			return fmt.Errorf("server: SW conf for %q deploys %s twice", c.Model, d.Plugin)
		}
		seen[d.Plugin] = true
		ports := make(map[string]bool, len(d.Connections))
		for _, conn := range d.Connections {
			if conn.Port == "" {
				return fmt.Errorf("server: SW conf for %q: connection without port on %s", c.Model, d.Plugin)
			}
			if ports[conn.Port] {
				return fmt.Errorf("server: SW conf for %q: port %q of %s connected twice",
					c.Model, conn.Port, d.Plugin)
			}
			ports[conn.Port] = true
			targets := 0
			if conn.Virtual != "" {
				targets++
			}
			if conn.RemotePlugin != "" || conn.RemotePort != "" {
				if conn.RemotePlugin == "" || conn.RemotePort == "" {
					return fmt.Errorf("server: SW conf for %q: incomplete remote target on %s.%s",
						c.Model, d.Plugin, conn.Port)
				}
				targets++
			}
			if conn.External != nil {
				if conn.External.Endpoint == "" || conn.External.MessageID == "" {
					return fmt.Errorf("server: SW conf for %q: incomplete external target on %s.%s",
						c.Model, d.Plugin, conn.Port)
				}
				targets++
			}
			if targets != 1 {
				return fmt.Errorf("server: SW conf for %q: port %s.%s needs exactly one target, has %d",
					c.Model, d.Plugin, conn.Port, targets)
			}
		}
	}
	return nil
}

// Deployment returns the deployment of a plug-in.
func (c SWConf) Deployment(name core.PluginName) (Deployment, bool) {
	for _, d := range c.Deployments {
		if d.Plugin == name {
			return d, true
		}
	}
	return Deployment{}, false
}
