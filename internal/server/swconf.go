// Package server implements the trusted server of the dynamic component
// model (paper section 3.2): the central point of intelligence that
// stores users, vehicles and applications, verifies compatibility,
// resolves dependencies, generates the PIC/PLC/ECC contexts and pushes
// installation packages to the vehicles through the Pusher, tracking
// their acknowledgements.
//
// The server's public surface is the versioned deployment-service API
// of internal/api: the Service adapter implements api.DeploymentService
// over this core, and Handler mounts the /v1 HTTP layer plus the
// deprecated legacy paths.
package server

import "dynautosar/internal/api"

// The data model types live in internal/api — the canonical wire types
// of the deployment service — and are re-exported here so the server
// core and its existing callers keep their natural names.
type (
	// User is one account on the server.
	User = api.User
	// VehicleRecord is the server's knowledge of one vehicle.
	VehicleRecord = api.VehicleRecord
	// App is one application in the APP database.
	App = api.App
	// SWConf distributes an APP's plug-ins over one vehicle model.
	SWConf = api.SWConf
	// Deployment places one plug-in and declares its port connections.
	Deployment = api.Deployment
	// PortConnection wires one developer-named plug-in port.
	PortConnection = api.PortConnection
	// ExternalSpec names an off-board resource and its message id.
	ExternalSpec = api.ExternalSpec
	// InstalledPlugin records where one installed plug-in lives.
	InstalledPlugin = api.InstalledPlugin
	// InstalledApp is one row of the InstalledAPP table.
	InstalledApp = api.InstalledApp
	// OpStatus reports the progress of the most recent operation.
	OpStatus = api.OpStatus
)
