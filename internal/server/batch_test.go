package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/vehicle"
	"dynautosar/internal/vm"
)

// connectAckVehicle attaches a fake vehicle that identifies itself and
// acknowledges every install/uninstall push instantly — the server-side
// stand-in for a healthy fleet member (no full model car needed).
func connectAckVehicle(t *testing.T, s *Server, id core.VehicleID) (closeConn func()) {
	t.Helper()
	vehicleSide, serverSide := net.Pipe()
	go s.Pusher().ServeConn(serverSide)
	if err := core.WriteMessage(vehicleSide, core.Message{Type: core.MsgHello, Payload: []byte(id)}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			msg, err := core.ReadMessage(vehicleSide)
			if err != nil {
				return
			}
			if msg.Type == core.MsgInstall || msg.Type == core.MsgUninstall || msg.Type == core.MsgUpgrade {
				if core.WriteMessage(vehicleSide, core.Message{Type: core.MsgAck, Seq: msg.Seq}) != nil {
					return
				}
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !s.Pusher().Connected(id) {
		if time.Now().After(deadline) {
			t.Fatal("ack vehicle never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { vehicleSide.Close() }
}

// newBatchFleet builds a server with alice owning n model cars named
// VIN-B-000..; connect marks which of them get a live acking link.
func newBatchFleet(t *testing.T, n int, connect bool) (*Server, []core.VehicleID) {
	t.Helper()
	s := New()
	if err := s.Store().AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().UploadApp(paperApp(t)); err != nil {
		t.Fatal(err)
	}
	ids := make([]core.VehicleID, n)
	for i := range ids {
		ids[i] = core.VehicleID(fmt.Sprintf("VIN-B-%03d", i))
		if err := s.Store().BindVehicle("alice", modelCarConf(ids[i])); err != nil {
			t.Fatal(err)
		}
		if connect {
			t.Cleanup(connectAckVehicle(t, s, ids[i]))
		}
	}
	return s, ids
}

// TestBatchDeployFleet64 is the acceptance scenario: one batch over 64
// simulated vehicles through the HTTP wire, one parent operation whose
// children report per-vehicle success.
func TestBatchDeployFleet64(t *testing.T) {
	s, ids := newBatchFleet(t, 64, true)
	c := newV1Client(t, s)
	ctx := context.Background()

	op, err := c.BatchDeploy(ctx, api.BatchDeployRequest{
		User: "alice", Selector: &api.FleetSelector{Model: "modelcar-v1"}, App: "RemoteControl",
	})
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != api.OpBatchDeploy || len(op.Vehicles) != 64 || len(op.Children) != 64 || op.Done {
		t.Fatalf("parent at launch = %+v", op)
	}
	final, err := c.WaitOperation(ctx, op.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateSucceeded || final.VehiclesSucceeded != 64 || final.VehiclesFailed != 0 {
		t.Fatalf("parent final = %+v", final)
	}
	// Two plug-ins per vehicle, all acknowledged, aggregated on the parent.
	if final.Total != 128 || final.Acked != 128 || len(final.Failures) != 0 {
		t.Fatalf("parent aggregate = total %d acked %d failures %v", final.Total, final.Acked, final.Failures)
	}
	// Every child is terminal, successful and points back at the parent.
	for i, cid := range final.Children {
		child, err := c.GetOperation(ctx, cid)
		if err != nil {
			t.Fatal(err)
		}
		if child.State != api.StateSucceeded || child.Parent != op.ID || child.Vehicle != final.Vehicles[i] {
			t.Fatalf("child %s = %+v", cid, child)
		}
	}
	for _, id := range ids {
		row, ok := s.Store().InstalledApp(id, "RemoteControl")
		if !ok || !row.Complete() {
			t.Fatalf("vehicle %s: row %+v ok=%v", id, row, ok)
		}
	}
}

// TestBatchUninstallFleet round-trips a deploy + uninstall batch over
// explicit vehicle ids.
func TestBatchUninstallFleet(t *testing.T) {
	s, ids := newBatchFleet(t, 8, true)
	c := newV1Client(t, s)
	ctx := context.Background()

	dop, err := c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", Vehicles: ids, App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	if final, err := c.WaitOperation(ctx, dop.ID, 0); err != nil || final.State != api.StateSucceeded {
		t.Fatalf("batch deploy = %+v, %v", final, err)
	}
	uop, err := c.BatchUninstall(ctx, api.BatchUninstallRequest{User: "alice", Vehicles: ids, App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitOperation(ctx, uop.ID, 0)
	if err != nil || final.State != api.StateSucceeded || final.VehiclesSucceeded != 8 {
		t.Fatalf("batch uninstall = %+v, %v", final, err)
	}
	for _, id := range ids {
		if _, ok := s.Store().InstalledApp(id, "RemoteControl"); ok {
			t.Fatalf("vehicle %s: row survived batch uninstall", id)
		}
	}
}

// TestBatchDeployPartialFailure mixes healthy, offline and foreign
// vehicles in one explicit list: the healthy ones succeed, the rest
// fail individually, and the parent reports the split.
func TestBatchDeployPartialFailure(t *testing.T) {
	s, ids := newBatchFleet(t, 3, true) // three healthy, connected
	// A bound but offline vehicle.
	if err := s.Store().BindVehicle("alice", modelCarConf("VIN-OFF")); err != nil {
		t.Fatal(err)
	}
	// A vehicle owned by somebody else.
	if err := s.Store().AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().BindVehicle("bob", modelCarConf("VIN-BOB")); err != nil {
		t.Fatal(err)
	}
	c := newV1Client(t, s)
	ctx := context.Background()

	targets := append(append([]core.VehicleID(nil), ids...), "VIN-OFF", "VIN-BOB", "VIN-GHOST")
	op, err := c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", Vehicles: targets, App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitOperation(ctx, op.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateFailed || final.VehiclesSucceeded != 3 || final.VehiclesFailed != 3 {
		t.Fatalf("parent final = %+v", final)
	}
	// The partial-failure report names each broken vehicle.
	wantCodes := map[core.VehicleID]api.ErrorCode{
		"VIN-OFF":   api.CodeUnavailable,
		"VIN-BOB":   api.CodePermissionDenied,
		"VIN-GHOST": api.CodeNotFound,
	}
	for i, cid := range final.Children {
		child, err := c.GetOperation(ctx, cid)
		if err != nil {
			t.Fatal(err)
		}
		if want, broken := wantCodes[final.Vehicles[i]]; broken {
			if child.State != api.StateFailed || child.Error == nil || child.Error.Code != want {
				t.Fatalf("child for %s = %+v, want code %s", final.Vehicles[i], child, want)
			}
		} else if child.State != api.StateSucceeded {
			t.Fatalf("healthy child for %s = %+v", final.Vehicles[i], child)
		}
	}
	if len(final.Failures) != 3 {
		t.Fatalf("parent failures = %v, want one line per broken vehicle", final.Failures)
	}
}

// TestBatchValidation pins the request-shape error codes.
func TestBatchValidation(t *testing.T) {
	s, ids := newBatchFleet(t, 1, false)
	c := newV1Client(t, s)
	ctx := context.Background()

	_, err := c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", App: "RemoteControl"})
	wantCode(t, err, api.CodeInvalidArgument) // neither vehicles nor selector
	_, err = c.BatchDeploy(ctx, api.BatchDeployRequest{
		User: "alice", Vehicles: ids, Selector: &api.FleetSelector{}, App: "RemoteControl",
	})
	wantCode(t, err, api.CodeInvalidArgument) // both
	_, err = c.BatchDeploy(ctx, api.BatchDeployRequest{
		User: "alice", Vehicles: []core.VehicleID{""}, App: "RemoteControl",
	})
	wantCode(t, err, api.CodeInvalidArgument) // empty id
	_, err = c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", Vehicles: ids, App: "Nope"})
	wantCode(t, err, api.CodeNotFound) // unknown app
	_, err = c.BatchDeploy(ctx, api.BatchDeployRequest{
		User: "alice", Selector: &api.FleetSelector{Model: "hovercraft"}, App: "RemoteControl",
	})
	wantCode(t, err, api.CodeFailedPrecondition) // selector matches nothing
	_, err = c.BatchDeploy(ctx, api.BatchDeployRequest{
		User: "alice", Selector: &api.FleetSelector{Owner: "bob"}, App: "RemoteControl",
	})
	wantCode(t, err, api.CodePermissionDenied) // foreign fleet
	_, err = c.BatchUninstall(ctx, api.BatchUninstallRequest{User: "alice", App: "RemoteControl"})
	wantCode(t, err, api.CodeInvalidArgument)
	_, err = c.BatchUninstall(ctx, api.BatchUninstallRequest{User: "alice", Vehicles: ids, App: "Nope"})
	wantCode(t, err, api.CodeNotFound) // unknown app, caught before fan-out
}

// TestBatchDuplicateBatches races two identical batches over one fleet:
// per vehicle exactly one of the two children may install (the atomic
// check-and-record), and both parents settle.
func TestBatchDuplicateBatches(t *testing.T) {
	s, ids := newBatchFleet(t, 16, true)
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	var wg sync.WaitGroup
	ops := make([]api.Operation, 2)
	errs := make([]error, 2)
	for i := range ops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops[i], errs[i] = c.BatchDeploy(ctx, api.BatchDeployRequest{
				User: "alice", Vehicles: ids, App: "RemoteControl",
			})
		}(i)
	}
	wg.Wait()
	succeeded := 0
	for i := range ops {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		final, err := c.WaitOperation(ctx, ops[i].ID, 0)
		if err != nil || !final.Done {
			t.Fatalf("batch %d never settled: %+v, %v", i, final, err)
		}
		succeeded += final.VehiclesSucceeded
	}
	// Each vehicle was installed by exactly one of the two batches.
	if succeeded != len(ids) {
		t.Fatalf("%d children succeeded across both batches, want %d", succeeded, len(ids))
	}
	for _, id := range ids {
		row, ok := s.Store().InstalledApp(id, "RemoteControl")
		if !ok || len(row.Plugins) != 2 || !row.Complete() {
			t.Fatalf("vehicle %s after duplicate batches: %+v ok=%v", id, row, ok)
		}
	}
}

// TestBatchOverlappingVehicleSets races two batches whose fleets
// overlap: contested vehicles go to exactly one batch, disjoint ones to
// their own, and every vehicle ends up installed once.
func TestBatchOverlappingVehicleSets(t *testing.T) {
	s, ids := newBatchFleet(t, 9, true)
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	setA, setB := ids[:6], ids[3:] // ids[3:6] contested
	var wg sync.WaitGroup
	ops := make([]api.Operation, 2)
	for i, set := range [][]core.VehicleID{setA, setB} {
		wg.Add(1)
		go func(i int, set []core.VehicleID) {
			defer wg.Done()
			op, err := c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", Vehicles: set, App: "RemoteControl"})
			if err != nil {
				t.Error(err)
				return
			}
			ops[i] = op
		}(i, set)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	succeeded := 0
	for i := range ops {
		final, err := c.WaitOperation(ctx, ops[i].ID, 0)
		if err != nil || !final.Done {
			t.Fatalf("batch %d never settled: %+v, %v", i, final, err)
		}
		succeeded += final.VehiclesSucceeded
	}
	if succeeded != len(ids) {
		t.Fatalf("%d successful children, want %d (each vehicle exactly once)", succeeded, len(ids))
	}
	for _, id := range ids {
		if row, ok := s.Store().InstalledApp(id, "RemoteControl"); !ok || !row.Complete() {
			t.Fatalf("vehicle %s not cleanly installed", id)
		}
	}
}

// TestBatchMidBatchDisconnect: vehicles dying mid-batch fail their own
// children without dragging healthy vehicles down, and the parent's
// report reflects the split.
func TestBatchMidBatchDisconnect(t *testing.T) {
	s, ids := newBatchFleet(t, 2, true) // two healthy vehicles
	// Two mute vehicles: connected, never acknowledge.
	for _, id := range []core.VehicleID{"VIN-MUTE-1", "VIN-MUTE-2"} {
		if err := s.Store().BindVehicle("alice", modelCarConf(id)); err != nil {
			t.Fatal(err)
		}
	}
	closeMute1 := connectMuteVehicle(t, s, "VIN-MUTE-1")
	closeMute2 := connectMuteVehicle(t, s, "VIN-MUTE-2")
	defer closeMute2()
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	targets := append(append([]core.VehicleID(nil), ids...), "VIN-MUTE-1", "VIN-MUTE-2")
	op, err := c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", Vehicles: targets, App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	// The healthy children finish, the mute ones hold the batch open.
	waitFor(t, func() bool {
		got, err := c.GetOperation(ctx, op.ID)
		return err == nil && got.VehiclesSucceeded == 2
	})
	if got, _ := c.GetOperation(ctx, op.ID); got.Done {
		t.Fatalf("parent done while mute children in flight: %+v", got)
	}
	// First mute vehicle dies: its child fails, the batch stays open on
	// the second.
	closeMute1()
	waitFor(t, func() bool {
		got, err := c.GetOperation(ctx, op.ID)
		return err == nil && got.VehiclesFailed == 1
	})
	if got, _ := c.GetOperation(ctx, op.ID); got.Done {
		t.Fatalf("parent done with one mute child still in flight: %+v", got)
	}
	// Second one dies: the batch settles as a partial failure.
	closeMute2()
	final, err := c.WaitOperation(ctx, op.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateFailed || final.VehiclesSucceeded != 2 || final.VehiclesFailed != 2 {
		t.Fatalf("parent final = %+v", final)
	}
	if len(final.Failures) == 0 {
		t.Fatal("disconnect losses missing from the parent report")
	}
}

// TestBatchPlanReuse pins the package-once/push-many path: across a
// same-model fleet the plan is computed once and every other vehicle
// reuses it, while a vehicle with history plans individually.
func TestBatchPlanReuse(t *testing.T) {
	s, ids := newBatchFleet(t, 4, true)
	app, _ := s.Store().App("RemoteControl")

	cache := &planCache{}
	for i, id := range ids {
		opRec := s.newOperation(api.OpDeploy, "alice", id, "RemoteControl", "", "", "")
		if err := s.deployWith(opRec.op.ID, "alice", id, "RemoteControl", cache); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	if cache.misses != 1 || cache.hits != 3 {
		t.Fatalf("plan cache hits=%d misses=%d, want 3/1", cache.hits, cache.misses)
	}

	// A vehicle that already has an app installed must not reuse the
	// fleet plan (its port-id space differs).
	if err := s.Store().BindVehicle("alice", modelCarConf("VIN-USED")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(connectAckVehicle(t, s, "VIN-USED"))
	s.Store().RecordInstallation(&InstalledApp{App: "Other", Vehicle: "VIN-USED",
		Plugins: []InstalledPlugin{{Plugin: "X", ECU: app.Confs[0].Deployments[1].ECU,
			SWC: app.Confs[0].Deployments[1].SWC, PIC: core.PIC{{Name: "a", ID: 0}}, Acked: true}}})
	opRec := s.newOperation(api.OpDeploy, "alice", "VIN-USED", "RemoteControl", "", "", "")
	if err := s.deployWith(opRec.op.ID, "alice", "VIN-USED", "RemoteControl", cache); err != nil {
		t.Fatal(err)
	}
	if cache.hits != 3 {
		t.Fatalf("used vehicle hit the fleet plan (hits=%d)", cache.hits)
	}
	row, ok := s.Store().InstalledApp("VIN-USED", "RemoteControl")
	if !ok {
		t.Fatal("row missing on used vehicle")
	}
	for _, p := range row.Plugins {
		if p.Plugin == "OP" {
			if id, _ := p.PIC.Lookup("WheelsIn"); id != 1 {
				t.Fatalf("OP WheelsIn on used vehicle = P%d, want P1 (P0 taken)", id)
			}
		}
	}
}

// miniApp builds a one-plug-in app (two ports) deployed on SW-C2.
func miniApp(t *testing.T, name string) App {
	t.Helper()
	src := fmt.Sprintf(".plugin %s 1.0\n.port in required\n.port out provided\non_message in:\n\tRET\n", name)
	prog, err := vm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := plugin.FromProgram(prog, plugin.Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	return App{Name: core.AppName(name), Binaries: []plugin.Binary{bin},
		Confs: []SWConf{{Model: "modelcar-v1", Deployments: []Deployment{
			{Plugin: core.PluginName(name), ECU: vehicle.ECU2, SWC: vehicle.SWC2},
		}}}}
}

// TestBatchCrossAppPortIDsUnique: concurrent deploys of two *different*
// apps to the same vehicle must not both plan against the same free
// port-id space — the per-vehicle deploy stripe serializes plan +
// check-and-record, so the SW-C's port ids stay unique.
func TestBatchCrossAppPortIDsUnique(t *testing.T) {
	s := New()
	if err := s.Store().AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"AppA", "AppB"} {
		if err := s.Store().UploadApp(miniApp(t, name)); err != nil {
			t.Fatal(err)
		}
	}
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		id := core.VehicleID(fmt.Sprintf("VIN-X-%d", i))
		if err := s.Store().BindVehicle("alice", modelCarConf(id)); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(connectAckVehicle(t, s, id))
		var wg sync.WaitGroup
		ops := make([]api.Operation, 2)
		for j, app := range []core.AppName{"AppA", "AppB"} {
			wg.Add(1)
			go func(j int, app core.AppName) {
				defer wg.Done()
				op, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: id, App: app})
				if err != nil {
					t.Error(err)
					return
				}
				ops[j] = op
			}(j, app)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		for _, op := range ops {
			if final, err := c.WaitOperation(ctx, op.ID, 0); err != nil || final.State != api.StateSucceeded {
				t.Fatalf("deploy %+v never succeeded: %+v, %v", op, final, err)
			}
		}
		seen := make(map[core.PluginPortID]core.PluginName)
		for _, p := range s.Store().InstalledPlugins(id) {
			if p.ECU != vehicle.ECU2 || p.SWC != vehicle.SWC2 {
				continue
			}
			for _, e := range p.PIC {
				if other, dup := seen[e.ID]; dup {
					t.Fatalf("vehicle %s: port id %d assigned to both %s and %s", id, e.ID, other, p.Plugin)
				}
				seen[e.ID] = p.Plugin
			}
		}
	}
}

// TestBatchChildrenSurviveRetention: completed children of a
// still-running batch are exempt from registry pruning, so a client
// walking the live parent's Children finds no holes.
func TestBatchChildrenSurviveRetention(t *testing.T) {
	old := opRetention
	opRetention = 4
	defer func() { opRetention = old }()

	s, _ := newBatchFleet(t, 0, false)
	// Five offline vehicles (children fail fast) plus one mute vehicle
	// that keeps the batch open.
	var targets []core.VehicleID
	for i := 0; i < 5; i++ {
		id := core.VehicleID(fmt.Sprintf("VIN-RETB-%d", i))
		if err := s.Store().BindVehicle("alice", modelCarConf(id)); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, id)
	}
	if err := s.Store().BindVehicle("alice", modelCarConf("VIN-RETB-MUTE")); err != nil {
		t.Fatal(err)
	}
	closeMute := connectMuteVehicle(t, s, "VIN-RETB-MUTE")
	defer closeMute()
	targets = append(targets, "VIN-RETB-MUTE")
	c := api.NewLocalClient(NewService(s))
	ctx := context.Background()

	op, err := c.BatchDeploy(ctx, api.BatchDeployRequest{User: "alice", Vehicles: targets, App: "RemoteControl"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := c.GetOperation(ctx, op.ID)
		return got.VehiclesFailed == 5
	})
	// Churn the registry well past retention with throwaway operations.
	if err := s.Store().BindVehicle("alice", modelCarConf("VIN-RETB-OFF")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		throwaway, err := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-RETB-OFF", App: "RemoteControl"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitOperation(ctx, throwaway.ID, 0); err != nil {
			t.Fatal(err)
		}
		s.Store().RemoveInstallation("VIN-RETB-OFF", "RemoteControl")
	}
	// The live batch and every one of its children survived the churn.
	for _, cid := range append([]string{op.ID}, op.Children...) {
		if _, err := c.GetOperation(ctx, cid); err != nil {
			t.Fatalf("operation %s evicted under a live batch: %v", cid, err)
		}
	}
	// Once the batch settles, its children become evictable again.
	closeMute()
	if _, err := c.WaitOperation(ctx, op.ID, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		throwaway, _ := c.Deploy(ctx, api.DeployRequest{User: "alice", Vehicle: "VIN-RETB-OFF", App: "RemoteControl"})
		if _, err := c.WaitOperation(ctx, throwaway.ID, 0); err != nil {
			t.Fatal(err)
		}
		s.Store().RemoveInstallation("VIN-RETB-OFF", "RemoteControl")
	}
	if ops := s.Operations(); len(ops) > opRetention {
		t.Fatalf("registry holds %d ops after batch settled, want <= %d", len(ops), opRetention)
	}
}

// TestBatchConfsEqual covers the plan-transfer guard.
func TestBatchConfsEqual(t *testing.T) {
	a := modelCarConf("A")
	b := modelCarConf("B")
	if !confsEqual(a, b) {
		t.Fatal("identical confs (different ids) not equal")
	}
	b.Model = "other"
	if confsEqual(a, b) {
		t.Fatal("different model equal")
	}
	b = modelCarConf("B")
	b.SWCs[1].MemoryQuota++
	if confsEqual(a, b) {
		t.Fatal("different quota equal")
	}
	b = modelCarConf("B")
	b.SWCs[1].VirtualPorts[0].ID++
	if confsEqual(a, b) {
		t.Fatal("different virtual port id equal")
	}
}
