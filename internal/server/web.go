package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dynautosar/internal/core"
)

// The Web Services module (paper Figure 2): the HTTP interface through
// which vehicle users, OEMs and plug-in developers drive the three
// operation groups of section 3.2.2 — user setup, upload, and
// (re)deployment.
//
//	POST /users            {"id": "alice"}
//	POST /vehicles         {"owner": "alice", "conf": {vehicle conf}}
//	POST /apps             {"name": "...", "binaries": [...], "confs": [...]}
//	POST /deploy           {"user": "...", "vehicle": "...", "app": "..."}
//	POST /uninstall        {"user": "...", "vehicle": "...", "app": "..."}
//	POST /restore          {"user": "...", "vehicle": "...", "ecu": "ECU2"}
//	GET  /status?vehicle=V&app=A
//	GET  /apps
//	GET  /vehicles/{id}
//
// Binary program bytes travel base64-encoded inside the JSON (Go's
// default []byte handling), so a plain HTTP client can drive the whole
// life cycle.

// Handler returns the HTTP handler of the Web Services module.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /users", s.handleAddUser)
	mux.HandleFunc("POST /vehicles", s.handleBindVehicle)
	mux.HandleFunc("POST /apps", s.handleUploadApp)
	mux.HandleFunc("GET /apps", s.handleListApps)
	mux.HandleFunc("POST /deploy", s.handleDeploy)
	mux.HandleFunc("POST /uninstall", s.handleUninstall)
	mux.HandleFunc("POST /restore", s.handleRestore)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /vehicles/{id}", s.handleVehicle)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID core.UserID `json:"id"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.store.AddUser(req.ID); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
}

func (s *Server) handleBindVehicle(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Owner core.UserID      `json:"owner"`
		Conf  core.VehicleConf `json:"conf"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.store.BindVehicle(req.Owner, req.Conf); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "bound"})
}

func (s *Server) handleUploadApp(w http.ResponseWriter, r *http.Request) {
	var app App
	if !decodeBody(w, r, &app) {
		return
	}
	if err := s.store.UploadApp(app); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "uploaded"})
}

func (s *Server) handleListApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Apps())
}

type opRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	App     core.AppName   `json:"app,omitempty"`
	ECU     core.ECUID     `json:"ecu,omitempty"`
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req opRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.Deploy(req.User, req.Vehicle, req.App); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "deploying"})
}

func (s *Server) handleUninstall(w http.ResponseWriter, r *http.Request) {
	var req opRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.Uninstall(req.User, req.Vehicle, req.App); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "uninstalling"})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req opRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n, err := s.Restore(req.User, req.Vehicle, req.ECU)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"restoring": n})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	vehicle := core.VehicleID(r.URL.Query().Get("vehicle"))
	app := core.AppName(r.URL.Query().Get("app"))
	if vehicle == "" || app == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("vehicle and app query parameters required"))
		return
	}
	writeJSON(w, http.StatusOK, s.Status(vehicle, app))
}

func (s *Server) handleVehicle(w http.ResponseWriter, r *http.Request) {
	id := core.VehicleID(r.PathValue("id"))
	vr, ok := s.store.Vehicle(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vehicle %s", id))
		return
	}
	resp := struct {
		VehicleRecord
		Installed []*InstalledApp `json:"installed"`
	}{vr, s.store.InstalledApps(id)}
	writeJSON(w, http.StatusOK, resp)
}

// The JSON shape of uploaded binaries is fixed by the json tags on
// plugin.Manifest and plugin.Binary; program bytes are base64 (Go's
// default []byte encoding).
