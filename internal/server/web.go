package server

import (
	"net/http"
	"net/url"
	"strings"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
)

// The Web Services module (paper Figure 2): the HTTP interface through
// which vehicle users, OEMs and plug-in developers drive the three
// operation groups of section 3.2.2 — user setup, upload, and
// (re)deployment.
//
// The supported surface is the versioned /v1 API (see internal/api for
// the endpoint table); it is generated from api.DeploymentService over
// the Service adapter and carries middleware (request logging, panic
// recovery, body limits, per-client rate limiting), pagination, the
// structured error model and the async operations resource.
//
// The original flat paths (POST /users, /vehicles, /apps, /deploy,
// /uninstall, /restore, GET /apps, /status, /vehicles/{id}) survive as
// DEPRECATED shims with their historical blocking semantics and status
// codes; they answer with a Deprecation header pointing at the /v1
// successor and will be removed once fleet tooling has migrated.
//
// Binary program bytes travel base64-encoded inside the JSON (Go's
// default []byte handling), so a plain HTTP client can drive the whole
// life cycle.

// Handler returns the HTTP handler of the Web Services module: the /v1
// deployment-service API plus the deprecated legacy paths.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/", api.NewHandler(NewService(s), &api.HandlerOptions{
		Logf: func(format string, args ...any) { s.logf(format, args...) },
	}))
	mux.HandleFunc("POST /users", s.deprecated("/v1/users", s.handleAddUser))
	mux.HandleFunc("POST /vehicles", s.deprecated("/v1/vehicles", s.handleBindVehicle))
	mux.HandleFunc("POST /apps", s.deprecated("/v1/apps", s.handleUploadApp))
	mux.HandleFunc("GET /apps", s.deprecated("/v1/apps", s.handleListApps))
	mux.HandleFunc("POST /deploy", s.deprecated("/v1/deploy", s.handleDeploy))
	mux.HandleFunc("POST /uninstall", s.deprecated("/v1/uninstall", s.handleUninstall))
	mux.HandleFunc("POST /restore", s.deprecated("/v1/restore", s.handleRestore))
	mux.HandleFunc("GET /status", s.deprecated("/v1/status", s.handleStatus))
	mux.HandleFunc("GET /vehicles/{id}", s.deprecated("/v1/vehicles/{id}", s.handleVehicle))
	return mux
}

// deprecated marks a legacy handler with the successor headers; an
// {id} placeholder in the successor is filled from the request path so
// the Link target is followable.
func (s *Server) deprecated(successor string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		succ := successor
		if strings.Contains(succ, "{id}") {
			succ = strings.ReplaceAll(succ, "{id}", url.PathEscape(r.PathValue("id")))
		}
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+succ+">; rel=\"successor-version\"")
		next(w, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v, s.logf)
}

// writeErr emits the structured v1 error body, pinned to the legacy
// endpoint's historical status code.
func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, api.ErrorBody(err))
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := api.DecodeJSON(r, v); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID core.UserID `json:"id"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := s.store.AddUser(req.ID); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
}

func (s *Server) handleBindVehicle(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Owner core.UserID      `json:"owner"`
		Conf  core.VehicleConf `json:"conf"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := s.store.BindVehicle(req.Owner, req.Conf); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "bound"})
}

func (s *Server) handleUploadApp(w http.ResponseWriter, r *http.Request) {
	var app App
	if !s.decodeBody(w, r, &app) {
		return
	}
	if err := s.store.UploadApp(app); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"status": "uploaded"})
}

func (s *Server) handleListApps(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.store.Apps())
}

type opRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	App     core.AppName   `json:"app,omitempty"`
	ECU     core.ECUID     `json:"ecu,omitempty"`
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req opRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := s.Deploy(req.User, req.Vehicle, req.App); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, map[string]string{"status": "deploying"})
}

func (s *Server) handleUninstall(w http.ResponseWriter, r *http.Request) {
	var req opRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := s.Uninstall(req.User, req.Vehicle, req.App); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, map[string]string{"status": "uninstalling"})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req opRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	n, err := s.Restore(req.User, req.Vehicle, req.ECU)
	if err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, map[string]int{"restoring": n})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	vehicle := core.VehicleID(r.URL.Query().Get("vehicle"))
	app := core.AppName(r.URL.Query().Get("app"))
	if vehicle == "" || app == "" {
		s.writeErr(w, http.StatusBadRequest,
			api.Errorf(api.CodeInvalidArgument, "vehicle and app query parameters required"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.Status(vehicle, app))
}

func (s *Server) handleVehicle(w http.ResponseWriter, r *http.Request) {
	id := core.VehicleID(r.PathValue("id"))
	vr, ok := s.store.Vehicle(id)
	if !ok {
		s.writeErr(w, http.StatusNotFound, api.Errorf(api.CodeNotFound, "unknown vehicle %s", id))
		return
	}
	s.writeJSON(w, http.StatusOK, api.VehicleDetail{VehicleRecord: vr, Installed: s.store.InstalledApps(id)})
}

// The JSON shape of uploaded binaries is fixed by the json tags on
// plugin.Manifest and plugin.Binary; program bytes are base64 (Go's
// default []byte encoding).
