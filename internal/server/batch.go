package server

import (
	"runtime"
	"slices"
	"sync"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
)

// The fleet-scale batch deployment engine: POST /v1/deploy:batch (and
// uninstall:batch) fan one request out over an explicit vehicle list or
// a fleet selector. The batch is a first-class API object — one parent
// operation with a child operation per vehicle — instead of a
// client-side loop, so partial failure is reported per vehicle and the
// fan-out runs server-side on a bounded worker pool. Vehicles of the
// same configuration share one deployment plan (package-once,
// push-many); see deployPlan in server.go.

// batchWorkers bounds the per-batch worker pool so a 100k-vehicle batch
// never runs 100k pipelines at once; a var so tests and benchmarks can
// pin it.
var batchWorkers = max(16, 4*runtime.NumCPU())

// resolveFleet turns a batch request's explicit vehicle list or fleet
// selector (exactly one of the two) into a deduplicated target list.
func (s *Server) resolveFleet(user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector) ([]core.VehicleID, error) {
	switch {
	case len(vehicles) > 0 && sel != nil:
		return nil, api.Errorf(api.CodeInvalidArgument, "server: batch request names both vehicles and a selector")
	case len(vehicles) > 0:
		seen := make(map[core.VehicleID]bool, len(vehicles))
		out := make([]core.VehicleID, 0, len(vehicles))
		for _, v := range vehicles {
			if v == "" {
				return nil, api.Errorf(api.CodeInvalidArgument, "server: batch request with empty vehicle id")
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return out, nil
	case sel != nil:
		owner := sel.Owner
		if owner == "" {
			owner = user
		}
		if owner != user {
			return nil, api.Errorf(api.CodePermissionDenied,
				"server: fleet selector names user %q, caller is %q", sel.Owner, user)
		}
		fleet := s.store.SelectVehicles(owner, sel.Model)
		if len(fleet) == 0 {
			return nil, api.Errorf(api.CodeFailedPrecondition, "server: fleet selector matches no vehicles")
		}
		return fleet, nil
	default:
		return nil, api.Errorf(api.CodeInvalidArgument, "server: batch request needs vehicles or a selector")
	}
}

// BatchDeployAsync starts a fleet-wide deployment: it resolves the
// fleet synchronously, returns the parent operation immediately and
// runs the per-vehicle pipelines on the worker pool. Per-vehicle
// problems (offline, incompatible, already installed, foreign owner)
// fail that vehicle's child without aborting the rest.
func (s *Server) BatchDeployAsync(user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector, appName core.AppName) (api.Operation, error) {
	return s.batchDeployAsyncIdem("", user, vehicles, sel, appName)
}

func (s *Server) batchDeployAsyncIdem(idemKey string, user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector, appName core.AppName) (api.Operation, error) {
	if !s.store.HasApp(appName) {
		return api.Operation{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", appName)
	}
	fleet, err := s.resolveFleet(user, vehicles, sel)
	if err != nil {
		return api.Operation{}, err
	}
	parentID, children := s.newBatchOperation(api.OpBatchDeploy, api.OpDeploy, user, appName, "", fleet, idemKey)
	go func() {
		cache := &planCache{}
		// inflight bounds the per-batch commit-wait/push goroutines the
		// staged deploys hand off to, so a fleet-scale batch keeps a few
		// hundred vehicles in the commit/push pipeline instead of one
		// goroutine (pinning its plan and pending state) per vehicle.
		inflight := make(chan struct{}, batchInflight)
		s.runBatch(children, func(c batchChild) {
			s.deployChild(c, user, appName, cache, inflight)
		})
		hits, misses := cache.stats()
		s.logf("server: batch %s over %d vehicles: plan cache %d hits / %d misses", parentID, len(fleet), hits, misses)
	}()
	return s.operationSnapshot(parentID), nil
}

// batchInflight bounds, per batch, how many staged deploys may sit in
// the commit-wait/push pipeline at once; a var so tests can shrink it.
var batchInflight = 512

// deployChild launches one batch child. The worker runs only the CPU
// half (plan + check-and-record); with a journal attached, the
// commit-wait and the pushes move to a per-vehicle goroutine, so the
// bounded worker pool never parks in a group commit — the pool keeps
// planning at CPU speed while records ride the shared fsync and pushes
// fire as their commits land. The inflight semaphore applies
// backpressure: once batchInflight children are between stage and
// push-complete, the staging worker blocks, so a 100k-vehicle batch
// never holds 100k plans and goroutines live at once. Operation
// accounting is untouched: the child reaches finishLaunch exactly
// once, after its pushes (or its failure).
func (s *Server) deployChild(c batchChild, user core.UserID, appName core.AppName, cache *planCache, inflight chan struct{}) {
	plan, ticket, err := s.stageDeploy(user, c.vehicle, appName, cache)
	if err != nil {
		s.finishLaunch(c.opID, err)
		return
	}
	if s.jn == nil {
		// Memory-only: the zero ticket is already resolved.
		s.finishLaunch(c.opID, s.pushPlan(c.opID, c.vehicle, appName, plan))
		return
	}
	inflight <- struct{}{}
	go func() {
		defer func() { <-inflight }()
		if err := s.awaitInstallDurable(ticket, c.vehicle, appName); err != nil {
			s.finishLaunch(c.opID, err)
			return
		}
		s.finishLaunch(c.opID, s.pushPlan(c.opID, c.vehicle, appName, plan))
	}()
}

// BatchUninstallAsync starts a fleet-wide uninstallation with the same
// parent/child semantics; each child runs the full uninstall pipeline
// (dependency supervision, per-vehicle claim, reverse-order pushes).
func (s *Server) BatchUninstallAsync(user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector, appName core.AppName) (api.Operation, error) {
	return s.batchUninstallAsyncIdem("", user, vehicles, sel, appName)
}

func (s *Server) batchUninstallAsyncIdem(idemKey string, user core.UserID, vehicles []core.VehicleID, sel *api.FleetSelector, appName core.AppName) (api.Operation, error) {
	if !s.store.HasApp(appName) {
		return api.Operation{}, api.Errorf(api.CodeNotFound, "server: unknown app %s", appName)
	}
	fleet, err := s.resolveFleet(user, vehicles, sel)
	if err != nil {
		return api.Operation{}, err
	}
	parentID, children := s.newBatchOperation(api.OpBatchUninstall, api.OpUninstall, user, appName, "", fleet, idemKey)
	go func() {
		s.runBatch(children, func(c batchChild) {
			s.finishLaunch(c.opID, s.uninstall(c.opID, user, c.vehicle, appName))
		})
	}()
	return s.operationSnapshot(parentID), nil
}

// runBatch drives the per-vehicle workers over a bounded pool.
func (s *Server) runBatch(children []batchChild, worker func(batchChild)) {
	workers := batchWorkers
	if workers > len(children) {
		workers = len(children)
	}
	next := make(chan batchChild)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				worker(c)
			}
		}()
	}
	for _, c := range children {
		next <- c
	}
	close(next)
	wg.Wait()
}

// planCache shares deployment plans — and the one deep copy of the app
// record — across the vehicles of one batch. Fleets have few
// configuration shapes (typically one per model), so a linear scan
// over the cached plans is cheaper than fingerprinting.
type planCache struct {
	mu    sync.Mutex
	app   *App
	plans []*deployPlan
	// hits and misses instrument the package-once/push-many reuse.
	hits, misses int
	// upgrades caches live-upgrade transition plans the same way; a
	// plan transfers between vehicles of equal conf AND structurally
	// equal old rows (see upgrade.go).
	upgrades         []*upgradePlan
	upHits, upMisses int
}

// appRecord fetches the batch's app once and hands the same record to
// every planning worker (read-only use).
func (c *planCache) appRecord(st *Store, name core.AppName) (App, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.app == nil {
		a, ok := st.App(name)
		if !ok {
			return App{}, false
		}
		c.app = &a
	}
	return *c.app, true
}

// lookup returns a cached plan applicable to a fresh vehicle with the
// given configuration, nil when none fits.
func (c *planCache) lookup(conf core.VehicleConf) *deployPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.plans {
		if p.fresh && confsEqual(p.conf, conf) {
			c.hits++
			return p
		}
	}
	c.misses++
	return nil
}

// add caches a plan computed against a fresh vehicle.
func (c *planCache) add(p *deployPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans = append(c.plans, p)
}

// stats returns the reuse counters for the batch-completion log line.
func (c *planCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// confsEqual compares two vehicle configurations structurally,
// ignoring the vehicle id: equal confs yield identical compatibility
// reports, contexts and packages for a fresh vehicle.
func confsEqual(a, b core.VehicleConf) bool {
	if a.Model != b.Model || len(a.SWCs) != len(b.SWCs) {
		return false
	}
	for i := range a.SWCs {
		x, y := &a.SWCs[i], &b.SWCs[i]
		if x.ECU != y.ECU || x.SWC != y.SWC || x.MemoryQuota != y.MemoryQuota ||
			x.MaxPlugins != y.MaxPlugins || x.ECM != y.ECM ||
			!slices.Equal(x.VirtualPorts, y.VirtualPorts) {
			return false
		}
	}
	return true
}
