package fleetsim

import (
	"testing"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/sim"
)

// Chaos scenarios for progressive rollouts and journal disk faults:
// health-gated canary waves must stop an unhealthy version at wave 1
// and converge the fleet back to all-old (I5), rollouts must stay
// invariant-clean while racing other batch operations on intersecting
// vehicle groups, and a disk that fills or slows mid-upgrade must
// degrade the server per the durability policy without corrupting
// recovery.

// TestScenarioRolloutUnhealthyCanary is the acceptance shape: every
// vehicle fails its post-upgrade probes, so the rollout of the new
// version must trip the zero health policy at the canary wave, promote
// nothing, and roll the fleet back until zero vehicles hold the new
// version.
func TestScenarioRolloutUnhealthyCanary(t *testing.T) {
	seed := scenarioSeed(t)
	apps, err := FleetApps()
	if err != nil {
		t.Fatal(err)
	}
	d := 10 * sim.Second
	sc := Scenario{
		Name: "rollout-unhealthy", Vehicles: scaled(300), Seed: seed,
		Duration: d, Apps: apps,
		Workload: []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
			{At: d / 2, Kind: WorkRollout, App: AppV1, ToApp: AppV2},
		},
		Faults: []Fault{ProbeFailure{At: d * 2 / 5, Fraction: 1}},
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	rep := res.Report
	c := rep.Counters
	if c["rolloutsSettled"] != 1 || c["rolloutsRolledBack"] != 1 {
		t.Errorf("seed %d: rollout did not roll back: settled=%d rolledBack=%d",
			seed, c["rolloutsSettled"], c["rolloutsRolledBack"])
	}
	if c["rolloutWavesPromoted"] != 0 {
		t.Errorf("seed %d: unhealthy rollout promoted %d waves past the tripped canary gate",
			seed, c["rolloutWavesPromoted"])
	}
	if c["probeNacks"] == 0 {
		t.Errorf("seed %d: no probe failures reached the server — the gate never saw the fault", seed)
	}
	if n := rep.Installed[string(AppV2)]; n != 0 {
		t.Errorf("seed %d: I5 all-old violated: %d vehicles still hold %s after the fleet rollback",
			seed, n, AppV2)
	}
	if rep.Installed[string(AppV1)] == 0 {
		t.Errorf("seed %d: fleet lost the old version entirely: %+v", seed, rep.Installed)
	}
	if rep.Latency["rollout"].Count != 1 {
		t.Errorf("seed %d: rollout latency samples = %d, want 1", seed, rep.Latency["rollout"].Count)
	}
}

// TestPartitionDuringRolloutWave lands a rollout wave while a network
// partition isolates part of it: the unreachable vehicles fail their
// wave children, the strict zero policy trips, and the automatic fleet
// rollback converges every reachable vehicle back to the old version
// before the partition even heals.
func TestPartitionDuringRolloutWave(t *testing.T) {
	seed := scenarioSeed(t)
	apps, err := FleetApps()
	if err != nil {
		t.Fatal(err)
	}
	d := 12 * sim.Second
	sc := Scenario{
		Name: "rollout-partition", Vehicles: scaled(300), Seed: seed,
		Duration: d, Apps: apps,
		Workload: []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
			{At: d / 2, Kind: WorkRollout, App: AppV1, ToApp: AppV2},
		},
		Faults: []Fault{Partition{At: d * 2 / 5, Heal: d * 3 / 4, Fraction: 0.4}},
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	rep := res.Report
	c := rep.Counters
	if c["rolloutsRolledBack"] != 1 {
		t.Errorf("seed %d: partitioned rollout did not roll back: %+v", seed, c)
	}
	if n := rep.Installed[string(AppV2)]; n != 0 {
		t.Errorf("seed %d: I5 all-old violated: %d vehicles on %s after partition-tripped rollback",
			seed, n, AppV2)
	}
	if rep.Installed[string(AppV1)] == 0 {
		t.Errorf("seed %d: old version gone from the fleet: %+v", seed, rep.Installed)
	}
}

// TestScenarioOverlappingBatchRollout races a batch upgrade, a batch
// deploy and a progressive rollout over intersecting vehicle samples
// under churn: per-vehicle claims must arbitrate every collision, and
// whatever interleaving wins, the audit (I1-I5) must come back clean
// with exact batch accounting.
func TestScenarioOverlappingBatchRollout(t *testing.T) {
	seed := scenarioSeed(t)
	apps, err := FleetApps()
	if err != nil {
		t.Fatal(err)
	}
	d := 12 * sim.Second
	sc := Scenario{
		Name: "overlap", Vehicles: scaled(400), Seed: seed,
		Duration: d, Apps: apps,
		// Stretched acks keep all three operations in flight together.
		AckMin: 2 * sim.Millisecond, AckMax: 20 * sim.Millisecond,
		Workload: []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
			{At: d * 2 / 5, Kind: WorkBatchUpgrade, App: AppV1, ToApp: AppV2, Fraction: 0.5},
			{At: d * 2 / 5, Kind: WorkRollout, App: AppV1, ToApp: AppV2,
				Health: &api.RolloutHealthPolicy{MaxFailureRate: 0.9, MaxProbeFailures: 5}},
			{At: d * 2 / 5, Kind: WorkBatchDeploy, App: AppWidget, Fraction: 0.3},
		},
		Faults: []Fault{
			Churn{Start: d / 10, Stop: d * 3 / 4, Every: d / 50},
		},
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	rep := res.Report
	if rep.Counters["rolloutsSettled"] != 1 {
		t.Errorf("seed %d: rollout never settled: %+v", seed, rep.Counters)
	}
	if rep.Latency["upgrade"].Count == 0 {
		t.Errorf("seed %d: no upgrade latency samples from the racing batches", seed)
	}
	// However the race resolved, the family invariant pins each vehicle
	// to at most one version; both versions surviving somewhere is the
	// expected outcome of a conflicted rollout, never on one vehicle.
	if rep.Installed[string(AppV1)]+rep.Installed[string(AppV2)] == 0 {
		t.Errorf("seed %d: the family vanished from the fleet: %+v", seed, rep.Installed)
	}
}

// TestStormDiskFullRecovery fills the journal's disk while a fleet
// upgrade is committing: the durability policy fails the in-flight
// children and degrades the server (sticky), and the crash-restart
// recovers exactly the acknowledged prefix — no torn tail, no invariant
// violations.
func TestStormDiskFullRecovery(t *testing.T) {
	seed := scenarioSeed(t)
	apps, err := FleetApps()
	if err != nil {
		t.Fatal(err)
	}
	d := 16 * sim.Second
	sc := Scenario{
		Name: "disk-full", Vehicles: scaled(300), Seed: seed,
		Duration: d, Apps: apps,
		AckMin: 2 * sim.Millisecond, AckMax: 20 * sim.Millisecond,
		Workload: []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
			{At: d * 3 / 10, Kind: WorkBatchUpgrade, App: AppV1, ToApp: AppV2},
		},
		Faults: []Fault{
			// The disk fills while upgrade commits are in flight; the
			// crash-restart clears the fault like swapping the disk.
			JournalFault{At: d*3/10 + 100*sim.Millisecond, DiskFull: true},
			ServerCrash{At: d / 2, RestartAfter: sim.Second},
		},
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	c := res.Report.Counters
	if c["serverCrashes"] != 1 {
		t.Fatalf("seed %d: expected exactly one server crash, got %d", seed, c["serverCrashes"])
	}
	if c["recoveredRecords"] == 0 {
		t.Errorf("seed %d: recovery replayed no journal records", seed)
	}
	if c["faultsInjected"] == 0 {
		t.Errorf("seed %d: the journal fault never fired", seed)
	}
}

// TestStormSlowFsync drags every fsync out for the middle of the run: a
// slow disk must stretch the group-commit window, not fail work or
// drift state.
func TestStormSlowFsync(t *testing.T) {
	seed := scenarioSeed(t)
	apps, err := FleetApps()
	if err != nil {
		t.Fatal(err)
	}
	d := 12 * sim.Second
	sc := Scenario{
		Name: "slow-fsync", Vehicles: scaled(200), Seed: seed,
		Duration: d, Apps: apps,
		Workload: []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
			{At: d * 2 / 5, Kind: WorkBatchUpgrade, App: AppV1, ToApp: AppV2},
		},
		Faults: []Fault{
			JournalFault{At: d / 5, Heal: d * 4 / 5, SyncDelay: 2 * time.Millisecond},
		},
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	rep := res.Report
	if rep.Latency["deploy"].Count == 0 || rep.Latency["upgrade"].Count == 0 {
		t.Errorf("seed %d: slow fsync starved the workload: %+v", seed, rep.Latency)
	}
	if n := rep.Installed[string(AppV2)]; n == 0 {
		t.Errorf("seed %d: upgrade made no progress under the slow disk: %+v", seed, rep.Installed)
	}
}

// TestScenarioRolloutPreset runs the built-in progressive-delivery
// preset end to end: a healthy rollout under churn followed by an
// unhealthy one that must roll back.
func TestScenarioRolloutPreset(t *testing.T) {
	seed := scenarioSeed(t)
	sc, err := Preset("rollout", scaled(600), seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	c := res.Report.Counters
	if c["rolloutsSettled"] != 2 {
		t.Errorf("seed %d: %d of 2 rollouts settled", seed, c["rolloutsSettled"])
	}
	if c["rolloutsRolledBack"] == 0 {
		t.Errorf("seed %d: the poisoned rollout never rolled back", seed)
	}
	if res.Report.Latency["rollout"].Count != 2 {
		t.Errorf("seed %d: rollout latency samples = %d, want 2", seed, res.Report.Latency["rollout"].Count)
	}
}
