package fleetsim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/federation"
	"dynautosar/internal/journal"
	"dynautosar/internal/server"
)

// fleetShard is one shard of a federated control plane inside the
// simulator: a leader server journaling to its own directory and
// replicating synchronously — through the real Shipper/Replica path —
// into a follower replica directory that a ShardCrash fault promotes.
// All fields are pump-owned, like the rest of the Fleet.
type fleetShard struct {
	idx  int
	name string
	srv  *server.Server // nil while crashed (between kill and promote)
	// gen counts this shard's crash generations, like Fleet.serverGen
	// does for the single-server topology.
	gen int
	// everCrashed excludes this shard from statz cross-checks: its
	// in-memory counters reset with the promotion.
	everCrashed bool
	promoted    bool

	dir     string // leader journal directory
	replDir string // follower replica directory
	replica *journal.Replica
	shipper *journal.Shipper
}

// multi reports whether the run is a federated (multi-shard) topology.
func (f *Fleet) multi() bool { return len(f.shards) > 0 }

// shardIdxOf maps a vehicle to its owning shard's index via the same
// consistent-hash ring the federation router uses (-1 in single-server
// runs).
func (f *Fleet) shardIdxOf(id core.VehicleID) int {
	if !f.multi() {
		return -1
	}
	return f.shardByName[f.ring.Owner(id)]
}

// serverAt returns shard idx's live server; idx -1 addresses the
// single-server topology. nil while that incarnation is down.
func (f *Fleet) serverAt(idx int) *server.Server {
	if idx < 0 {
		return f.srv
	}
	return f.shards[idx].srv
}

// genAt returns the crash generation of shard idx (-1 = single server).
func (f *Fleet) genAt(idx int) int {
	if idx < 0 {
		return f.serverGen
	}
	return f.shards[idx].gen
}

// qkey qualifies a per-shard operation id for tracker maps: operation
// ids are only unique within one shard's registry, so map keys carry
// the shard name.
func (f *Fleet) qkey(idx int, id string) string {
	if idx < 0 {
		return id
	}
	return f.shards[idx].name + "/" + id
}

// setupShards builds the federated topology: one leader+replica pair
// per shard under a common root directory, user and apps uploaded to
// every shard, each vehicle bound only to its ring owner.
func (f *Fleet) setupShards() error {
	root := f.sc.DataDir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "fleetsim-shards-")
		if err != nil {
			return err
		}
		f.ownDir = true
	}
	f.dir = root
	names := make([]string, f.sc.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	f.ring = federation.NewRing(names, 0)
	f.shardByName = make(map[string]int, len(names))
	ctx := context.Background()
	for i, name := range names {
		f.shardByName[name] = i
		sh := &fleetShard{
			idx: i, name: name,
			dir:     filepath.Join(root, name, "leader"),
			replDir: filepath.Join(root, name, "replica"),
		}
		if err := os.MkdirAll(sh.dir, 0o755); err != nil {
			return err
		}
		srv := server.New()
		srv.SetShard(name)
		if err := srv.OpenJournal(sh.dir); err != nil {
			return fmt.Errorf("shard %s: %w", name, err)
		}
		if err := srv.BecomeLeader("boot"); err != nil {
			return fmt.Errorf("shard %s: %w", name, err)
		}
		replica, err := journal.OpenReplica(sh.replDir, nil)
		if err != nil {
			return fmt.Errorf("shard %s replica: %w", name, err)
		}
		sh.replica = replica
		shipper, err := srv.StartReplication(
			[]journal.Follower{{Name: name + "-follower", T: journal.LocalTransport{R: replica}}},
			journal.ShipperOptions{Synchronous: true},
		)
		if err != nil {
			return fmt.Errorf("shard %s replication: %w", name, err)
		}
		sh.shipper = shipper
		sh.srv = srv
		f.shards = append(f.shards, sh)

		cl := api.NewLocalClient(srv.Service())
		if _, err := cl.CreateUser(ctx, api.CreateUserRequest{ID: fleetUser}); err != nil {
			return err
		}
		for _, app := range f.sc.Apps {
			if _, err := cl.UploadApp(ctx, app); err != nil {
				return fmt.Errorf("shard %s: upload %s: %w", name, app.Name, err)
			}
		}
	}
	for _, app := range f.sc.Apps {
		vers := make(map[core.PluginName]string, len(app.Binaries))
		for _, b := range app.Binaries {
			vers[b.Manifest.Name] = b.Manifest.Version
		}
		f.appVer[app.Name] = vers
	}
	for i := 0; i < f.sc.Vehicles; i++ {
		id := core.VehicleID(fmt.Sprintf("VIN-F-%05d", i))
		idx := f.shardIdxOf(id)
		cl := api.NewLocalClient(f.shards[idx].srv.Service())
		if _, err := cl.BindVehicle(ctx, api.BindVehicleRequest{Owner: fleetUser, Conf: fleetConf(id)}); err != nil {
			return fmt.Errorf("bind %s: %w", id, err)
		}
		v := newSimVehicle(f, i, id)
		v.shardIdx = idx
		f.vehicles = append(f.vehicles, v)
		f.byID[id] = v
	}
	return nil
}

// crashShard kills shard idx's leader exactly like a power cut: the
// journal freezes at its last group commit, the shipper stops, and
// every vehicle link into the dying pusher collapses. The replica keeps
// whatever was acknowledged — synchronous shipping means every settled
// durability ticket already reached it.
func (f *Fleet) crashShard(idx int) {
	sh := f.shards[idx]
	if sh.srv == nil {
		return
	}
	f.tracef("shard %s crash", sh.name)
	f.logf("fleetsim: t=%s shard %s crash (gen %d)", f.vt(), sh.name, sh.gen)
	f.m.faults++
	f.m.serverCrashes++
	sh.everCrashed = true
	old := sh.srv
	oldGen := sh.gen
	sh.srv = nil
	sh.gen++
	if jn := old.Journal(); jn != nil {
		jn.Crash()
	}
	if sh.shipper != nil {
		sh.shipper.Close()
		sh.shipper = nil
	}
	old.Pusher().CloseAll()
	for _, v := range f.vehicles {
		if v.shardIdx == idx && v.conn != nil && v.srvGen == oldGen {
			v.dropLink()
		}
	}
}

// promoteShard recovers shard idx from its replica directory — the
// failover path: a fresh server opens the replicated journal, settles
// interrupted operations from it, claims a higher leadership epoch, and
// takes over the shard's vehicles as they redial on backoff.
func (f *Fleet) promoteShard(idx int) {
	if f.closed {
		return
	}
	sh := f.shards[idx]
	if sh.srv != nil {
		return
	}
	if sh.replica != nil {
		sh.replica.Close()
	}
	srv := server.New()
	srv.SetShard(sh.name)
	if err := srv.OpenJournal(sh.replDir); err != nil {
		f.violationf("shard %s promotion failed: %v", sh.name, err)
		return
	}
	if err := srv.BecomeLeader("promoted"); err != nil {
		f.violationf("shard %s promotion failed to claim epoch: %v", sh.name, err)
		srv.Close()
		return
	}
	h := srv.Health()
	f.m.recoveredRecords += h.RecoveredRecords
	f.m.interruptedOps += h.InterruptedOperations
	sh.srv = srv
	sh.promoted = true
	f.tracef("shard %s promoted", sh.name)
	f.logf("fleetsim: t=%s shard %s follower promoted (gen %d, %d records recovered, %d operations interrupted)",
		f.vt(), sh.name, sh.gen, h.RecoveredRecords, h.InterruptedOperations)
}

// shutdownShards tears the federated topology down.
func (f *Fleet) shutdownShards() {
	for _, sh := range f.shards {
		if sh.srv != nil {
			sh.srv.Close()
			sh.srv = nil
		}
		if sh.replica != nil && !sh.promoted {
			sh.replica.Close()
		}
	}
}

// partitionTargets splits a workload target list by owning shard,
// preserving order within each shard; returned slices are indexed by
// shard and may be empty.
func (f *Fleet) partitionTargets(targets []core.VehicleID) [][]core.VehicleID {
	out := make([][]core.VehicleID, len(f.shards))
	for _, id := range targets {
		idx := f.shardIdxOf(id)
		out[idx] = append(out[idx], id)
	}
	return out
}
