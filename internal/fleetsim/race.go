//go:build race

package fleetsim

// raceEnabled reports whether the race detector is compiled in;
// scenario tests scale their fleets down under it.
const raceEnabled = true
