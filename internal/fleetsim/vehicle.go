package fleetsim

import (
	"math/rand"
	"net"
	"time"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/sim"
)

// plugKey identifies one flashed plug-in slot on a vehicle.
type plugKey struct {
	ECU    core.ECUID
	SWC    core.SWCID
	Plugin core.PluginName
}

// SimVehicle is a protocol-level vehicle: it speaks the real ECM wire
// protocol (hello, install/upgrade/uninstall, ack/nack) against the
// real pusher over a net.Pipe, but replaces the full PIRTE stack with
// a flash map of installed plug-in versions — cheap enough to run ten
// thousand in one process.
//
// Ownership: every field is mutated only on the pump goroutine, either
// from engine events or from closures the reader goroutine hands back
// via sim.Engine.Inject. The reader itself only reads frames.
type SimVehicle struct {
	f   *Fleet
	idx int
	ID  core.VehicleID
	// rng is the vehicle's own deterministic stream, derived from the
	// scenario seed and the vehicle index so one vehicle's draws don't
	// shift another's.
	rng *rand.Rand

	conn net.Conn // nil while offline
	// shardIdx is the vehicle's ring-owning shard (-1 in single-server
	// runs): the only server this vehicle ever dials.
	shardIdx int
	// srvGen records which server incarnation the link was dialled into,
	// so a crash can sweep links that raced its CloseAll.
	srvGen int
	bo     core.Backoff
	// inflight tracks scheduled ack/nack events; a vehicle crash cancels
	// them, losing in-flight work exactly like a reboot would.
	inflight map[sim.EventID]struct{}

	partitioned bool
	corruptProb float64
	// probeFail makes the vehicle fail its post-upgrade health probes:
	// every MsgUpgrade is nacked with a rollback-requesting reason that
	// the server settles as CodeRolledBack and rollout gates count.
	probeFail bool
	ackMin    sim.Duration
	ackMax    sim.Duration

	// plugins is the flash state — (ECU, SW-C, plug-in) to version. A
	// mutation is applied only after the matching ack was successfully
	// written, so at quiescence "server saw the ack" and "vehicle holds
	// the install" coincide exactly. It survives vehicle crashes.
	plugins map[plugKey]string

	connects, acks, nacks uint64
}

func newSimVehicle(f *Fleet, idx int, id core.VehicleID) *SimVehicle {
	v := &SimVehicle{
		f: f, idx: idx, ID: id, shardIdx: -1,
		rng:      rand.New(rand.NewSource(f.sc.Seed ^ int64(uint64(idx+1)*0x9E3779B97F4A7C15))),
		inflight: make(map[sim.EventID]struct{}),
		ackMin:   f.sc.AckMin,
		ackMax:   f.sc.AckMax,
		plugins:  make(map[plugKey]string),
	}
	v.bo = core.Backoff{Base: 50 * time.Millisecond, Max: 5 * time.Second, Rand: v.rng.Float64}
	return v
}

// connect dials the current server: pipe, hello, reader. Runs as an
// engine event (initial stagger, backoff retries).
func (v *SimVehicle) connect() {
	f := v.f
	if f.closed || v.conn != nil {
		return
	}
	srv := f.serverAt(v.shardIdx)
	if v.partitioned || srv == nil {
		v.scheduleRetry()
		return
	}
	vehicleSide, serverSide := net.Pipe()
	go srv.Pusher().ServeConn(serverSide)
	hello := core.Message{Type: core.MsgHello, Payload: []byte(v.ID)}
	if err := core.WriteMessage(vehicleSide, hello); err != nil {
		vehicleSide.Close()
		v.scheduleRetry()
		return
	}
	v.conn = vehicleSide
	v.srvGen = f.genAt(v.shardIdx)
	v.bo.Reset()
	v.connects++
	go v.readLoop(vehicleSide)
}

func (v *SimVehicle) scheduleRetry() {
	if v.f.closed {
		return
	}
	d := sim.Duration(v.bo.Next()/time.Microsecond) * sim.Microsecond
	if d <= 0 {
		d = sim.Millisecond
	}
	v.f.eng.After(d, v.connect)
}

// readLoop is the vehicle's only goroutine: it reads frames off the
// link and hands them to the pump. It exits when the link dies.
func (v *SimVehicle) readLoop(conn net.Conn) {
	for {
		msg, err := core.ReadMessage(conn)
		if err != nil {
			v.f.eng.Inject(func() { v.onLinkDown(conn) })
			return
		}
		rcv := time.Now()
		v.f.eng.Inject(func() { v.handle(conn, msg, rcv) })
	}
}

// onLinkDown reacts to the reader seeing the link die; stale
// notifications from an already-replaced link are ignored.
func (v *SimVehicle) onLinkDown(conn net.Conn) {
	if v.conn != conn {
		return
	}
	v.conn = nil
	v.scheduleRetry()
}

// dropLink cuts the current link (fault injection). The server's
// disconnect sweep fails the link's pending pushes; the vehicle redials
// with backoff.
func (v *SimVehicle) dropLink() {
	if v.conn == nil {
		return
	}
	v.conn.Close()
	v.conn = nil
	v.scheduleRetry()
}

// crash reboots the vehicle: scheduled ack work is lost (never applied,
// never sent — consistent both ways), flashed plug-ins survive, and the
// redial starts from a fresh backoff.
func (v *SimVehicle) crash() {
	for id := range v.inflight {
		v.f.eng.Cancel(id)
	}
	clear(v.inflight)
	v.bo.Reset()
	if v.conn == nil {
		return // already offline; the pending retry chain keeps running
	}
	v.conn.Close()
	v.conn = nil
	v.scheduleRetry()
}

func (v *SimVehicle) ackDelay() sim.Duration {
	if v.ackMax <= v.ackMin {
		return v.ackMin
	}
	return v.ackMin + sim.Duration(v.rng.Int63n(int64(v.ackMax-v.ackMin)))
}

// handle processes one pushed frame on the pump goroutine: after the
// vehicle's virtual think time it either acks (and applies) or, while a
// bus fault corrupts its frames, nacks.
func (v *SimVehicle) handle(conn net.Conn, msg core.Message, rcv time.Time) {
	if v.conn != conn {
		return // frame raced the link teardown
	}
	switch msg.Type {
	case core.MsgInstall, core.MsgUpgrade, core.MsgUninstall:
	default:
		return // FES relays and future traffic are out of scope here
	}
	corrupt := v.corruptProb > 0 && v.rng.Float64() < v.corruptProb
	var id sim.EventID
	id = v.f.eng.After(v.ackDelay(), func() {
		delete(v.inflight, id)
		if corrupt {
			v.f.m.corrupted++
			if v.send(conn, msg.Nack("bus fault: corrupt frame")) {
				v.nacks++
			}
			return
		}
		if v.probeFail && msg.Type == core.MsgUpgrade {
			v.f.m.probeNacks++
			if v.send(conn, msg.Nack("rollback: injected probe failure")) {
				v.nacks++
			}
			return
		}
		v.applyAck(conn, msg, rcv)
	})
	v.inflight[id] = struct{}{}
}

// applyAck validates the package, writes the ack and only then mutates
// the flash state: a write that fails (link died) applies nothing, so
// the server's disconnect sweep and the vehicle agree.
func (v *SimVehicle) applyAck(conn net.Conn, msg core.Message, rcv time.Time) {
	if v.conn != conn {
		return
	}
	key := plugKey{ECU: msg.ECU, SWC: msg.SWC, Plugin: msg.Plugin}
	version := ""
	if msg.Type != core.MsgUninstall {
		var pkg plugin.Package
		if err := pkg.UnmarshalBinary(msg.Payload); err != nil {
			if v.send(conn, msg.Nack("bad package: "+err.Error())) {
				v.nacks++
			}
			return
		}
		version = pkg.Binary.Manifest.Version
	}
	if !v.send(conn, msg.Ack()) {
		return
	}
	v.acks++
	v.f.m.ackRTT.record(time.Since(rcv))
	if msg.Type == core.MsgUninstall {
		delete(v.plugins, key)
	} else {
		v.plugins[key] = version
	}
}

func (v *SimVehicle) send(conn net.Conn, msg core.Message) bool {
	return core.WriteMessage(conn, msg) == nil
}
