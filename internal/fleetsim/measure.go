package fleetsim

import (
	"context"
	"math"
	"runtime"
	"sort"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/sim"
)

// metrics accumulates the run's counters and latency samples. All
// writes happen on the pump goroutine.
type metrics struct {
	launched, settled, lostOps int
	launchesSkipped            int
	faults, serverCrashes      int
	corrupted                  uint64
	probeNacks                 uint64
	recoveredRecords           int
	interruptedOps             int

	rolloutsSettled    int
	rolloutsRolledBack int
	rolloutsLost       int
	wavesPromoted      int

	deploy, upgrade, uninstall, rollout, ackRTT hist
}

func (m *metrics) lat(metric string) *hist {
	switch metric {
	case "upgrade":
		return &m.upgrade
	case "uninstall":
		return &m.uninstall
	case "rollout":
		return &m.rollout
	default:
		return &m.deploy
	}
}

// hist keeps raw samples in milliseconds; fleets are small enough that
// exact percentiles beat bucketing.
type hist struct {
	samples []float64
	max     float64
}

// histCap bounds sample memory (~1.6MB per histogram at the cap).
const histCap = 200_000

func (h *hist) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	if ms > h.max {
		h.max = ms
	}
	if len(h.samples) < histCap {
		h.samples = append(h.samples, ms)
	}
}

// LatencyStats summarizes one latency distribution in milliseconds.
type LatencyStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50Ms"`
	P95   float64 `json:"p95Ms"`
	P99   float64 `json:"p99Ms"`
	Max   float64 `json:"maxMs"`
}

func (h *hist) stats() LatencyStats {
	if len(h.samples) == 0 {
		return LatencyStats{}
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	pick := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return LatencyStats{Count: len(s), P50: pick(0.50), P95: pick(0.95), P99: pick(0.99), Max: h.max}
}

// Report is the BENCH_FLEET.json shape: one scenario run's
// environment, counters, throughput and latency percentiles, plus the
// server's own /v1/statz counters for cross-checking.
type Report struct {
	Scenario       string  `json:"scenario"`
	Seed           int64   `json:"seed"`
	Vehicles       int     `json:"vehicles"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	WallSeconds    float64 `json:"wallSeconds"`

	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`

	Counters   map[string]uint64       `json:"counters"`
	Throughput map[string]float64      `json:"throughputPerSec"`
	Latency    map[string]LatencyStats `json:"latency"`

	// Installed counts, per app, the vehicles holding an installed row
	// at the end of the run — the convergence observable rollout tests
	// assert all-old/all-new on.
	Installed map[string]int `json:"installedVehicles,omitempty"`

	Statz *api.Statz `json:"statz,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// report assembles the final Report; called once the pump has drained.
func (f *Fleet) report() Report {
	wall := time.Since(f.start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	var connects, acks, nacks uint64
	reconnected := 0
	for _, v := range f.vehicles {
		connects += v.connects
		acks += v.acks
		nacks += v.nacks
		if v.connects > 1 {
			reconnected++
		}
	}
	rep := Report{
		Scenario:       f.sc.Name,
		Seed:           f.sc.Seed,
		Vehicles:       f.sc.Vehicles,
		VirtualSeconds: float64(f.eng.Now()) / float64(sim.Second),
		WallSeconds:    wall,
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		Counters: map[string]uint64{
			"connects":         connects,
			"reconnects":       connects - uint64(len(f.vehicles)),
			"vehiclesRedialed": uint64(reconnected),
			"acks":             acks,
			"nacks":            nacks,
			"corruptedFrames":  f.m.corrupted,
			"probeNacks":       f.m.probeNacks,
			"opsLaunched":      uint64(f.m.launched),
			"opsSettled":       uint64(f.m.settled),
			"opsLostToCrash":   uint64(f.m.lostOps),
			"launchesSkipped":  uint64(f.m.launchesSkipped),
			"faultsInjected":   uint64(f.m.faults),
			"serverCrashes":    uint64(f.m.serverCrashes),
			"recoveredRecords": uint64(f.m.recoveredRecords),
			"interruptedOps":   uint64(f.m.interruptedOps),

			"rolloutsSettled":      uint64(f.m.rolloutsSettled),
			"rolloutsRolledBack":   uint64(f.m.rolloutsRolledBack),
			"rolloutsLostToCrash":  uint64(f.m.rolloutsLost),
			"rolloutWavesPromoted": uint64(f.m.wavesPromoted),
		},
		Throughput: map[string]float64{
			"acks": float64(acks) / wall,
		},
		Latency: map[string]LatencyStats{
			"deploy":    f.m.deploy.stats(),
			"upgrade":   f.m.upgrade.stats(),
			"uninstall": f.m.uninstall.stats(),
			"rollout":   f.m.rollout.stats(),
			"ackRtt":    f.m.ackRTT.stats(),
		},
		Violations: f.violations,
	}
	installed := make(map[string]int)
	for _, v := range f.vehicles {
		srv := f.serverAt(v.shardIdx)
		if srv == nil {
			continue
		}
		for _, row := range srv.Store().InstalledApps(v.ID) {
			installed[string(row.App)]++
		}
	}
	if len(installed) > 0 || f.srv != nil || f.multi() {
		rep.Installed = installed
	}
	// The statz counters come through the same client surface fescli
	// uses, so the endpoint is exercised end to end. A federated run
	// reports the sum across live shards, like the router's /v1/statz.
	if st, ok := f.statzSnapshot(); ok {
		rep.Statz = &st
		rep.Throughput["pushes"] = float64(st.PushesSent) / wall
	}
	return rep
}

// statzSnapshot fetches /v1/statz through the typed client: the single
// server's, or the field-wise sum over every live shard.
func (f *Fleet) statzSnapshot() (api.Statz, bool) {
	ctx := context.Background()
	if !f.multi() {
		if f.srv == nil {
			return api.Statz{}, false
		}
		st, err := api.NewLocalClient(f.srv.Service()).Statz(ctx)
		return st, err == nil
	}
	var sum api.Statz
	sum.OpsSettled = make(map[string]uint64)
	any := false
	for _, sh := range f.shards {
		if sh.srv == nil {
			continue
		}
		st, err := api.NewLocalClient(sh.srv.Service()).Statz(ctx)
		if err != nil {
			continue
		}
		any = true
		sum.OpsCreated += st.OpsCreated
		sum.OpsOpen += st.OpsOpen
		sum.PendingAcks += st.PendingAcks
		sum.VehiclesConnected += st.VehiclesConnected
		sum.PushesSent += st.PushesSent
		sum.JournalRecords += st.JournalRecords
		sum.JournalCommits += st.JournalCommits
		sum.JournalSinceSnapshot += st.JournalSinceSnapshot
		for k, n := range st.OpsSettled {
			sum.OpsSettled[k] += n
		}
	}
	sum.Shard = "federated"
	return sum, any
}
