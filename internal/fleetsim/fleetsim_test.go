package fleetsim

import (
	"flag"
	"slices"
	"strings"
	"testing"
	"time"

	"dynautosar/internal/sim"
)

// seedFlag replays a failed run: every scenario test logs its
// effective seed, and `-seed N` reruns the identical fault schedule.
var seedFlag = flag.Int64("seed", 0, "scenario seed override (0 derives one from the clock and logs it for replay)")

// soakFlag opts into the long-soak drift run (CI nightly): a stretched
// soak preset whose quiescent-point audits cross-check /v1/statz
// against the tracker's accounting throughout.
var soakFlag = flag.Bool("soak", false, "run the long soak statz-drift test")

func scenarioSeed(t *testing.T) int64 {
	s := *seedFlag
	if s == 0 {
		s = time.Now().UnixNano()&0x3fffffff + 1
	}
	t.Logf("scenario seed %d — replay with: go test ./internal/fleetsim -run '^%s$' -seed %d", s, t.Name(), s)
	return s
}

// scaled shrinks fleet sizes under the race detector and -short, where
// instrumentation makes full-size fleets too slow.
func scaled(n int) int {
	if raceEnabled || testing.Short() {
		n /= 20
	}
	return max(n, 8)
}

func requireClean(t *testing.T, res *Result, seed int64) {
	t.Helper()
	if len(res.Violations) > 0 {
		t.Fatalf("seed %d: %d invariant violations:\n  %s",
			seed, len(res.Violations), strings.Join(res.Violations, "\n  "))
	}
}

// TestScenarioStorm is the headline run: a full-size fleet under
// churn, bus faults, a partition landing mid-upgrade, vehicle reboots
// and a server crash-restart — zero invariant violations allowed, and
// the whole thing must replay from the logged seed.
func TestScenarioStorm(t *testing.T) {
	seed := scenarioSeed(t)
	sc, err := Preset("storm", scaled(10000), seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	c := res.Report.Counters
	if c["serverCrashes"] != 1 {
		t.Errorf("expected exactly one server crash, got %d", c["serverCrashes"])
	}
	if c["recoveredRecords"] == 0 {
		t.Errorf("server recovery replayed no journal records")
	}
	if c["reconnects"] == 0 {
		t.Errorf("a storm without a single reconnect means the faults never landed")
	}
	for _, k := range []string{"deploy", "upgrade", "ackRtt"} {
		if res.Report.Latency[k].Count == 0 {
			t.Errorf("no %s latency samples recorded", k)
		}
	}
	if res.Report.Statz == nil || res.Report.Statz.OpsCreated == 0 {
		t.Errorf("statz counters missing from the report: %+v", res.Report.Statz)
	}
}

// TestScenarioSoak checks the steady-state preset end to end and that
// the report cross-checks against the server's /v1/statz counters.
func TestScenarioSoak(t *testing.T) {
	seed := scenarioSeed(t)
	sc, err := Preset("soak", scaled(400), seed, 12*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	rep := res.Report
	if rep.Latency["deploy"].Count == 0 || rep.Latency["upgrade"].Count == 0 || rep.Latency["ackRtt"].Count == 0 {
		t.Errorf("latency distributions incomplete: %+v", rep.Latency)
	}
	if rep.Latency["rollout"].Count == 0 {
		t.Errorf("the soak preset's progressive rollout recorded no latency sample")
	}
	st := rep.Statz
	if st == nil {
		t.Fatal("report carries no statz snapshot")
	}
	if st.OpsCreated == 0 || st.PushesSent == 0 {
		t.Errorf("statz counters never moved: %+v", st)
	}
	if st.OpsOpen != 0 {
		t.Errorf("%d operations still open at quiescence", st.OpsOpen)
	}
	if st.PendingAcks != 0 {
		t.Errorf("%d pushes still awaiting acks at quiescence", st.PendingAcks)
	}
}

// TestScenarioSoakDrift is the long-soak drift gate (opt-in via -soak;
// CI runs it nightly): a stretched soak window with a larger fleet, so
// the run crosses many quiescent points — at each one the auditor
// cross-checks /v1/statz against the tracker's accounting, and at the
// end the counters must balance exactly: nothing open, nothing pending,
// every created operation carrying a settled outcome.
func TestScenarioSoakDrift(t *testing.T) {
	if !*soakFlag {
		t.Skip("long soak: enable with -soak")
	}
	seed := scenarioSeed(t)
	sc, err := Preset("soak", scaled(2000), seed, 120*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	st := res.Report.Statz
	if st == nil {
		t.Fatal("report carries no statz snapshot")
	}
	if st.OpsOpen != 0 || st.PendingAcks != 0 {
		t.Errorf("seed %d: quiescent server still busy: %d ops open, %d acks pending", seed, st.OpsOpen, st.PendingAcks)
	}
	var settled uint64
	for _, n := range st.OpsSettled {
		settled += n
	}
	if settled != st.OpsCreated {
		t.Errorf("seed %d: statz drifted over the soak: %d created, %d settled outcomes", seed, st.OpsCreated, settled)
	}
}

// TestScenarioTraceDeterministic is the replay contract: same scenario
// and seed produce the identical fault/workload trace; a different
// seed produces a different one.
func TestScenarioTraceDeterministic(t *testing.T) {
	seed := scenarioSeed(t)
	run := func(s int64) []string {
		t.Helper()
		sc, err := Preset("churn", 150, s, 6*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		sc.Speedup = -1 // unpaced: determinism must not depend on pacing
		res, err := Run(sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, res, s)
		return res.Trace
	}
	a := run(seed)
	b := run(seed)
	if !slices.Equal(a, b) {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at entry %d:\n  run1: %s\n  run2: %s", seed, i, a[i], b[i])
			}
		}
		t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
	}
	if c := run(seed + 1); slices.Equal(a, c) {
		t.Errorf("seeds %d and %d produced identical traces — the schedule ignores the seed", seed, seed+1)
	}
}

// TestShardCrashTraceDeterministic extends the replay contract to the
// federated topology: a sharded storm — ring assignment, per-shard
// batches, a shard crash and its promotion — must trace identically
// from the same seed, so a multi-shard chaos run replays exactly like a
// single-server one.
func TestShardCrashTraceDeterministic(t *testing.T) {
	seed := scenarioSeed(t)
	run := func(s int64) []string {
		t.Helper()
		sc, err := Preset("storm", scaled(300), s, 10*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		sc.Speedup = -1 // unpaced: determinism must not depend on pacing
		res, err := Run(sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, res, s)
		if got := res.Report.Counters["serverCrashes"]; got != 1 {
			t.Fatalf("seed %d: shard crash never fired (serverCrashes = %d)", s, got)
		}
		return res.Trace
	}
	a := run(seed)
	b := run(seed)
	if !slices.Equal(a, b) {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("seed %d: sharded traces diverge at entry %d:\n  run1: %s\n  run2: %s", seed, i, a[i], b[i])
			}
		}
		t.Fatalf("seed %d: sharded trace lengths differ: %d vs %d", seed, len(a), len(b))
	}
	if c := run(seed + 1); slices.Equal(a, c) {
		t.Errorf("seeds %d and %d produced identical sharded traces — the schedule ignores the seed", seed, seed+1)
	}
}

// TestPartitionHealReconnect isolates the reconnect-backoff behaviour:
// a full-fleet partition heals and every vehicle must find its way
// back, spread by jittered exponential backoff rather than stampeding.
func TestPartitionHealReconnect(t *testing.T) {
	seed := scenarioSeed(t)
	sc := Scenario{
		Name: "heal", Vehicles: scaled(200), Seed: seed,
		Duration: 12 * sim.Second, Speedup: -1,
		Faults: []Fault{Partition{At: sim.Second, Heal: 4 * sim.Second, Fraction: 1}},
	}
	res, err := Run(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	c := res.Report.Counters
	n := uint64(res.Report.Vehicles)
	if c["vehiclesRedialed"] != n {
		t.Errorf("seed %d: %d of %d vehicles redialed after the heal", seed, c["vehiclesRedialed"], n)
	}
	if c["reconnects"] < n {
		t.Errorf("seed %d: expected at least %d reconnects, got %d", seed, n, c["reconnects"])
	}
}

// TestStormCrashRecovery kills the server mid-batch-upgrade under a
// fleet-size storm of acks and verifies recovery: zero lost and zero
// duplicated installation rows (invariants I4/I5), with the
// interrupted work accounted rather than stuck.
func TestStormCrashRecovery(t *testing.T) {
	seed := scenarioSeed(t)
	apps, err := FleetApps()
	if err != nil {
		t.Fatal(err)
	}
	d := 20 * sim.Second
	sc := Scenario{
		Name: "storm-crash", Vehicles: scaled(1000), Seed: seed,
		Duration: d, Apps: apps,
		AckMin: 2 * sim.Millisecond, AckMax: 20 * sim.Millisecond,
		Workload: []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
			{At: d * 2 / 5, Kind: WorkBatchUpgrade, App: AppV1, ToApp: AppV2},
		},
		Faults: []Fault{
			SlowAcks{Fraction: 0.05, Min: 200 * sim.Millisecond, Max: 900 * sim.Millisecond},
			// 150ms of virtual time after the upgrade launches, the
			// server dies; stragglers guarantee swaps are still in
			// flight when it does.
			ServerCrash{At: d*2/5 + 150*sim.Millisecond, RestartAfter: sim.Second},
		},
	}
	res, err := Run(sc, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, seed)
	c := res.Report.Counters
	if c["serverCrashes"] != 1 {
		t.Fatalf("expected exactly one server crash, got %d", c["serverCrashes"])
	}
	if c["recoveredRecords"] == 0 {
		t.Errorf("recovery replayed no journal records")
	}
	if c["opsLostToCrash"]+c["interruptedOps"] == 0 {
		t.Errorf("seed %d: the crash interrupted nothing — it missed the upgrade window", seed)
	}
}
