package fleetsim

import (
	"fmt"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
)

// The invariant checker audits the server's durable state against
// every vehicle's flash at quiescent points (whenever the last open
// operation settles, and once more at the end of the run):
//
//	I1 every launched operation settles before the real-time limit
//	   (enforced by the pump; an operation lost to a server crash is
//	   accounted, not violated).
//	I2 batch accounting is exact: children match the resolved vehicle
//	   list, succeeded+failed counts cover every child, and the parent
//	   state is consistent with them.
//	I3 port ids are unique per (vehicle, ECU, SW-C) across installed
//	   rows — two plug-ins sharing a port id would misroute traffic.
//	I4 server honesty: every acked install row is present on the
//	   vehicle at the expected version (no lost installations), and
//	   every flashed plug-in is known to the server (no orphans) —
//	   except where a failed or crash-interrupted operation legitimately
//	   left the pair divergent (failed-upgrade compensation, failed
//	   deploys, work lost with a dying server).
//	I5 an upgraded family is all-old-or-all-new: a vehicle never holds
//	   both versions, and a vehicle whose deploy succeeded still holds
//	   exactly one of them after every crash and recovery.
//
// Violations carry enough context to debug from the scenario seed.

// exKey marks a (vehicle, app) pair whose divergence a failed or lost
// operation explains.
type exKey struct {
	vehicle core.VehicleID
	app     core.AppName
}

// exemptions builds the divergence allowance from terminal operations:
// a failed child exempts its (vehicle, app) and upgrade target; a lost
// operation (crashed server) exempts every pair it addressed; an
// operation settled by an incarnation whose journal lost durability
// (disk full) exempts its pairs once a crash crosses that incarnation —
// its commit records may never have hit disk, so recovery can revert
// rows the tracker saw succeed.
func (f *Fleet) exemptions() map[exKey]bool {
	ex := make(map[exKey]bool)
	add := func(v core.VehicleID, apps ...core.AppName) {
		for _, a := range apps {
			if a != "" {
				ex[exKey{v, a}] = true
			}
		}
	}
	// Synchronous replication makes a shard's replica exactly as durable
	// as its own journal, so a shard crash earns no broader allowance
	// than a single-server crash: only lost, failed and unfinished
	// operations explain divergence.
	for _, t := range f.settledOps {
		lostDurability := t.shard < 0 && t.gen < f.serverGen && f.degradedGens[t.gen]
		if t.lost || (t.done && t.final.State == api.StateFailed) || !t.done || lostDurability {
			for _, v := range t.targets {
				add(v, t.app, t.toApp)
			}
		}
	}
	for _, cop := range f.childFinal {
		if cop.State == api.StateFailed {
			add(cop.Vehicle, cop.App, cop.ToApp)
		}
	}
	// A rollout that crossed a server crash may have had wave children
	// in flight when the process died (an ack applied on the vehicle
	// whose commit never became durable); recovery converges the fleet
	// at the store level, so the whole target set is exempted like a
	// lost operation's.
	for _, t := range f.settledRollouts {
		if t.lost || t.gen < f.genAt(t.shard) {
			for _, v := range t.targets {
				add(v, t.from, t.to)
			}
		}
	}
	return ex
}

// audit runs the full invariant sweep against the current topology —
// the single server, or each live shard's server for the vehicles it
// owns.
func (f *Fleet) audit(label string) {
	if f.closed || (!f.multi() && f.srv == nil) {
		return
	}
	// Audits are deliberately absent from the trace: *when* quiescence
	// hits depends on real scheduling, and the trace must stay a pure
	// function of the seed.
	f.auditOps()
	f.auditStatz(label)
	ex := f.exemptions()
	deployOK := f.deploySucceededVehicles()
	pairs := f.sc.upgradePairs()
	for _, v := range f.vehicles {
		srv := f.serverAt(v.shardIdx)
		if srv == nil {
			continue // shard down; its vehicles audit after promotion
		}
		rows := srv.Store().InstalledApps(v.ID)
		f.auditPorts(v, rows)
		f.auditHonesty(v, rows, ex)
		f.auditFamilies(v, rows, pairs, deployOK, label)
	}
}

// auditStatz cross-checks the server's /v1/statz counters against the
// tracker's accounting at a quiescent point: with every tracked
// operation and rollout settled, the registry must hold no open
// operations and every created operation must have a settled outcome.
// The counters are in-memory and reset with the process, so the check
// only binds while the run has not crossed a server crash.
func (f *Fleet) auditStatz(label string) {
	if f.m.lostOps > 0 || f.m.rolloutsLost > 0 {
		return
	}
	if f.multi() {
		// Per-shard counters: a shard that ever crashed is excluded (its
		// counters reset with the promotion), the rest must balance.
		for _, sh := range f.shards {
			if sh.everCrashed || sh.srv == nil {
				continue
			}
			f.checkStatz(sh.srv.Statz(), "shard "+sh.name+" ", label)
		}
		return
	}
	if f.m.serverCrashes > 0 {
		return
	}
	f.checkStatz(f.srv.Statz(), "", label)
}

func (f *Fleet) checkStatz(st api.Statz, who, label string) {
	if st.OpsOpen != 0 {
		f.violationf("%sstatz drift at %s audit: %d operations open with the fleet quiescent", who, label, st.OpsOpen)
	}
	var settled uint64
	for _, n := range st.OpsSettled {
		settled += n
	}
	if settled != st.OpsCreated {
		f.violationf("%sstatz drift at %s audit: %d operations created but %d settled outcomes recorded",
			who, label, st.OpsCreated, settled)
	}
}

// auditOps checks I2 on every settled batch parent and its sweep of
// terminal children.
func (f *Fleet) auditOps() {
	for _, t := range f.settledOps {
		if t.lost || !t.done {
			continue
		}
		op := t.final
		if !op.Done {
			f.violationf("operation %s settled without Done", op.ID)
		}
		if len(op.Children) == 0 {
			continue
		}
		if len(op.Children) != len(op.Vehicles) {
			f.violationf("batch %s has %d children for %d vehicles", op.ID, len(op.Children), len(op.Vehicles))
		}
		if op.VehiclesSucceeded+op.VehiclesFailed != len(op.Children) {
			f.violationf("batch %s accounting leak: %d succeeded + %d failed != %d children",
				op.ID, op.VehiclesSucceeded, op.VehiclesFailed, len(op.Children))
		}
		failed := op.VehiclesFailed > 0
		if failed != (op.State == api.StateFailed) {
			f.violationf("batch %s state %q inconsistent with %d failed children", op.ID, op.State, op.VehiclesFailed)
		}
		for _, cid := range op.Children {
			cop, ok := f.childFinal[f.qkey(t.shard, cid)]
			if !ok {
				continue // already reported at sweep time
			}
			if !cop.Done || (cop.State != api.StateSucceeded && cop.State != api.StateFailed) {
				f.violationf("batch %s child %s not terminal at parent settle (state %q)", op.ID, cid, cop.State)
			}
			if cop.Parent != op.ID {
				f.violationf("child %s points at parent %q, expected %s", cid, cop.Parent, op.ID)
			}
		}
	}
}

// auditPorts checks I3: across every installed row of the vehicle, a
// (ECU, SW-C, port id) is bound at most once.
func (f *Fleet) auditPorts(v *SimVehicle, rows []api.InstalledApp) {
	type portSlot struct {
		ecu core.ECUID
		swc core.SWCID
		id  core.PluginPortID
	}
	seen := make(map[portSlot]string)
	for _, row := range rows {
		for _, p := range row.Plugins {
			for _, e := range p.PIC {
				slot := portSlot{p.ECU, p.SWC, e.ID}
				holder := fmt.Sprintf("%s/%s", row.App, p.Plugin)
				if prev, dup := seen[slot]; dup {
					f.violationf("vehicle %s: port id %d on %s/%s bound by both %s and %s — traffic would misroute",
						v.ID, e.ID, p.ECU, p.SWC, prev, holder)
				}
				seen[slot] = holder
			}
		}
	}
}

// auditHonesty checks I4 in both directions.
func (f *Fleet) auditHonesty(v *SimVehicle, rows []api.InstalledApp, ex map[exKey]bool) {
	known := make(map[plugKey]bool)
	vehicleExempt := false
	for _, row := range rows {
		exempt := ex[exKey{v.ID, row.App}]
		if exempt {
			vehicleExempt = true
		}
		want := f.appVer[row.App]
		for _, p := range row.Plugins {
			key := plugKey{ECU: p.ECU, SWC: p.SWC, Plugin: p.Plugin}
			known[key] = true
			if !p.Acked || exempt {
				continue
			}
			got, held := v.plugins[key]
			if !held {
				f.violationf("vehicle %s: server says %s/%s acked on %s/%s but the vehicle lost it",
					v.ID, row.App, p.Plugin, p.ECU, p.SWC)
				continue
			}
			if want != nil && got != want[p.Plugin] {
				f.violationf("vehicle %s: %s/%s at version %q, server row expects %q",
					v.ID, row.App, p.Plugin, got, want[p.Plugin])
			}
		}
	}
	// Orphan direction: anything flashed must be server-known, unless a
	// failed/lost operation on this vehicle explains leftovers.
	if vehicleExempt {
		return
	}
	for _, t := range f.settledOps {
		if t.lost {
			for _, id := range t.targets {
				if id == v.ID {
					return
				}
			}
		}
	}
	for key, ver := range v.plugins {
		if !known[key] && !f.orphanExplained(v.ID, key, ex) {
			f.violationf("vehicle %s: flashed plug-in %s@%s on %s/%s unknown to the server",
				v.ID, key.Plugin, ver, key.ECU, key.SWC)
		}
	}
}

// orphanExplained reports whether a flashed-but-unknown plug-in belongs
// to an app a failed or lost operation exempted on this vehicle. The
// server row can be gone entirely — a deploy child that failed after
// some acks applied removes its partial row while the vehicle keeps the
// acked flash — so the check maps the plug-in back to candidate apps
// through the scenario catalogue instead of through server rows.
func (f *Fleet) orphanExplained(vehicle core.VehicleID, key plugKey, ex map[exKey]bool) bool {
	for app, plugs := range f.appVer {
		if _, owns := plugs[key.Plugin]; owns && ex[exKey{vehicle, app}] {
			return true
		}
	}
	return false
}

// auditFamilies checks I5 on every upgraded app family.
func (f *Fleet) auditFamilies(v *SimVehicle, rows []api.InstalledApp, pairs [][2]core.AppName, deployOK map[core.VehicleID]map[core.AppName]bool, label string) {
	present := make(map[core.AppName]bool, len(rows))
	for _, row := range rows {
		present[row.App] = true
	}
	for _, pair := range pairs {
		from, to := pair[0], pair[1]
		if present[from] && present[to] {
			f.violationf("vehicle %s: both %s and %s installed — duplicated family row", v.ID, from, to)
		}
		// A vehicle whose deploy of `from` succeeded must still hold
		// exactly one version at the final audit: upgrades commit or
		// roll back, and recovery replays that decision.
		if label == "final" && deployOK[v.ID][from] && !present[from] && !present[to] {
			f.violationf("vehicle %s: family %s/%s lost — deploy succeeded but no version remains", v.ID, from, to)
		}
	}
}

// deploySucceededVehicles maps vehicle -> app for every deploy child or
// single deploy that reached succeeded.
func (f *Fleet) deploySucceededVehicles() map[core.VehicleID]map[core.AppName]bool {
	out := make(map[core.VehicleID]map[core.AppName]bool)
	mark := func(v core.VehicleID, app core.AppName) {
		if out[v] == nil {
			out[v] = make(map[core.AppName]bool)
		}
		out[v][app] = true
	}
	for _, t := range f.settledOps {
		if t.metric == "deploy" && t.done && !t.lost && len(t.final.Children) == 0 && t.final.State == api.StateSucceeded {
			mark(t.final.Vehicle, t.final.App)
		}
	}
	for _, cop := range f.childFinal {
		if cop.Kind == api.OpDeploy && cop.State == api.StateSucceeded {
			mark(cop.Vehicle, cop.App)
		}
	}
	return out
}
