package fleetsim

import (
	"errors"
	"fmt"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/journal"
	"dynautosar/internal/sim"
)

// A Scenario is a declarative description of one fleet run: how many
// vehicles, which apps exist, when workload is launched and which
// faults are injected along the virtual timeline. Everything random —
// fault victims, jitter, per-vehicle ack delays — derives from Seed,
// so a scenario's fault schedule replays exactly from its seed (see
// the determinism contract in DESIGN.md).
type Scenario struct {
	Name     string
	Vehicles int
	Seed     int64
	// Duration is the virtual length of the scenario window. The run
	// extends past it only to let already-launched operations settle.
	Duration sim.Duration
	// Speedup caps virtual progress at Speedup virtual microseconds per
	// real microsecond, so virtual fault times stay meaningful relative
	// to the real server's concurrent work. 0 selects the default (4);
	// negative disables pacing (run as fast as possible).
	Speedup int
	// Journal forces a durable server even without a ServerCrash fault.
	Journal bool
	// Shards > 1 runs a federated control plane: that many leader
	// servers partition the fleet by consistent hashing, each journaling
	// to its own directory and replicating synchronously into a follower
	// replica that a ShardCrash fault can promote. Always journaled.
	Shards int
	// DataDir is the journal directory; empty selects a fresh temporary
	// directory that is removed when the run ends.
	DataDir string
	// ConnectWindow spreads the initial dial-in herd over [0, window).
	ConnectWindow sim.Duration
	// AckMin/AckMax bound the default per-message vehicle ack delay.
	AckMin, AckMax sim.Duration
	Apps           []api.App
	Workload       []WorkItem
	Faults         []Fault
	// RealTimeLimit caps the run in wall time; exceeding it with
	// unsettled operations is an invariant violation (stuck fleet).
	RealTimeLimit time.Duration
}

// WorkKind selects the operation a WorkItem launches.
type WorkKind string

const (
	// WorkBatchDeploy deploys App to the selected fleet as one batch.
	WorkBatchDeploy WorkKind = "batch-deploy"
	// WorkBatchUpgrade upgrades App to ToApp across the selected fleet.
	WorkBatchUpgrade WorkKind = "batch-upgrade"
	// WorkBatchUninstall removes App from the selected fleet.
	WorkBatchUninstall WorkKind = "batch-uninstall"
	// WorkDeploy launches one single-vehicle deploy per selected
	// vehicle (individual operations, not a batch).
	WorkDeploy WorkKind = "deploy"
	// WorkRollout upgrades App to ToApp progressively: health-gated
	// canary waves with automatic fleet rollback when a gate trips.
	WorkRollout WorkKind = "rollout"
)

// WorkItem launches one operation (or one operation per vehicle for
// WorkDeploy) at a virtual time.
type WorkItem struct {
	At   sim.Duration
	Kind WorkKind
	App  core.AppName
	// ToApp is the upgrade target for WorkBatchUpgrade.
	ToApp core.AppName
	// Fraction selects a random sample of the fleet; <=0 or >=1 selects
	// every vehicle.
	Fraction float64
	// Group names a shared vehicle sample: items with the same Group hit
	// the same vehicles (deploy something, then uninstall it from the
	// same sample).
	Group string
	// Waves is the wave plan for WorkRollout; empty selects the server's
	// default canary plan (1 vehicle, 10%, all).
	Waves []api.RolloutWave
	// Health is the health-gate policy for WorkRollout; nil selects the
	// server's strictest (zero) policy.
	Health *api.RolloutHealthPolicy
}

// sdur formats a virtual duration for traces and errors.
func sdur(d sim.Duration) string { return fmt.Sprintf("%.3fs", float64(d)/float64(sim.Second)) }

// Fault is one entry of the fault catalogue. Implementations schedule
// their virtual-time events on the fleet's engine; all of them draw
// victims from the fleet's seeded RNG, in declaration order, so the
// fault schedule is a pure function of the scenario seed.
type Fault interface {
	schedule(f *Fleet)
}

// Churn cuts one random vehicle's server link at a steady virtual rate
// between Start and Stop; the vehicle redials with capped exponential
// backoff. Cuts that land on an already-offline vehicle are no-ops but
// still consume their RNG draw, keeping the schedule deterministic.
type Churn struct {
	Start, Stop sim.Duration
	// Every is the mean virtual interval between cuts.
	Every sim.Duration
}

func (c Churn) schedule(f *Fleet) {
	if c.Every <= 0 {
		return
	}
	var cut func()
	cut = func() {
		v := f.vehicles[f.rng.Intn(len(f.vehicles))]
		f.tracef("churn cut %s", v.ID)
		f.m.faults++
		v.dropLink()
		next := f.eng.Now().Add(c.Every/2 + sim.Duration(f.rng.Int63n(int64(c.Every))))
		if next <= sim.Time(c.Stop) {
			f.eng.Schedule(next, cut)
		}
	}
	f.eng.Schedule(sim.Time(c.Start), cut)
}

// Partition isolates a random Fraction of the fleet at At: their links
// drop and every redial fails until Heal, when the whole herd races
// back in (spread by backoff jitter).
type Partition struct {
	At, Heal sim.Duration
	Fraction float64
}

func (p Partition) schedule(f *Fleet) {
	f.eng.Schedule(sim.Time(p.At), func() {
		members := f.sample(p.Fraction)
		f.tracef("partition %d vehicles until t=%s", len(members), sdur(p.Heal))
		for _, v := range members {
			f.m.faults++
			v.partitioned = true
			v.dropLink()
		}
		f.eng.Schedule(sim.Time(p.Heal), func() {
			f.tracef("partition heals")
			for _, v := range members {
				v.partitioned = false
			}
		})
	})
}

// BusFault corrupts the CAN frames of a random Fraction of vehicles
// between At and Heal: every push they receive is nacked with a
// corrupt-frame reason. With BusOff the affected controllers also go
// bus-off midway through the window, dropping their server links.
type BusFault struct {
	At, Heal sim.Duration
	Fraction float64
	// CorruptProb is the per-frame nack probability while the fault is
	// active; 0 selects 1.0 (every frame corrupted).
	CorruptProb float64
	BusOff      bool
}

func (b BusFault) schedule(f *Fleet) {
	prob := b.CorruptProb
	if prob <= 0 {
		prob = 1
	}
	f.eng.Schedule(sim.Time(b.At), func() {
		members := f.sample(b.Fraction)
		f.tracef("bus fault on %d vehicles until t=%s", len(members), sdur(b.Heal))
		for _, v := range members {
			f.m.faults++
			v.corruptProb = prob
		}
		if b.BusOff {
			f.eng.Schedule(sim.Time((b.At+b.Heal)/2), func() {
				f.tracef("bus-off: %d faulty controllers drop their links", len(members))
				for _, v := range members {
					v.dropLink()
				}
			})
		}
		f.eng.Schedule(sim.Time(b.Heal), func() {
			f.tracef("bus fault heals")
			for _, v := range members {
				v.corruptProb = 0
			}
		})
	})
}

// SlowAcks turns a random Fraction of the fleet into stragglers whose
// acks take Min..Max of virtual time instead of the scenario default.
type SlowAcks struct {
	Fraction float64
	Min, Max sim.Duration
}

func (s SlowAcks) schedule(f *Fleet) {
	f.eng.Schedule(0, func() {
		members := f.sample(s.Fraction)
		f.tracef("%d straggler vehicles ack in %s..%s", len(members), sdur(s.Min), sdur(s.Max))
		for _, v := range members {
			v.ackMin, v.ackMax = s.Min, s.Max
		}
	})
}

// VehicleCrash reboots a random Fraction of the fleet at At: in-flight
// (unacknowledged) work is lost, flashed installations survive, and the
// vehicles redial from a fresh backoff.
type VehicleCrash struct {
	At       sim.Duration
	Fraction float64
}

func (c VehicleCrash) schedule(f *Fleet) {
	f.eng.Schedule(sim.Time(c.At), func() {
		members := f.sample(c.Fraction)
		f.tracef("%d vehicles crash-reboot", len(members))
		for _, v := range members {
			f.m.faults++
			v.crash()
		}
	})
}

// ProbeFailure makes a random Fraction of the fleet fail its
// post-upgrade health probes between At and Heal: every MsgUpgrade
// pushed to an affected vehicle is nacked with a rollback-requesting
// probe-failure reason, which a rollout's health gate counts against
// its probe bound. Heal at or before At leaves the fault active for
// the rest of the run.
type ProbeFailure struct {
	At, Heal sim.Duration
	Fraction float64
}

func (p ProbeFailure) schedule(f *Fleet) {
	f.eng.Schedule(sim.Time(p.At), func() {
		members := f.sample(p.Fraction)
		f.tracef("probe failures on %d vehicles", len(members))
		for _, v := range members {
			f.m.faults++
			v.probeFail = true
		}
		if p.Heal > p.At {
			f.eng.Schedule(sim.Time(p.Heal), func() {
				f.tracef("probe failures heal")
				for _, v := range members {
					v.probeFail = false
				}
			})
		}
	})
}

// JournalFault injects a disk fault into the server's journal between
// At and Heal. DiskFull fails the next group commit with ENOSPC —
// sticky by the durability policy: the server refuses further durable
// mutations and reports degraded health until a crash-restart recovers
// the acknowledged prefix (pair it with a ServerCrash). SyncDelay adds
// latency to every fsync instead, stretching the adaptive commit
// window without losing anything; it heals cleanly at Heal. Forces a
// journaled server.
type JournalFault struct {
	At, Heal sim.Duration
	DiskFull bool
	// SyncDelay is the added real latency per fsync while active.
	SyncDelay time.Duration
}

func (jf JournalFault) schedule(f *Fleet) {
	f.eng.Schedule(sim.Time(jf.At), func() {
		if f.srv == nil || f.srv.Journal() == nil {
			return
		}
		f.tracef("journal fault (diskFull=%v, syncDelay=%s)", jf.DiskFull, jf.SyncDelay)
		f.m.faults++
		inj := &journal.FaultInjection{}
		if jf.DiskFull {
			inj.WriteErr = func(int) error { return errors.New("write: no space left on device") }
			// Settle-side records (upgrade commits, acks) are enqueued
			// without waiting by policy, so work this incarnation reports
			// as succeeded may never reach disk: mark the generation so
			// the audit exempts its settled ops after a crash reverts them.
			f.degradedGens[f.serverGen] = true
		}
		if jf.SyncDelay > 0 {
			d := jf.SyncDelay
			inj.SyncDelay = func() time.Duration { return d }
		}
		f.srv.Journal().SetFault(inj)
		if jf.Heal > jf.At {
			f.eng.Schedule(sim.Time(jf.Heal), func() {
				if f.srv == nil || f.srv.Journal() == nil {
					return
				}
				f.tracef("journal fault heals")
				f.srv.Journal().SetFault(nil)
			})
		}
	})
}

// ServerCrash kills the server at At — the journal drops everything
// after its last group commit, exactly like a power cut — and restarts
// it from the same journal directory after RestartAfter of virtual
// downtime. Vehicles redial the recovered server on their own backoff.
type ServerCrash struct {
	At sim.Duration
	// RestartAfter is the virtual downtime before recovery (default 2s).
	RestartAfter sim.Duration
}

func (c ServerCrash) schedule(f *Fleet) {
	restart := c.RestartAfter
	if restart <= 0 {
		restart = 2 * sim.Second
	}
	f.eng.Schedule(sim.Time(c.At), func() {
		f.crashServer()
		f.eng.After(restart, f.restartServer)
	})
}

// ShardCrash kills one shard's leader at At — the journal freezes at
// its last group commit, exactly like ServerCrash — and promotes the
// shard's synchronously-replicated follower after PromoteAfter of
// virtual downtime. The shard's vehicles land on the promoted leader on
// their own backoff redials; acknowledged state survives byte for byte
// because commits ship to the replica before their durability tickets
// settle. Requires Shards > 1; the shard choice is a fixed index, so
// the fault schedule stays a pure function of the seed.
type ShardCrash struct {
	At sim.Duration
	// Shard indexes the shard to kill (0-based).
	Shard int
	// PromoteAfter is the virtual downtime before the follower is
	// promoted (default 2s).
	PromoteAfter sim.Duration
}

func (c ShardCrash) schedule(f *Fleet) {
	promote := c.PromoteAfter
	if promote <= 0 {
		promote = 2 * sim.Second
	}
	f.eng.Schedule(sim.Time(c.At), func() {
		f.crashShard(c.Shard)
		f.eng.After(promote, func() { f.promoteShard(c.Shard) })
	})
}

func (sc Scenario) withDefaults() (Scenario, error) {
	if sc.Name == "" {
		sc.Name = "custom"
	}
	if sc.Vehicles <= 0 {
		sc.Vehicles = 100
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Duration <= 0 {
		sc.Duration = 30 * sim.Second
	}
	if sc.Speedup == 0 {
		sc.Speedup = 4
	}
	if sc.ConnectWindow <= 0 {
		sc.ConnectWindow = min(sc.Duration/20, 500*sim.Millisecond)
	}
	if sc.AckMin <= 0 {
		sc.AckMin = 500 * sim.Microsecond
	}
	if sc.AckMax < sc.AckMin {
		sc.AckMax = 8 * sim.Millisecond
	}
	if sc.RealTimeLimit <= 0 {
		sc.RealTimeLimit = 10 * time.Minute
	}
	if sc.Shards > 1 {
		sc.Journal = true // replication rides the journal's commit path
	}
	for _, fa := range sc.Faults {
		if _, ok := fa.(ServerCrash); ok {
			sc.Journal = true
			if sc.Shards > 1 {
				return sc, fmt.Errorf("fleetsim: ServerCrash targets the single-server topology; use ShardCrash with Shards > 1")
			}
		}
		if _, ok := fa.(JournalFault); ok {
			sc.Journal = true
			if sc.Shards > 1 {
				return sc, fmt.Errorf("fleetsim: JournalFault targets the single-server topology")
			}
		}
		if c, ok := fa.(ShardCrash); ok {
			if sc.Shards <= 1 {
				return sc, fmt.Errorf("fleetsim: ShardCrash needs Shards > 1")
			}
			if c.Shard < 0 || c.Shard >= sc.Shards {
				return sc, fmt.Errorf("fleetsim: ShardCrash shard %d out of range (%d shards)", c.Shard, sc.Shards)
			}
		}
		if p, ok := fa.(Partition); ok && p.Heal > sc.Duration {
			return sc, fmt.Errorf("fleetsim: partition heals at %s, after the scenario window %s — the cut half would redial forever", sdur(p.Heal), sdur(sc.Duration))
		}
	}
	if len(sc.Workload) > 0 && len(sc.Apps) == 0 {
		return sc, fmt.Errorf("fleetsim: scenario %q has workload but no apps", sc.Name)
	}
	for _, w := range sc.Workload {
		if w.At > sc.Duration {
			return sc, fmt.Errorf("fleetsim: work item at t=%s is outside the scenario window %s", sdur(w.At), sdur(sc.Duration))
		}
		if (w.Kind == WorkBatchUpgrade || w.Kind == WorkRollout) && w.ToApp == "" {
			return sc, fmt.Errorf("fleetsim: %s work item needs ToApp", w.Kind)
		}
	}
	return sc, nil
}

// upgradePairs lists the (from, to) app families the workload upgrades;
// the invariant checker audits exactly-one-version per vehicle on them.
func (sc Scenario) upgradePairs() [][2]core.AppName {
	var pairs [][2]core.AppName
	for _, w := range sc.Workload {
		if w.Kind == WorkBatchUpgrade || w.Kind == WorkRollout {
			pairs = append(pairs, [2]core.AppName{w.App, w.ToApp})
		}
	}
	return pairs
}

// Presets names the built-in scenarios, in rough order of violence.
func Presets() []string { return []string{"soak", "churn", "rollout", "storm"} }

// Preset builds a named built-in scenario. vehicles, seed and duration
// override the preset defaults when non-zero.
func Preset(name string, vehicles int, seed int64, duration sim.Duration) (Scenario, error) {
	apps, err := FleetApps()
	if err != nil {
		return Scenario{}, err
	}
	switch name {
	case "soak":
		// Steady-state health on the federated topology: three shards
		// replicating synchronously (the bench baseline carries the
		// replication overhead), light churn and a few stragglers under a
		// deploy → upgrade → widget → uninstall lifecycle.
		sc := Scenario{Name: name, Vehicles: 500, Seed: seed, Duration: 30 * sim.Second, Apps: apps, Shards: 3}
		applyOverrides(&sc, vehicles, duration)
		d := sc.Duration
		sc.Workload = []WorkItem{
			{At: d / 20, Kind: WorkBatchDeploy, App: AppV1},
			{At: d * 2 / 5, Kind: WorkBatchUpgrade, App: AppV1, ToApp: AppV2},
			{At: d * 13 / 20, Kind: WorkDeploy, App: AppWidget, Fraction: 0.05, Group: "widget"},
			// A progressive canary rollout back to V1; the loose gate
			// tolerates churn casualties so the waves usually promote.
			{At: d * 7 / 10, Kind: WorkRollout, App: AppV2, ToApp: AppV1,
				Health: &api.RolloutHealthPolicy{MaxFailureRate: 0.2, MaxProbeFailures: 2}},
			{At: d * 17 / 20, Kind: WorkBatchUninstall, App: AppWidget, Group: "widget"},
		}
		sc.Faults = []Fault{
			SlowAcks{Fraction: 0.01, Min: 50 * sim.Millisecond, Max: 400 * sim.Millisecond},
			Churn{Start: d / 10, Stop: d * 9 / 10, Every: d / 100},
		}
		return sc, nil
	case "churn":
		// Connectivity stress: aggressive link churn plus a partition
		// landing on a fleet-wide deploy.
		sc := Scenario{Name: name, Vehicles: 1000, Seed: seed, Duration: 20 * sim.Second, Apps: apps}
		applyOverrides(&sc, vehicles, duration)
		d := sc.Duration
		sc.Workload = []WorkItem{
			{At: d / 10, Kind: WorkBatchDeploy, App: AppV1},
		}
		sc.Faults = []Fault{
			Churn{Start: d / 20, Stop: d * 19 / 20, Every: d / 500},
			Partition{At: d / 8, Heal: d / 2, Fraction: 0.1},
		}
		return sc, nil
	case "rollout":
		// Progressive-delivery chaos: a healthy rollout promotes wave by
		// wave under link churn, then a probe-failure window poisons a
		// second rollout, whose gate must stop it at the canary wave and
		// roll the fleet back to the known-good version.
		sc := Scenario{Name: name, Vehicles: 600, Seed: seed, Duration: 24 * sim.Second, Apps: apps}
		applyOverrides(&sc, vehicles, duration)
		d := sc.Duration
		sc.Workload = []WorkItem{
			{At: d / 12, Kind: WorkBatchDeploy, App: AppV1},
			{At: d * 3 / 10, Kind: WorkRollout, App: AppV1, ToApp: AppV2,
				Health: &api.RolloutHealthPolicy{MaxFailureRate: 0.25, MaxProbeFailures: 2}},
			// The strict zero policy: a single probe nack trips wave 1.
			{At: d * 7 / 10, Kind: WorkRollout, App: AppV2, ToApp: AppV1},
		}
		sc.Faults = []Fault{
			SlowAcks{Fraction: 0.01, Min: 20 * sim.Millisecond, Max: 200 * sim.Millisecond},
			Churn{Start: d / 10, Stop: d / 2, Every: d / 60},
			ProbeFailure{At: d * 13 / 20, Fraction: 1},
		}
		return sc, nil
	case "storm":
		// Everything at once on the federated topology: churn, corrupt
		// buses going bus-off, a partition landing mid-upgrade, vehicle
		// reboots and a shard leader killed mid-batch with its follower
		// promoted, stragglers dragging every batch out.
		sc := Scenario{Name: name, Vehicles: 10000, Seed: seed, Duration: 45 * sim.Second, Apps: apps, Shards: 3}
		applyOverrides(&sc, vehicles, duration)
		d := sc.Duration
		sc.Workload = []WorkItem{
			{At: d / 20, Kind: WorkBatchDeploy, App: AppV1},
			{At: d / 4, Kind: WorkDeploy, App: AppWidget, Fraction: 0.02, Group: "widget"},
			{At: d * 2 / 5, Kind: WorkBatchUpgrade, App: AppV1, ToApp: AppV2},
			{At: d * 4 / 5, Kind: WorkBatchUninstall, App: AppWidget, Group: "widget"},
		}
		sc.Faults = []Fault{
			SlowAcks{Fraction: 0.02, Min: 100 * sim.Millisecond, Max: 1200 * sim.Millisecond},
			Churn{Start: d / 25, Stop: d * 23 / 25, Every: d / 400},
			BusFault{At: d * 3 / 10, Heal: d / 2, Fraction: 0.05, BusOff: true},
			Partition{At: d * 11 / 25, Heal: d * 3 / 5, Fraction: 0.2},
			VehicleCrash{At: d * 27 / 50, Fraction: 0.1},
			ShardCrash{At: d * 7 / 10, Shard: 1, PromoteAfter: 2 * sim.Second},
		}
		return sc, nil
	}
	return Scenario{}, fmt.Errorf("fleetsim: unknown scenario %q (have %v)", name, Presets())
}

func applyOverrides(sc *Scenario, vehicles int, duration sim.Duration) {
	if vehicles > 0 {
		sc.Vehicles = vehicles
	}
	if duration > 0 {
		sc.Duration = duration
	}
}
