// Package fleetsim runs fleet-scale chaos scenarios against the real
// deployment server: thousands of lightweight protocol-level vehicles
// in one process, a declarative fault catalogue (link churn, network
// partitions, CAN bus faults, vehicle reboots, server crash-restart
// with journal recovery), an invariant checker that audits server
// state against every vehicle's flash, and a measurement layer that
// reports throughput and latency percentiles (BENCH_FLEET.json).
//
// Time is split in two: faults, vehicle think time and reconnect
// backoff live on the discrete-event engine's virtual clock (paced
// against the wall clock so virtual fault times stay meaningful while
// the real server works), while the server itself runs its ordinary
// concurrent goroutines in real time. The pump goroutine owns the
// engine and all fleet state; vehicle readers hand arrivals back via
// sim.Engine.Inject.
package fleetsim

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/federation"
	"dynautosar/internal/server"
	"dynautosar/internal/sim"
)

// fleetUser owns every simulated vehicle and launches all workload.
const fleetUser core.UserID = "fleet-ops"

// latencySample bounds how many children of one batch are polled
// individually for the latency distribution; the rest are swept when
// the parent settles (their terminal states still feed the audit).
const latencySample = 1024

// maxViolations caps the violation list so a systemic failure doesn't
// drown the report.
const maxViolations = 64

// pollEvery and childPollEvery throttle operation polling so the
// tracker doesn't contend the server's registry lock away from the
// batch workers it is measuring.
const (
	pollEvery      = 2 * time.Millisecond
	childPollEvery = 5 * time.Millisecond
)

// trackedRollout follows one launched progressive rollout to its
// terminal state. Unlike operations, a rollout's state machine is
// write-ahead journaled, so it survives server crashes: recovery
// resumes or rolls it back, and the tracker keeps polling the same id
// across incarnations.
type trackedRollout struct {
	id     string
	launch time.Time
	// shard is the owning shard's index (-1 in single-server runs).
	shard    int
	gen      int // server incarnation it was launched against
	from, to core.AppName
	targets  []core.VehicleID
	done     bool
	lost     bool
	final    api.RolloutStatus
}

// trackedOp follows one launched operation to its terminal state.
type trackedOp struct {
	id     string
	metric string // "deploy" | "upgrade" | "uninstall"
	launch time.Time
	// shard is the owning shard's index (-1 in single-server runs).
	shard int
	gen   int // server incarnation it was launched against
	app   core.AppName
	toApp core.AppName
	// targets are the vehicles the operation addressed (for exemption
	// building when the op is lost to a crash).
	targets []core.VehicleID
	done    bool
	lost    bool
	final   api.Operation
}

// Fleet is one running scenario. All fields are pump-owned; see the
// package comment for the concurrency model.
type Fleet struct {
	sc  Scenario
	eng *sim.Engine
	// rng drives the fault/workload schedule. It is drawn from only by
	// setup code and engine events — never by injected callbacks — so
	// the schedule is a pure function of the seed.
	rng *rand.Rand

	dir    string // journal directory ("" = memory-only)
	ownDir bool
	srv    *server.Server // nil while crashed
	// serverGen bumps on every crash so links and operations can tell
	// which incarnation they belong to.
	serverGen int
	// Federated topology (Scenario.Shards > 1): srv stays nil and every
	// vehicle, operation and audit is scoped to its ring-owning shard.
	shards      []*fleetShard
	ring        *federation.Ring
	shardByName map[string]int
	// degradedGens marks server incarnations whose journal took a
	// durability fault (disk full): commit records acknowledged by that
	// incarnation may never have reached disk, so a later recovery can
	// legitimately revert work the tracker saw succeed.
	degradedGens map[int]bool
	closed       bool

	vehicles []*SimVehicle
	byID     map[core.VehicleID]*SimVehicle
	appVer   map[core.AppName]map[core.PluginName]string
	groups   map[string][]core.VehicleID

	open            map[string]*trackedOp
	openRollouts    map[string]*trackedRollout
	settledRollouts []*trackedRollout
	sampled         map[string]*trackedOp
	settledOps      []*trackedOp
	childFinal      map[string]api.Operation
	wasOpen         bool
	lastPoll        time.Time
	lastChild       time.Time

	start      time.Time
	deadline   time.Time
	m          metrics
	trace      []string
	violations []string
	logf       func(string, ...any)
}

// Result is what one scenario run produced.
type Result struct {
	Report Report
	// Trace is the deterministic fault/workload decision log: same
	// scenario, same seed, same trace — the replay contract.
	Trace []string
	// Violations lists every invariant the run broke; empty on success.
	Violations []string
}

// Run executes one scenario to quiescence and audits it. The returned
// error covers setup problems only; invariant violations are reported
// in the Result so the caller can print them with the seed.
func Run(sc Scenario, logf func(string, ...any)) (*Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sc, err := sc.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		sc:           sc,
		eng:          sim.NewEngine(),
		rng:          rand.New(rand.NewSource(sc.Seed)),
		byID:         make(map[core.VehicleID]*SimVehicle),
		appVer:       make(map[core.AppName]map[core.PluginName]string),
		groups:       make(map[string][]core.VehicleID),
		open:         make(map[string]*trackedOp),
		openRollouts: make(map[string]*trackedRollout),
		degradedGens: make(map[int]bool),
		sampled:      make(map[string]*trackedOp),
		childFinal:   make(map[string]api.Operation),
		logf:         logf,
	}
	if err := f.setup(); err != nil {
		f.shutdown()
		return nil, err
	}
	logf("fleetsim: scenario %q seed %d: %d vehicles, %s virtual window",
		sc.Name, sc.Seed, sc.Vehicles, sdur(sc.Duration))
	f.schedule()
	f.pump()
	f.audit("final")
	rep := f.report()
	f.shutdown()
	return &Result{Report: rep, Trace: f.trace, Violations: f.violations}, nil
}

func (f *Fleet) setup() error {
	if f.sc.Shards > 1 {
		return f.setupShards()
	}
	if f.sc.Journal {
		dir := f.sc.DataDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "fleetsim-journal-")
			if err != nil {
				return err
			}
			f.ownDir = true
		}
		f.dir = dir
	}
	srv := server.New()
	if f.dir != "" {
		if err := srv.OpenJournal(f.dir); err != nil {
			return err
		}
	}
	f.srv = srv
	cl := api.NewLocalClient(srv.Service())
	ctx := context.Background()
	if _, err := cl.CreateUser(ctx, api.CreateUserRequest{ID: fleetUser}); err != nil {
		return err
	}
	for _, app := range f.sc.Apps {
		if _, err := cl.UploadApp(ctx, app); err != nil {
			return fmt.Errorf("upload %s: %w", app.Name, err)
		}
		vers := make(map[core.PluginName]string, len(app.Binaries))
		for _, b := range app.Binaries {
			vers[b.Manifest.Name] = b.Manifest.Version
		}
		f.appVer[app.Name] = vers
	}
	for i := 0; i < f.sc.Vehicles; i++ {
		id := core.VehicleID(fmt.Sprintf("VIN-F-%05d", i))
		if _, err := cl.BindVehicle(ctx, api.BindVehicleRequest{Owner: fleetUser, Conf: fleetConf(id)}); err != nil {
			return fmt.Errorf("bind %s: %w", id, err)
		}
		v := newSimVehicle(f, i, id)
		f.vehicles = append(f.vehicles, v)
		f.byID[id] = v
	}
	return nil
}

// schedule lays the whole deterministic timeline onto the engine:
// staggered initial connects, then faults, then workload. RNG draw
// order is fixed by this sequence.
func (f *Fleet) schedule() {
	window := int64(f.sc.ConnectWindow)
	for _, v := range f.vehicles {
		f.eng.Schedule(sim.Time(f.rng.Int63n(window+1)), v.connect)
	}
	for _, fa := range f.sc.Faults {
		fa.schedule(f)
	}
	for _, w := range f.sc.Workload {
		targets := f.workTargets(w)
		w := w
		f.eng.Schedule(sim.Time(w.At), func() { f.launch(w, targets) })
	}
}

// workTargets resolves a work item's vehicle sample at schedule time,
// so the choice is part of the deterministic timeline even when the
// launch itself is skipped (server down).
func (f *Fleet) workTargets(w WorkItem) []core.VehicleID {
	if w.Group != "" {
		if ids, ok := f.groups[w.Group]; ok {
			return ids
		}
	}
	var ids []core.VehicleID
	if w.Fraction <= 0 || w.Fraction >= 1 {
		ids = make([]core.VehicleID, len(f.vehicles))
		for i, v := range f.vehicles {
			ids[i] = v.ID
		}
	} else {
		for _, v := range f.sample(w.Fraction) {
			ids = append(ids, v.ID)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	if w.Group != "" {
		f.groups[w.Group] = ids
	}
	return ids
}

// sample draws fraction of the fleet without replacement from the
// schedule RNG (at least one vehicle).
func (f *Fleet) sample(fraction float64) []*SimVehicle {
	n := len(f.vehicles)
	k := int(fraction*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]*SimVehicle, 0, k)
	for _, idx := range f.rng.Perm(n)[:k] {
		out = append(out, f.vehicles[idx])
	}
	return out
}

func (f *Fleet) launch(w WorkItem, targets []core.VehicleID) {
	if f.multi() {
		// Federated topology: one launch per owning shard, in shard
		// order, so each shard's registry sees a self-contained batch
		// whose children match its own vehicles (the per-shard I2 audit).
		for idx, part := range f.partitionTargets(targets) {
			if len(part) == 0 {
				continue
			}
			f.launchOn(idx, w, part)
		}
		return
	}
	f.launchOn(-1, w, targets)
}

// launchOn issues one work item against shard idx (-1 = the
// single-server topology); a down shard skips its portion exactly like
// a down single server does.
func (f *Fleet) launchOn(idx int, w WorkItem, targets []core.VehicleID) {
	srv := f.serverAt(idx)
	if srv == nil {
		f.m.launchesSkipped++
		f.tracef("launch %s %s skipped: server down", w.Kind, w.App)
		return
	}
	cl := api.NewLocalClient(srv.Service())
	ctx := context.Background()
	switch w.Kind {
	case WorkDeploy:
		f.tracef("launch %d single deploys of %s", len(targets), w.App)
		for _, id := range targets {
			op, err := cl.Deploy(ctx, api.DeployRequest{User: fleetUser, Vehicle: id, App: w.App})
			if err != nil {
				f.violationf("deploy %s on %s refused: %v", w.App, id, err)
				continue
			}
			f.track(op, "deploy", idx)
		}
		return
	case WorkBatchDeploy:
		op, err := cl.BatchDeploy(ctx, api.BatchDeployRequest{User: fleetUser, Vehicles: targets, App: w.App})
		f.finishLaunch(idx, w, op, err, "deploy")
	case WorkBatchUpgrade:
		op, err := cl.BatchUpgrade(ctx, api.BatchUpgradeRequest{User: fleetUser, Vehicles: targets, From: w.App, To: w.ToApp})
		f.finishLaunch(idx, w, op, err, "upgrade")
	case WorkBatchUninstall:
		op, err := cl.BatchUninstall(ctx, api.BatchUninstallRequest{User: fleetUser, Vehicles: targets, App: w.App})
		f.finishLaunch(idx, w, op, err, "uninstall")
	case WorkRollout:
		st, err := cl.StartRollout(ctx, api.RolloutRequest{
			User: fleetUser, Vehicles: targets,
			From: w.App, To: w.ToApp,
			Waves: w.Waves, Health: w.Health,
		})
		if err != nil {
			f.violationf("launch %s %s -> %s refused: %v", w.Kind, w.App, w.ToApp, err)
			return
		}
		f.tracef("launch rollout %s -> %s over %d vehicles in %d waves", w.App, w.ToApp, len(st.Vehicles), len(st.Waves))
		f.logf("fleetsim: t=%s launched rollout %s -> %s (%s, %d vehicles, %d waves)",
			f.vt(), w.App, w.ToApp, st.ID, len(st.Vehicles), len(st.Waves))
		f.openRollouts[f.qkey(idx, st.ID)] = &trackedRollout{
			id: st.ID, launch: time.Now(), shard: idx, gen: f.genAt(idx),
			from: st.From, to: st.To,
			targets: append([]core.VehicleID(nil), st.Vehicles...),
		}
		f.wasOpen = true
		f.m.launched++
	default:
		f.violationf("unknown work kind %q", w.Kind)
	}
}

// openWork counts everything the pump still waits on: launched
// operations and progressive rollouts that have not reached a terminal
// state.
func (f *Fleet) openWork() int {
	return len(f.open) + len(f.openRollouts)
}

func (f *Fleet) finishLaunch(idx int, w WorkItem, op api.Operation, err error, metric string) {
	if err != nil {
		f.violationf("launch %s %s refused: %v", w.Kind, w.App, err)
		return
	}
	f.tracef("launch %s %s -> %s over %d vehicles", w.Kind, w.App, f.qkey(idx, op.ID), len(op.Vehicles))
	f.logf("fleetsim: t=%s launched %s %s (%s, %d vehicles)", f.vt(), w.Kind, w.App, f.qkey(idx, op.ID), len(op.Vehicles))
	f.track(op, metric, idx)
}

// track registers a launched operation and a latency sample of its
// batch children. Map keys are shard-qualified: operation ids are only
// unique within one shard's registry.
func (f *Fleet) track(op api.Operation, metric string, idx int) {
	t := &trackedOp{
		id: op.ID, metric: metric, launch: time.Now(), shard: idx, gen: f.genAt(idx),
		app: op.App, toApp: op.ToApp,
	}
	if len(op.Vehicles) > 0 {
		t.targets = op.Vehicles
	} else if op.Vehicle != "" {
		t.targets = []core.VehicleID{op.Vehicle}
	}
	f.open[f.qkey(idx, op.ID)] = t
	f.wasOpen = true
	f.m.launched++
	if n := len(op.Children); n > 0 {
		stride := 1
		if n > latencySample {
			stride = (n + latencySample - 1) / latencySample
		}
		for i := 0; i < n; i += stride {
			f.sampled[f.qkey(idx, op.Children[i])] = &trackedOp{id: op.Children[i], metric: metric, launch: t.launch, shard: idx, gen: t.gen}
		}
	}
}

// poll advances the operation tracker: settles tracked parents and
// singles, samples child latencies, and fires the quiescence audit
// when the last open operation settles.
func (f *Fleet) poll() {
	if !f.multi() && f.srv == nil {
		return
	}
	now := time.Now()
	if now.Sub(f.lastPoll) < pollEvery {
		return
	}
	f.lastPoll = now
	for key, t := range f.open {
		srv := f.serverAt(t.shard)
		if srv == nil {
			continue // shard down; the promoted journal resolves it
		}
		op, ok := srv.Operation(t.id)
		switch {
		case !ok && t.gen < f.genAt(t.shard):
			// Created against a previous incarnation and never journaled
			// before the crash: lost with the process, like work accepted
			// by a dying server. Its side effects are exempted, not
			// forgotten — see exemptions().
			t.done, t.lost = true, true
			f.m.lostOps++
		case !ok:
			f.violationf("operation %s vanished from the registry before settling", key)
			t.done = true
		case op.Done:
			t.done, t.final = true, op
			f.settleParent(t, op, now)
		default:
			continue
		}
		delete(f.open, key)
		f.settledOps = append(f.settledOps, t)
	}
	if now.Sub(f.lastChild) >= childPollEvery {
		f.lastChild = now
		for key, t := range f.sampled {
			srv := f.serverAt(t.shard)
			if srv == nil {
				continue
			}
			op, ok := srv.Operation(t.id)
			if !ok {
				delete(f.sampled, key)
				continue
			}
			if op.Done {
				f.m.lat(t.metric).record(now.Sub(t.launch))
				delete(f.sampled, key)
			}
		}
	}
	f.pollRollouts(now)
	if f.wasOpen && f.openWork() == 0 {
		f.wasOpen = false
		f.audit("quiescent")
	}
}

// pollRollouts settles tracked rollouts. A rollout is write-ahead
// journaled before its first wave launches, so unlike plain operations
// it must survive a crash-restart: vanishing from a journaled server's
// registry is a violation, and "lost" only applies to memory-only runs.
func (f *Fleet) pollRollouts(now time.Time) {
	for key, t := range f.openRollouts {
		srv := f.serverAt(t.shard)
		if srv == nil {
			continue // shard down; the promoted journal resumes it
		}
		st, ok := srv.Rollout(t.id)
		switch {
		case !ok && t.gen < f.genAt(t.shard) && f.dir == "":
			t.done, t.lost = true, true
			f.m.rolloutsLost++
		case !ok:
			f.violationf("rollout %s vanished from the registry before settling", key)
			t.done = true
		case st.Done:
			t.done, t.final = true, st
			f.settleRollout(t, st, now)
		default:
			continue
		}
		delete(f.openRollouts, key)
		f.settledRollouts = append(f.settledRollouts, t)
	}
}

// settleRollout records a terminal rollout: whole-rollout latency, the
// promoted-wave tally, and every wave's forward and rollback batch
// operation harvested into the audit's settled set.
func (f *Fleet) settleRollout(t *trackedRollout, st api.RolloutStatus, now time.Time) {
	f.m.settled++
	f.m.rolloutsSettled++
	f.m.rollout.record(now.Sub(t.launch))
	reason := ""
	if st.State == api.RolloutRolledBack {
		f.m.rolloutsRolledBack++
		reason = ": " + st.GateReason
	}
	for _, ws := range st.Waves {
		if ws.Promoted {
			f.m.wavesPromoted++
		}
		f.harvestRolloutOp(t.shard, ws.BatchOp)
		f.harvestRolloutOp(t.shard, ws.RollbackOp)
	}
	f.logf("fleetsim: t=%s rollout %s settled %s%s", f.vt(), st.ID, st.State, reason)
}

// harvestRolloutOp pulls one wave's batch operation into the settled
// set so the I2 accounting audit covers it and its failed children feed
// the exemption allowance. Waves run server-side, so an id from an
// incarnation that died mid-wave may legitimately be gone.
func (f *Fleet) harvestRolloutOp(idx int, id string) {
	srv := f.serverAt(idx)
	if id == "" || srv == nil {
		return
	}
	op, ok := srv.Operation(id)
	if !ok || !op.Done {
		return
	}
	t := &trackedOp{
		id: id, metric: "upgrade", shard: idx, gen: f.genAt(idx),
		app: op.App, toApp: op.ToApp, targets: op.Vehicles,
		done: true, final: op,
	}
	f.settledOps = append(f.settledOps, t)
	for _, cid := range op.Children {
		if cop, ok := srv.Operation(cid); ok {
			f.childFinal[f.qkey(idx, cid)] = cop
		}
	}
}

// settleParent records a terminal operation and sweeps its children:
// once the parent is done every child is terminal, so one pass pins
// their final states for the audit (and flushes remaining latency
// samples).
func (f *Fleet) settleParent(t *trackedOp, op api.Operation, now time.Time) {
	f.m.settled++
	if len(op.Children) == 0 {
		f.m.lat(t.metric).record(now.Sub(t.launch))
		return
	}
	srv := f.serverAt(t.shard)
	for _, cid := range op.Children {
		key := f.qkey(t.shard, cid)
		if st, ok := f.sampled[key]; ok {
			f.m.lat(st.metric).record(now.Sub(st.launch))
			delete(f.sampled, key)
		}
		if cop, ok := srv.Operation(cid); ok {
			f.childFinal[key] = cop
		} else {
			f.violationf("batch %s child %s missing at parent settle", op.ID, cid)
		}
	}
}

// pump is the run's main loop: it interleaves virtual events with the
// real server's concurrent progress. Virtual time is paced against the
// wall clock inside the scenario window; past the window it only keeps
// stepping to let launched work (backoff redials, straggler acks)
// drain to quiescence.
func (f *Fleet) pump() {
	endT := sim.Time(f.sc.Duration)
	f.start = time.Now()
	f.deadline = f.start.Add(f.sc.RealTimeLimit)
	for {
		if f.eng.AwaitInjected(0) {
			f.poll()
			continue
		}
		f.poll()
		now := f.eng.Now()
		if f.openWork() == 0 && now >= endT {
			return
		}
		if time.Now().After(f.deadline) {
			f.violationf("real-time limit %s exceeded with %d operations and %d rollouts unsettled",
				f.sc.RealTimeLimit, len(f.open), len(f.openRollouts))
			return
		}
		at, ok := f.eng.Next()
		switch {
		case ok && (at <= endT || f.openWork() > 0):
			if now < endT && !f.paced(at) {
				continue // waited out pacing or handled injected work
			}
			f.eng.Step()
		case now < endT:
			// Nothing due: fast-forward the clock as far as pacing
			// allows, or wait for real handoffs.
			target := endT
			if limit := f.paceLimit(); limit < target {
				target = limit
			}
			if target > now {
				f.eng.RunUntil(target)
			} else {
				f.eng.AwaitInjected(200 * time.Microsecond)
			}
		default:
			// Virtual window over, operations still settling in real
			// goroutines.
			f.eng.AwaitInjected(200 * time.Microsecond)
		}
	}
}

// paceLimit is how far the virtual clock may run given elapsed wall
// time and the scenario speedup.
func (f *Fleet) paceLimit() sim.Time {
	if f.sc.Speedup < 0 {
		return sim.End
	}
	return sim.Time(time.Since(f.start).Microseconds() * int64(f.sc.Speedup))
}

// paced reports whether the event at `at` may fire now; if not it
// waits a bounded slice of real time (serving injected work while it
// does) and returns false so the caller re-evaluates.
func (f *Fleet) paced(at sim.Time) bool {
	limit := f.paceLimit()
	if at <= limit {
		return true
	}
	wait := time.Duration(int64(at-limit)) * time.Microsecond / time.Duration(f.sc.Speedup)
	if wait > 2*time.Millisecond {
		wait = 2 * time.Millisecond
	}
	f.eng.AwaitInjected(wait)
	return false
}

// crashServer kills the current server incarnation: the journal stops
// cold at its last group commit and every vehicle link collapses.
func (f *Fleet) crashServer() {
	if f.srv == nil {
		return
	}
	f.tracef("server crash")
	f.logf("fleetsim: t=%s server crash (gen %d)", f.vt(), f.serverGen)
	f.m.serverCrashes++
	old := f.srv
	oldGen := f.serverGen
	f.srv = nil
	f.serverGen++
	if jn := old.Journal(); jn != nil {
		jn.Crash()
	}
	old.Pusher().CloseAll()
	// Sweep links that were dialling into the dying pusher and missed
	// CloseAll (hello not yet registered).
	for _, v := range f.vehicles {
		if v.conn != nil && v.srvGen == oldGen {
			v.dropLink()
		}
	}
}

// restartServer brings a fresh incarnation up from the journal
// directory; vehicles find it on their own backoff redials.
func (f *Fleet) restartServer() {
	if f.closed || f.srv != nil || f.multi() {
		return
	}
	srv := server.New()
	if err := srv.OpenJournal(f.dir); err != nil {
		f.violationf("server restart failed: %v", err)
		return
	}
	h := srv.Health()
	f.m.recoveredRecords += h.RecoveredRecords
	f.m.interruptedOps += h.InterruptedOperations
	f.srv = srv
	f.tracef("server restart")
	f.logf("fleetsim: t=%s server restarted (gen %d, %d records recovered, %d operations interrupted)",
		f.vt(), f.serverGen, h.RecoveredRecords, h.InterruptedOperations)
}

// shutdown tears the run down: closes every link, drains the reader
// goroutines' final injections, and closes the server.
func (f *Fleet) shutdown() {
	f.closed = true
	for _, v := range f.vehicles {
		if v.conn != nil {
			v.conn.Close()
			v.conn = nil
		}
	}
	// Readers inject one link-down each on exit; drain until quiet so
	// no goroutine is left blocked on the engine's channel.
	for f.eng.AwaitInjected(5 * time.Millisecond) {
	}
	if f.srv != nil {
		f.srv.Close()
		f.srv = nil
	}
	f.shutdownShards()
	if f.ownDir && f.dir != "" {
		os.RemoveAll(f.dir)
	}
}

// vt formats the current virtual time for logs and traces.
func (f *Fleet) vt() string {
	return fmt.Sprintf("%.3fs", float64(f.eng.Now())/float64(sim.Second))
}

func (f *Fleet) tracef(format string, args ...any) {
	f.trace = append(f.trace, "t="+f.vt()+" "+fmt.Sprintf(format, args...))
}

func (f *Fleet) violationf(format string, args ...any) {
	if len(f.violations) >= maxViolations {
		return
	}
	msg := fmt.Sprintf(format, args...)
	f.violations = append(f.violations, msg)
	f.logf("fleetsim: VIOLATION (seed %d): %s", f.sc.Seed, msg)
}
