package fleetsim

import (
	"fmt"

	"dynautosar/internal/api"
	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/vehicle"
	"dynautosar/internal/vm"
)

// App names used by the built-in scenarios. FleetNav is the versioned
// upgradeable family (same plug-in and port names across versions, so
// an upgrade reuses the installed port ids); Widget is a small
// independent app for single-vehicle deploy/uninstall traffic.
const (
	AppV1     core.AppName = "FleetNav-1"
	AppV2     core.AppName = "FleetNav-2"
	AppWidget core.AppName = "Widget-1"
)

// FleetApps builds the apps the preset scenarios deploy: FleetNav
// v1/v2 (two plug-ins spanning both model-car SW-Cs) and Widget.
func FleetApps() ([]api.App, error) {
	v1, err := fleetNav("1.0", false)
	if err != nil {
		return nil, err
	}
	v2, err := fleetNav("2.0", true)
	if err != nil {
		return nil, err
	}
	widget, err := widgetApp()
	if err != nil {
		return nil, err
	}
	v1.Name, v2.Name = AppV1, AppV2
	return []api.App{v1, v2, widget}, nil
}

// fleetNav assembles the two FleetNav plug-ins at a version. v2 gains
// an extra port on the planner, exercising fresh port-id allocation
// inside an upgrade.
func fleetNav(version string, extraPort bool) (api.App, error) {
	sensor := fmt.Sprintf(".plugin NavSensor %s\n.port poll required\n.port fix provided\non_message poll:\n\tRET\n", version)
	extra := ""
	if extraPort {
		extra = ".port diag provided\n"
	}
	planner := fmt.Sprintf(".plugin NavPlanner %s\n.port fix required\n.port route provided\n%son_message fix:\n\tRET\n", version, extra)
	sBin, err := assemble(sensor)
	if err != nil {
		return api.App{}, err
	}
	pBin, err := assemble(planner)
	if err != nil {
		return api.App{}, err
	}
	return api.App{
		Binaries: []plugin.Binary{sBin, pBin},
		Confs: []api.SWConf{{Model: "modelcar-v1", Deployments: []api.Deployment{
			{Plugin: "NavSensor", ECU: vehicle.ECU1, SWC: vehicle.SWC1},
			{Plugin: "NavPlanner", ECU: vehicle.ECU2, SWC: vehicle.SWC2},
		}}},
	}, nil
}

func widgetApp() (api.App, error) {
	bin, err := assemble(".plugin Widget 1.0\n.port tick required\n.port tock provided\non_message tick:\n\tRET\n")
	if err != nil {
		return api.App{}, err
	}
	return api.App{
		Name:     AppWidget,
		Binaries: []plugin.Binary{bin},
		Confs: []api.SWConf{{Model: "modelcar-v1", Deployments: []api.Deployment{
			{Plugin: "Widget", ECU: vehicle.ECU2, SWC: vehicle.SWC2},
		}}},
	}, nil
}

func assemble(src string) (plugin.Binary, error) {
	prog, err := vm.Assemble(src)
	if err != nil {
		return plugin.Binary{}, err
	}
	return plugin.FromProgram(prog, plugin.Manifest{Developer: "fleetsim"})
}

// fleetConf is the model-car vehicle configuration every simulated
// vehicle registers with (the same shape cmd/vehicle emits).
func fleetConf(id core.VehicleID) core.VehicleConf {
	ecmCfg := vehicle.ECMConfig()
	swc2Cfg := vehicle.SWC2Config()
	return core.VehicleConf{
		Vehicle: id,
		Model:   "modelcar-v1",
		SWCs: []core.SWCConf{
			{ECU: vehicle.ECU1, SWC: vehicle.SWC1, MemoryQuota: ecmCfg.MemoryQuota,
				MaxPlugins: ecmCfg.MaxPlugins, ECM: true, VirtualPorts: ecmCfg.VirtualPorts},
			{ECU: vehicle.ECU2, SWC: vehicle.SWC2, MemoryQuota: swc2Cfg.MemoryQuota,
				MaxPlugins: swc2Cfg.MaxPlugins, VirtualPorts: swc2Cfg.VirtualPorts},
		},
	}
}
