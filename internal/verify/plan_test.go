package verify_test

import (
	"errors"
	"strings"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/verify"
)

// The fixture vehicle: two plug-in SW-Cs, each with a type II mux
// virtual port (V0) for cross-SW-C links, and E1/S1 additionally with a
// type III provided port (V3) and required port (V4) for BSW links.
func testConf() core.VehicleConf {
	return core.VehicleConf{
		Vehicle: "VIN-TEST",
		SWCs: []core.SWCConf{
			{ECU: "E1", SWC: "S1", VirtualPorts: []core.VirtualPortSpec{
				{ID: 0, Type: core.TypeII, Direction: core.Provided, Name: "Mux"},
				{ID: 3, Type: core.TypeIII, Direction: core.Provided, Name: "Out"},
				{ID: 4, Type: core.TypeIII, Direction: core.Required, Name: "In"},
			}},
			{ECU: "E2", SWC: "S2", VirtualPorts: []core.VirtualPortSpec{
				{ID: 0, Type: core.TypeII, Direction: core.Required, Name: "Mux"},
			}},
		},
	}
}

func expectPlanErr(t *testing.T, err error, invariant string) *verify.PlanError {
	t.Helper()
	if err == nil {
		t.Fatalf("plan accepted, want %s violation", invariant)
	}
	var pe *verify.PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *PlanError", err, err)
	}
	if pe.Invariant != invariant {
		t.Fatalf("violated %s (%v), want %s", pe.Invariant, pe, invariant)
	}
	return pe
}

// TestPlanLinkCompatVirtualDirection: a provided plug-in port linked to
// a required-direction virtual port is a direction mismatch.
func TestPlanLinkCompatVirtualDirection(t *testing.T) {
	a := &verify.PluginState{
		Plugin: "A", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkVirtual, Plugin: 1, Virtual: 4}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepInstall, Plugin: "A", New: a}},
	})
	pe := expectPlanErr(t, err, verify.InvLinkCompat)
	if pe.Step != "install A on E1/S1" {
		t.Errorf("counterexample step = %q", pe.Step)
	}
	if len(pe.Path) != 1 || pe.Path[0] != pe.Step {
		t.Errorf("counterexample path = %v, want [%q]", pe.Path, pe.Step)
	}
}

// TestPlanLinkCompatMuxType: a remote link must go through a type II
// mux virtual port; a type III port cannot carry the recipient id.
func TestPlanLinkCompatMuxType(t *testing.T) {
	a := &verify.PluginState{
		Plugin: "A", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkVirtualRemote, Plugin: 1, Virtual: 3, Remote: 5}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepInstall, Plugin: "A", New: a}},
	})
	pe := expectPlanErr(t, err, verify.InvLinkCompat)
	if !strings.Contains(pe.Detail, "type II") {
		t.Errorf("detail %q does not name the mux type", pe.Detail)
	}
}

// TestPlanOrphanRemotePort: a remote link whose recipient port id no
// live (or scheduled) plug-in owns is an orphan.
func TestPlanOrphanRemotePort(t *testing.T) {
	a := &verify.PluginState{
		Plugin: "A", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkVirtualRemote, Plugin: 1, Virtual: 0, Remote: 5}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepInstall, Plugin: "A", New: a}},
	})
	pe := expectPlanErr(t, err, verify.InvOrphan)
	if !strings.Contains(pe.Detail, "remote port") {
		t.Errorf("detail %q does not name the remote port", pe.Detail)
	}
}

// TestPlanOrphanRequires: removing a plug-in that a surviving installed
// plug-in depends on leaves an orphaned manifest dependency.
func TestPlanOrphanRequires(t *testing.T) {
	lib := verify.PluginState{
		Plugin: "Lib", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "api", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "api", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 1}},
	}
	app := verify.PluginState{
		Plugin: "App", ECU: "E1", SWC: "S1",
		Ports:    []core.PluginPortSpec{{Name: "use", Direction: core.Required}},
		PIC:      core.PIC{{Name: "use", ID: 2}},
		PLC:      core.PLC{{Kind: core.LinkNone, Plugin: 2}},
		Requires: []core.PluginName{"Lib"},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanUninstall, Vehicle: "VIN-TEST", Conf: testConf(),
		Installed: []verify.PluginState{app},
		Steps:     []verify.Step{{Kind: verify.StepRemove, Plugin: "Lib", Old: &lib}},
	})
	pe := expectPlanErr(t, err, verify.InvOrphan)
	if !strings.Contains(pe.Detail, "requires") {
		t.Errorf("detail %q does not name the dependency", pe.Detail)
	}
	if pe.Step != "remove Lib from E1/S1" {
		t.Errorf("counterexample step = %q", pe.Step)
	}
}

// TestPlanPortCollisionLive: two different plug-ins claiming the same
// port id within one SW-C collide.
func TestPlanPortCollisionLive(t *testing.T) {
	x := verify.PluginState{
		Plugin: "X", ECU: "E1", SWC: "S1",
		PIC: core.PIC{{Name: "a", ID: 1}},
	}
	y := &verify.PluginState{
		Plugin: "Y", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "b", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "b", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 1}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Installed: []verify.PluginState{x},
		Steps:     []verify.Step{{Kind: verify.StepInstall, Plugin: "Y", New: y}},
	})
	pe := expectPlanErr(t, err, verify.InvPortCollision)
	if !strings.Contains(pe.Detail, "X") || !strings.Contains(pe.Detail, "Y") {
		t.Errorf("detail %q does not name both claimants", pe.Detail)
	}
}

// TestPlanPortCollisionReservation: a concurrent upgrade's port
// reservation blocks a deploy claiming the same id.
func TestPlanPortCollisionReservation(t *testing.T) {
	y := &verify.PluginState{
		Plugin: "Y", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "b", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "b", ID: 2}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 2}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Reserved: []verify.PortReservation{
			{ECU: "E1", SWC: "S1", Owner: "Z", IDs: []core.PluginPortID{2}},
		},
		Steps: []verify.Step{{Kind: verify.StepInstall, Plugin: "Y", New: y}},
	})
	pe := expectPlanErr(t, err, verify.InvPortCollision)
	if !strings.Contains(pe.Detail, "reservation") {
		t.Errorf("detail %q does not name the reservation", pe.Detail)
	}
}

// bigInDegree builds a plug-in with n required LinkNone ports — n
// inbound feeds that would pile into the quiesce buffer during a swap.
func bigInDegree(name core.PluginName, n int) *verify.PluginState {
	s := &verify.PluginState{Plugin: name, ECU: "E1", SWC: "S1"}
	for i := 0; i < n; i++ {
		pname := "p" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		s.Ports = append(s.Ports, core.PluginPortSpec{Name: pname, Direction: core.Required})
		s.PIC = append(s.PIC, core.PICEntry{Name: pname, ID: core.PluginPortID(i + 1)})
		s.PLC = append(s.PLC, core.PLCEntry{Kind: core.LinkNone, Plugin: core.PluginPortID(i + 1)})
	}
	return s
}

// TestPlanQuiesceBound: swapping a plug-in whose inbound link degree
// exceeds MaxQuiesceInDegree is rejected; at the bound it is accepted.
func TestPlanQuiesceBound(t *testing.T) {
	newState := func() *verify.PluginState {
		return &verify.PluginState{
			Plugin: "Big", ECU: "E1", SWC: "S1",
			Ports: []core.PluginPortSpec{{Name: "out", Direction: core.Provided}},
			PIC:   core.PIC{{Name: "out", ID: 100}},
			PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 100}},
		}
	}
	over := &verify.Plan{
		Kind: verify.PlanUpgrade, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepSwap, Plugin: "Big",
			New: newState(), Old: bigInDegree("Big", verify.MaxQuiesceInDegree+1)}},
	}
	pe := expectPlanErr(t, verify.VerifyPlan(over), verify.InvQuiesceBound)
	if !strings.Contains(pe.Detail, "33") || pe.Step != "swap Big" {
		t.Errorf("counterexample = %v", pe)
	}

	at := &verify.Plan{
		Kind: verify.PlanUpgrade, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepSwap, Plugin: "Big",
			New: newState(), Old: bigInDegree("Big", verify.MaxQuiesceInDegree)}},
	}
	if err := verify.VerifyPlan(at); err != nil {
		t.Fatalf("swap at the quiesce bound rejected: %v", err)
	}
}

// TestPlanSafeStateSwapWithoutCompensation: a swap step with no
// compensation package has no rollback target and is structurally
// unsafe.
func TestPlanSafeStateSwapWithoutCompensation(t *testing.T) {
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanUpgrade, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepSwap, Plugin: "A",
			New: &verify.PluginState{Plugin: "A", ECU: "E1", SWC: "S1"}}},
	})
	pe := expectPlanErr(t, err, verify.InvSafeState)
	if !strings.Contains(pe.Detail, "compensation") {
		t.Errorf("detail %q does not name the missing compensation package", pe.Detail)
	}
}

// TestPlanRollbackPathChecked: an upgrade whose forward path is clean
// but whose compensation path reaches a broken intermediate state is
// rejected, with the counterexample steps labelled "rollback:".
func TestPlanRollbackPathChecked(t *testing.T) {
	// old1 peer-links to port id 7, which only new2 owns. Forward the
	// plan is clean (old1 leaves before anyone looks); rolling back both
	// swaps reaches {old1, old2}, where the link dangles.
	old1 := &verify.PluginState{
		Plugin: "P1", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkPeer, Plugin: 1, Peer: 7}},
	}
	new1 := &verify.PluginState{
		Plugin: "P1", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 1}},
	}
	old2 := &verify.PluginState{
		Plugin: "P2", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "rx", Direction: core.Required}},
		PIC:   core.PIC{{Name: "rx", ID: 8}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 8}},
	}
	new2 := &verify.PluginState{
		Plugin: "P2", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "rx", Direction: core.Required}},
		PIC:   core.PIC{{Name: "rx", ID: 7}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 7}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanUpgrade, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{
			{Kind: verify.StepSwap, Plugin: "P1", New: new1, Old: old1},
			{Kind: verify.StepSwap, Plugin: "P2", New: new2, Old: old2},
		},
	})
	pe := expectPlanErr(t, err, verify.InvOrphan)
	want := []string{"rollback: swap P2", "rollback: swap P1"}
	if len(pe.Path) != len(want) || pe.Path[0] != want[0] || pe.Path[1] != want[1] {
		t.Errorf("counterexample path = %v, want %v", pe.Path, want)
	}
}

// crossSWCPair is the paper-app shape: two plug-ins on different SW-Cs
// referencing each other's ports through the type II muxes.
func crossSWCPair() (*verify.PluginState, *verify.PluginState) {
	a := &verify.PluginState{
		Plugin: "A", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkVirtualRemote, Plugin: 1, Virtual: 0, Remote: 5}},
	}
	b := &verify.PluginState{
		Plugin: "B", ECU: "E2", SWC: "S2",
		Ports: []core.PluginPortSpec{{Name: "rx", Direction: core.Required}},
		PIC:   core.PIC{{Name: "rx", ID: 5}},
		PLC:   core.PLC{{Kind: core.LinkVirtualRemote, Plugin: 5, Virtual: 0, Remote: 1}},
	}
	return a, b
}

// TestPlanDeployForwardReferenceAccepted: InstallOrder does not order
// cross-SW-C links, so the first installed plug-in transiently links to
// one scheduled later in the same plan. That is not an orphan.
func TestPlanDeployForwardReferenceAccepted(t *testing.T) {
	a, b := crossSWCPair()
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{
			{Kind: verify.StepInstall, Plugin: "A", New: a},
			{Kind: verify.StepInstall, Plugin: "B", New: b},
		},
	})
	if err != nil {
		t.Fatalf("cross-SW-C deploy rejected: %v", err)
	}
}

// TestPlanDeployForwardReferenceDirectionStillChecked: the forward
// reference resolves against the scheduled plug-in, but its direction
// is still checked — two provided ports cannot be remote-linked.
func TestPlanDeployForwardReferenceDirectionStillChecked(t *testing.T) {
	a, b := crossSWCPair()
	b.Ports[0].Direction = core.Provided
	b.PLC = core.PLC{{Kind: core.LinkNone, Plugin: 5}}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{
			{Kind: verify.StepInstall, Plugin: "A", New: a},
			{Kind: verify.StepInstall, Plugin: "B", New: b},
		},
	})
	pe := expectPlanErr(t, err, verify.InvLinkCompat)
	if !strings.Contains(pe.Detail, "opposite directions") {
		t.Errorf("detail %q does not explain the direction rule", pe.Detail)
	}
}

// TestPlanUninstallTeardownAccepted: uninstall runs in reverse install
// order, so a plug-in scheduled for removal later may transiently hold
// a dangling link to one removed earlier. That is mid-teardown, not an
// orphan.
func TestPlanUninstallTeardownAccepted(t *testing.T) {
	a, b := crossSWCPair()
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanUninstall, Vehicle: "VIN-TEST", Conf: testConf(),
		Steps: []verify.Step{
			{Kind: verify.StepRemove, Plugin: "B", Old: b},
			{Kind: verify.StepRemove, Plugin: "A", Old: a},
		},
	})
	if err != nil {
		t.Fatalf("reverse-order uninstall rejected: %v", err)
	}
}

// TestPlanErrorFormat: the error string carries the invariant, the
// step and the arrow-joined counterexample path.
func TestPlanErrorFormat(t *testing.T) {
	pe := &verify.PlanError{
		Invariant: verify.InvOrphan, Vehicle: "VIN-TEST", Step: "remove Lib from E1/S1",
		Path:   []string{"remove App from E1/S1", "remove Lib from E1/S1"},
		Detail: "plug-in Gui requires Lib, which is not live in this state",
	}
	got := pe.Error()
	for _, want := range []string{
		`plan for vehicle "VIN-TEST"`, "violates orphan", "remove Lib from E1/S1",
		"remove App from E1/S1 -> remove Lib from E1/S1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("error %q missing %q", got, want)
		}
	}
}

// TestPlanUnknownPluginSkipsLinkChecks: a PluginState with nil PLC
// (installed rows predating the plan) disables its own link checks but
// its ports still claim ids.
func TestPlanUnknownPluginSkipsLinkChecks(t *testing.T) {
	legacy := verify.PluginState{
		Plugin: "Legacy", ECU: "E1", SWC: "S1",
		PIC: core.PIC{{Name: "x", ID: 9}},
		// PLC nil: unknown contexts, no link checks for Legacy itself.
	}
	y := &verify.PluginState{
		Plugin: "Y", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "b", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "b", ID: 9}}, // collides with Legacy
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 9}},
	}
	err := verify.VerifyPlan(&verify.Plan{
		Kind: verify.PlanDeploy, Vehicle: "VIN-TEST", Conf: testConf(),
		Installed: []verify.PluginState{legacy},
		Steps:     []verify.Step{{Kind: verify.StepInstall, Plugin: "Y", New: y}},
	})
	expectPlanErr(t, err, verify.InvPortCollision)
}
