package verify_test

import (
	"strings"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/verify"
)

// Fleet-level abortability: VerifyWavePrefixes must accept waves whose
// per-vehicle compensation paths are safe, skip waves with nothing to
// plan, and reject — naming the wave — a rollout whose abort would pass
// through a broken intermediate state.

// swapPair builds a self-contained (old, new) state pair for one
// plug-in: same port, no links, so both the forward and the mirrored
// path are trivially safe.
func swapPair(name core.PluginName) (*verify.PluginState, *verify.PluginState) {
	old := &verify.PluginState{
		Plugin: name, ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 1}},
	}
	upgraded := &verify.PluginState{
		Plugin: name, ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 1}},
	}
	return old, upgraded
}

func upgradePlanFor(vehicle core.VehicleID, name core.PluginName) *verify.Plan {
	old, upgraded := swapPair(name)
	return &verify.Plan{
		Kind: verify.PlanUpgrade, Vehicle: vehicle, Conf: testConf(),
		Steps: []verify.Step{{Kind: verify.StepSwap, Plugin: name, New: upgraded, Old: old}},
	}
}

func TestWavePrefixesAccepted(t *testing.T) {
	waves := [][]*verify.Plan{
		{upgradePlanFor("VIN-1", "A")},
		{nil}, // a wave whose vehicles need no upgrade
		{upgradePlanFor("VIN-2", "A"), upgradePlanFor("VIN-3", "A")},
	}
	if err := verify.VerifyWavePrefixes(waves); err != nil {
		t.Fatalf("safe wave plan rejected: %v", err)
	}
	if err := verify.VerifyWavePrefixes(nil); err != nil {
		t.Fatalf("empty rollout rejected: %v", err)
	}
}

func TestWavePrefixesRejectNonUpgradePlan(t *testing.T) {
	deploy := &verify.Plan{Kind: verify.PlanDeploy, Vehicle: "VIN-1", Conf: testConf()}
	err := verify.VerifyWavePrefixes([][]*verify.Plan{{deploy}})
	pe := expectPlanErr(t, err, verify.InvSafeState)
	if !strings.Contains(pe.Detail, "wave 1") {
		t.Errorf("detail %q does not name the wave", pe.Detail)
	}
}

// TestWavePrefixesRejectUnabortableWave mirrors the rollback-path shape
// of TestPlanRollbackPathChecked at fleet scope: the forward swaps are
// clean, but aborting the wave walks through a state where old P1's
// peer link dangles — the wave prefix is not abortable, so the rollout
// must be rejected before the first package moves.
func TestWavePrefixesRejectUnabortableWave(t *testing.T) {
	old1 := &verify.PluginState{
		Plugin: "P1", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkPeer, Plugin: 1, Peer: 7}},
	}
	new1 := &verify.PluginState{
		Plugin: "P1", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "tx", Direction: core.Provided}},
		PIC:   core.PIC{{Name: "tx", ID: 1}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 1}},
	}
	old2 := &verify.PluginState{
		Plugin: "P2", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "rx", Direction: core.Required}},
		PIC:   core.PIC{{Name: "rx", ID: 2}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 2}},
	}
	new2 := &verify.PluginState{
		Plugin: "P2", ECU: "E1", SWC: "S1",
		Ports: []core.PluginPortSpec{{Name: "rx", Direction: core.Required}},
		PIC:   core.PIC{{Name: "rx", ID: 7}},
		PLC:   core.PLC{{Kind: core.LinkNone, Plugin: 2}},
	}
	bad := &verify.Plan{
		Kind: verify.PlanUpgrade, Vehicle: "VIN-BAD", Conf: testConf(),
		Steps: []verify.Step{
			{Kind: verify.StepSwap, Plugin: "P1", New: new1, Old: old1},
			{Kind: verify.StepSwap, Plugin: "P2", New: new2, Old: old2},
		},
	}
	waves := [][]*verify.Plan{
		{upgradePlanFor("VIN-OK", "A")}, // wave 1 is fine
		{bad},
	}
	err := verify.VerifyWavePrefixes(waves)
	if err == nil {
		t.Fatal("unabortable wave accepted")
	}
	if !strings.Contains(err.Error(), "abort wave 2: ") {
		t.Fatalf("counterexample %v does not name wave 2's abort path", err)
	}
}
