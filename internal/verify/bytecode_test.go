package verify_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/sim"
	"dynautosar/internal/verify"
	"dynautosar/internal/vm"
)

func expectBytecodeErr(t *testing.T, err error, reason string) *verify.BytecodeError {
	t.Helper()
	if err == nil {
		t.Fatalf("program accepted, want rejection mentioning %q", reason)
	}
	var be *verify.BytecodeError
	if !errors.As(err, &be) {
		t.Fatalf("error %v (%T) is not a *BytecodeError", err, err)
	}
	if !strings.Contains(be.Reason, reason) {
		t.Fatalf("reason %q does not mention %q (full: %v)", be.Reason, reason, be)
	}
	return be
}

func initOnly(code ...vm.Instr) *vm.Program {
	return &vm.Program{
		Name:     "t",
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code:     code,
	}
}

// TestBytecodeUnderflow: popping from a possibly-empty stack is
// rejected with the offending pc.
func TestBytecodeUnderflow(t *testing.T) {
	be := expectBytecodeErr(t, verify.VerifyProgram(initOnly(
		vm.Instr{Op: vm.OpPush, Arg: 1}, // depth 1
		vm.Instr{Op: vm.OpAdd},          // needs 2
		vm.Instr{Op: vm.OpHalt},
	)), "underflow")
	if be.PC != 1 || be.Handler != "init handler" {
		t.Errorf("counterexample pc=%d handler=%q, want pc=1 init handler", be.PC, be.Handler)
	}
}

// TestBytecodeUnderflowThroughCall: a subroutine that pops more than
// the caller provides is caught, with the CALL site recorded.
func TestBytecodeUnderflowThroughCall(t *testing.T) {
	be := expectBytecodeErr(t, verify.VerifyProgram(initOnly(
		vm.Instr{Op: vm.OpCall, Arg: 2}, // pc 0: empty stack at call
		vm.Instr{Op: vm.OpHalt},         // pc 1
		vm.Instr{Op: vm.OpAdd},          // pc 2: subroutine needs 2
		vm.Instr{Op: vm.OpRet},          // pc 3
	)), "underflow")
	if be.PC != 2 {
		t.Errorf("counterexample pc=%d, want the subroutine's ADD at 2", be.PC)
	}
	if len(be.Calls) != 1 || be.Calls[0] != 0 {
		t.Errorf("counterexample calls=%v, want the CALL at pc 0", be.Calls)
	}
}

// TestBytecodeOverflow: an unbounded push loop must be provably able
// to exceed MaxStack.
func TestBytecodeOverflow(t *testing.T) {
	expectBytecodeErr(t, verify.VerifyProgram(initOnly(
		vm.Instr{Op: vm.OpPush, Arg: 1},
		vm.Instr{Op: vm.OpJmp, Arg: 0},
	)), "overflow")
}

// TestBytecodeBoundedLoopAccepted: a loop that pops as much as it
// pushes stays at constant depth and is accepted.
func TestBytecodeBoundedLoopAccepted(t *testing.T) {
	err := verify.VerifyProgram(initOnly(
		vm.Instr{Op: vm.OpPush, Arg: 10}, // pc 0: counter
		vm.Instr{Op: vm.OpPush, Arg: 1},  // pc 1
		vm.Instr{Op: vm.OpSub},           // pc 2: counter-1
		vm.Instr{Op: vm.OpDup},           // pc 3
		vm.Instr{Op: vm.OpJnz, Arg: 1},   // pc 4: loop while non-zero
		vm.Instr{Op: vm.OpPop},           // pc 5
		vm.Instr{Op: vm.OpHalt},          // pc 6
	))
	if err != nil {
		t.Fatalf("balanced loop rejected: %v", err)
	}
}

// TestBytecodeRecursionRejected: a self-calling subroutine would
// exhaust the frame bound.
func TestBytecodeRecursionRejected(t *testing.T) {
	expectBytecodeErr(t, verify.VerifyProgram(initOnly(
		vm.Instr{Op: vm.OpCall, Arg: 2},
		vm.Instr{Op: vm.OpHalt},
		vm.Instr{Op: vm.OpCall, Arg: 2},
		vm.Instr{Op: vm.OpRet},
	)), "recursive")
}

// chainProgram builds a handler calling a chain of n nested
// subroutines: sub i calls sub i+1, the last returns immediately.
func chainProgram(n int) *vm.Program {
	code := []vm.Instr{
		{Op: vm.OpCall, Arg: 2},
		{Op: vm.OpHalt},
	}
	for i := 0; i < n-1; i++ {
		entry := int32(2 + 2*i)
		code = append(code,
			vm.Instr{Op: vm.OpCall, Arg: entry + 2},
			vm.Instr{Op: vm.OpRet},
		)
	}
	code = append(code, vm.Instr{Op: vm.OpRet})
	return initOnly(code...)
}

// TestBytecodeCallDepth: call chains deeper than vm.MaxFrames are
// rejected; a chain at exactly the bound is accepted.
func TestBytecodeCallDepth(t *testing.T) {
	if err := verify.VerifyProgram(chainProgram(vm.MaxFrames)); err != nil {
		t.Fatalf("chain at the frame bound rejected: %v", err)
	}
	expectBytecodeErr(t, verify.VerifyProgram(chainProgram(vm.MaxFrames+1)), "frame bound")
}

// TestBytecodeFallOffEnd: control running past the last instruction is
// rejected even when no stack bound is violated.
func TestBytecodeFallOffEnd(t *testing.T) {
	expectBytecodeErr(t, verify.VerifyProgram(initOnly(
		vm.Instr{Op: vm.OpPush, Arg: 1},
		vm.Instr{Op: vm.OpPop},
	)), "past the end")
}

// TestBytecodePwrOnRequiredPort: writing a required (input) port is a
// manifest mismatch caught statically.
func TestBytecodePwrOnRequiredPort(t *testing.T) {
	p := &vm.Program{
		Name:     "t",
		Ports:    []vm.PortDecl{{Name: "in", Direction: core.Required}},
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpPush, Arg: 1},
			{Op: vm.OpPwr, Arg: 0},
			{Op: vm.OpHalt},
		},
	}
	be := expectBytecodeErr(t, verify.VerifyProgram(p), "required (input) port")
	if be.PC != 1 {
		t.Errorf("counterexample pc=%d, want 1", be.PC)
	}
}

// TestBytecodeStructuralErrorsComeFromProgramVerify: out-of-range jump
// targets are already structural errors; VerifyProgram must surface
// them, not panic past them.
func TestBytecodeStructuralErrorsComeFromProgramVerify(t *testing.T) {
	err := verify.VerifyProgram(initOnly(vm.Instr{Op: vm.OpJmp, Arg: 99}))
	if err == nil || !strings.Contains(err.Error(), "jump target") {
		t.Fatalf("invalid jump target not rejected: %v", err)
	}
}

// TestVerifyBinary: a packaged binary round-trips through manifest
// validation and program verification.
func TestVerifyBinary(t *testing.T) {
	p := &vm.Program{
		Name:     "ok",
		Ports:    []vm.PortDecl{{Name: "out", Direction: core.Provided}},
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpPush, Arg: 7},
			{Op: vm.OpPwr, Arg: 0},
			{Op: vm.OpHalt},
		},
	}
	bin, err := plugin.FromProgram(p, plugin.Manifest{Developer: "dev"})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VerifyBinary(bin); err != nil {
		t.Fatalf("valid binary rejected: %v", err)
	}
}

// diffHost is the execution side of the differential test.
type diffHost struct{}

func (diffHost) PortWrite(int, int64) error { return nil }
func (diffHost) SetTimer(int, sim.Duration) {}
func (diffHost) ClearTimer(int)             {}
func (diffHost) Now() sim.Time              { return 0 }
func (diffHost) Log(string, int64)          {}

// genProgram builds one random program with structurally valid
// arguments: jumps stay in range, globals/ports/timers/consts are
// indexed within bounds. Whether the program respects the stack and
// control bounds is up to the generated opcode sequence — exactly what
// the verifier must decide.
func genProgram(rng *rand.Rand) *vm.Program {
	ops := []vm.Op{
		vm.OpNop, vm.OpPush, vm.OpPush, vm.OpPush, vm.OpPop, vm.OpDup, vm.OpSwap, vm.OpOver,
		vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpMin, vm.OpMax, vm.OpAnd, vm.OpOr, vm.OpXor,
		vm.OpNot, vm.OpNeg, vm.OpAbs, vm.OpEq, vm.OpLt,
		vm.OpJmp, vm.OpJz, vm.OpJnz, vm.OpCall,
		vm.OpLdg, vm.OpStg, vm.OpPrd, vm.OpPwr, vm.OpArg, vm.OpPort, vm.OpClock,
		vm.OpHalt, vm.OpRet,
	}
	n := 3 + rng.Intn(12)
	code := make([]vm.Instr, n)
	for i := range code {
		op := ops[rng.Intn(len(ops))]
		var arg int32
		switch op {
		case vm.OpPush:
			arg = int32(rng.Intn(1000) - 500)
		case vm.OpJmp, vm.OpJz, vm.OpJnz, vm.OpCall:
			arg = int32(rng.Intn(n))
		case vm.OpLdg, vm.OpStg:
			arg = int32(rng.Intn(4))
		case vm.OpPrd, vm.OpPwr:
			arg = int32(rng.Intn(2))
		}
		code[i] = vm.Instr{Op: op, Arg: arg}
	}
	return &vm.Program{
		Name:    "fuzz",
		Globals: 4,
		Ports: []vm.PortDecl{
			{Name: "in", Direction: core.Required},
			{Name: "out", Direction: core.Provided},
		},
		Handlers: []vm.Handler{
			{Kind: vm.HandlerInit, Entry: 0},
			{Kind: vm.HandlerMessage, Index: -1, Entry: 0},
		},
		Code: code,
	}
}

// TestDifferentialNoStackTraps: every randomly generated program the
// verifier accepts must execute without ever raising a stack or
// call-depth trap. Budget exhaustion and arithmetic faults remain
// legitimate dynamic errors; a stack trap in an accepted program is a
// soundness bug in the verifier.
func TestDifferentialNoStackTraps(t *testing.T) {
	rng := rand.New(rand.NewSource(testSeed(t, 20260808)))
	accepted, rejected := 0, 0
	for i := 0; i < 4000; i++ {
		prog := genProgram(rng)
		if err := verify.VerifyProgram(prog); err != nil {
			rejected++
			continue
		}
		accepted++
		in, err := vm.NewInstance(prog, diffHost{}, 4096)
		if err != nil {
			t.Fatalf("accepted program failed to instantiate: %v", err)
		}
		for _, run := range []func() error{
			in.Init,
			func() error { return in.Deliver(0, int64(i)) },
			func() error { return in.Deliver(1, -1) },
		} {
			err := run()
			for _, trap := range []error{vm.ErrStackOverflow, vm.ErrStackUnderflow, vm.ErrCallDepth} {
				if errors.Is(err, trap) {
					t.Fatalf("verifier soundness bug: accepted program trapped with %v\n%s",
						err, vm.Disassemble(prog))
				}
			}
		}
	}
	// The test must not be vacuous in either direction: the generator
	// has to produce a healthy population of both accepted and rejected
	// programs for the property to mean anything.
	if accepted < 100 {
		t.Fatalf("only %d/4000 generated programs accepted; generator too hostile for a meaningful property", accepted)
	}
	if rejected < 100 {
		t.Fatalf("only %d/4000 generated programs rejected; generator too tame for a meaningful property", rejected)
	}
	t.Logf("differential: %d accepted, %d rejected", accepted, rejected)
}
