package verify

import "fmt"

// Fleet-level abortability for progressive rollouts: a rollout promotes
// the fleet wave by wave, and any wave prefix must be abortable — after
// waves 1..k upgraded, rolling every upgraded vehicle back to the old
// version must itself be a safe reconfiguration on each of them. The
// argument decomposes per vehicle: vehicles reconfigure independently
// (no plan step touches another vehicle, and port reservations are
// per-vehicle), so the prefix 1..k is abortable exactly when every
// per-vehicle upgrade plan in waves 1..k has a safe compensation path.
// VerifyWavePrefixes therefore walks the mirrored (rollback) path of
// every plan, wave by wave, and rejects the whole rollout with a
// counterexample naming the first wave and vehicle whose abort would
// pass through an unsafe intermediate state.

// VerifyWavePrefixes checks that every wave prefix of a planned rollout
// is abortable: for each wave, each per-vehicle upgrade plan's
// compensation path (the steps mirrored and reversed, walked from the
// upgraded state back to the old one) must satisfy the invariant
// catalogue. Plans must be PlanUpgrade; nil entries (waves whose
// vehicles need no upgrade) are skipped. Returns nil or the *PlanError
// of the minimal counterexample, its step labels prefixed with the
// offending wave.
func VerifyWavePrefixes(waves [][]*Plan) error {
	for wi, wave := range waves {
		for _, p := range wave {
			if p == nil {
				continue
			}
			if p.Kind != PlanUpgrade {
				return &PlanError{Invariant: InvSafeState, Vehicle: p.Vehicle,
					Detail: fmt.Sprintf("wave %d: rollout waves must carry upgrade plans, got %q", wi+1, p.Kind)}
			}
			rev := make([]Step, len(p.Steps))
			for i, st := range p.Steps {
				rev[len(p.Steps)-1-i] = Step{Kind: st.Kind, Plugin: st.Plugin, New: st.Old, Old: st.New}
			}
			if e := p.walkFrom(p.finalState(), rev, fmt.Sprintf("abort wave %d: ", wi+1)); e != nil {
				return e
			}
		}
	}
	return nil
}
