// Package verify is the trusted server's static-analysis layer: it
// rejects unsafe plug-in bytecode and unsafe reconfiguration plans
// before either reaches a vehicle. Two engines live here.
//
// The bytecode verifier (VerifyProgram, VerifyBinary) is an abstract
// interpreter over internal/vm programs. It partitions the code into
// basic blocks (the same leader set the VM compiler fuses across, see
// vm.BlockLeaders) and propagates an interval of possible operand-stack
// depths to a fixpoint, proving that no execution of any handler can
// raise ErrStackOverflow or ErrStackUnderflow, that CALL chains are
// acyclic and within the frame bound, that control cannot run off the
// end of the code, and that PWR targets only provided-direction ports.
// Structural properties — jump targets, global slots, port and constant
// indices — come from Program.Verify, which runs first. A rejected
// program yields a BytecodeError carrying the handler, the offending
// instruction and the block path that reaches it.
//
// The plan verifier (VerifyPlan, plan.go) models a deploy, uninstall or
// live-upgrade plan as a path of intermediate configurations — one step
// per plug-in, in the order internal/server executes them — and checks
// the configuration invariants at every step, returning a PlanError
// with the minimal counterexample path on violation.
//
// Both engines run at plan or upload time only; nothing here touches
// the data plane.
package verify

import (
	"fmt"
	"strings"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/vm"
)

// BytecodeError is the counterexample of a rejected program: the event
// handler from which the trap is reachable, the offending instruction,
// and the basic-block path that reaches it.
type BytecodeError struct {
	// Program is the program name.
	Program string
	// Handler names the entry point ("init handler", "message handler
	// for port 0 (\"Poke\")", "timer handler 3").
	Handler string
	// PC is the offending instruction index; Op its mnemonic.
	PC int32
	Op string
	// Reason is the human-readable violation.
	Reason string
	// Calls lists the CALL instruction indices crossed from the handler
	// into the subroutine containing PC (empty when PC is handler-level).
	Calls []int32
	// Path is the basic-block path, as instruction indices of the block
	// heads, from the innermost context's entry to the block holding PC.
	Path []int32
}

// Error implements the error interface with the full counterexample.
func (e *BytecodeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: program %q: %s: %s at pc %d: %s",
		e.Program, e.Handler, e.Op, e.PC, e.Reason)
	if len(e.Calls) > 0 {
		parts := make([]string, len(e.Calls))
		for i, pc := range e.Calls {
			parts[i] = fmt.Sprintf("%d", pc)
		}
		fmt.Fprintf(&b, "; via CALL at pc %s", strings.Join(parts, ", "))
	}
	if len(e.Path) > 1 {
		parts := make([]string, len(e.Path))
		for i, pc := range e.Path {
			parts[i] = fmt.Sprintf("%d", pc)
		}
		fmt.Fprintf(&b, "; path %s", strings.Join(parts, " -> "))
	}
	return b.String()
}

// VerifyBinary statically verifies a packaged plug-in binary: the
// manifest/program consistency checks of Binary.Validate (port lists
// and memory quota must match), then VerifyProgram over the decoded
// program.
func VerifyBinary(b plugin.Binary) error {
	if err := b.Validate(); err != nil {
		return err
	}
	prog, err := b.Decode()
	if err != nil {
		return err
	}
	return VerifyProgram(prog)
}

// VerifyProgram proves that no execution of any handler of the program
// can raise a stack trap (vm.ErrStackOverflow, vm.ErrStackUnderflow,
// vm.ErrCallDepth), that control cannot run past the end of the code,
// and that every PWR targets a provided-direction port. Division by
// zero and budget exhaustion remain dynamic conditions. The structural
// checks of Program.Verify run first. Returns nil or a *BytecodeError
// (or the Program.Verify error) describing the first violation.
func VerifyProgram(p *vm.Program) error {
	if err := p.Verify(); err != nil {
		return err
	}
	// Port-operation consistency: PWR emits through the PIRTE, which
	// routes provided-direction ports only; writing a required (input)
	// port is a manifest mismatch, not a runtime behaviour.
	for i, ins := range p.Code {
		if ins.Op == vm.OpPwr && p.Ports[ins.Arg].Direction != core.Provided {
			return &BytecodeError{
				Program: p.Name, Handler: "port declarations",
				PC: int32(i), Op: ins.Op.String(),
				Reason: fmt.Sprintf("PWR targets port %q which is a required (input) port; only provided ports can be written",
					p.Ports[ins.Arg].Name),
			}
		}
	}
	a := &analysis{p: p, n: int32(len(p.Code)), results: make(map[int32]*ctxResult)}
	if err := a.discoverSubroutines(); err != nil {
		return err
	}
	return a.checkHandlers()
}

// interval is a set of possible operand-stack depths, relative to the
// context's entry depth.
type interval struct{ lo, hi int }

// clamp bounds an interval so the fixpoint iteration terminates; the
// bounds sit outside the provable range, so a clamped interval always
// carries a violation with it.
func (iv interval) clamp() interval {
	const bound = vm.MaxStack + 2
	if iv.lo < -bound {
		iv.lo = -bound
	}
	if iv.hi > bound {
		iv.hi = bound
	}
	return iv
}

func (iv interval) add(d int) interval { return interval{iv.lo + d, iv.hi + d} }

func union(a, b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

// witness pins a potential violation to an instruction and the path
// reaching it, for counterexample reconstruction.
type witness struct {
	pc  int32
	op  vm.Op
	ctx int32 // entry of the context the pc lives in
	// calls lists the CALL pcs crossed outward-in when the violation
	// lives in a subroutine of the reporting context.
	calls []int32
}

// ctxResult summarizes one analyzed context (a handler body or a
// subroutine body) in depths relative to its entry.
type ctxResult struct {
	entry int32
	// worstNeed is the operand depth the context requires on entry; 0
	// means none. needW witnesses the dominating requirement.
	worstNeed int
	needW     witness
	// worstHigh is the highest depth (relative to entry) reached by a
	// push, valid when hasHigh; highW witnesses it.
	worstHigh int
	hasHigh   bool
	highW     witness
	// retLo/retHi bound the net depth change over all reachable RETs;
	// hasRet is false when no RET is reachable (the call never returns).
	retLo, retHi int
	hasRet       bool
	// from maps each visited block head to the head it was first
	// reached from, for path reconstruction.
	from map[int32]int32
}

func (r *ctxResult) noteNeed(need int, w witness) {
	if need > r.worstNeed {
		r.worstNeed = need
		r.needW = w
	}
}

func (r *ctxResult) noteHigh(high int, w witness) {
	if !r.hasHigh || high > r.worstHigh {
		r.hasHigh = true
		r.worstHigh = high
		r.highW = w
	}
}

func (r *ctxResult) noteRet(iv interval) {
	if !r.hasRet {
		r.hasRet = true
		r.retLo, r.retHi = iv.lo, iv.hi
		return
	}
	m := union(interval{r.retLo, r.retHi}, iv)
	r.retLo, r.retHi = m.lo, m.hi
}

// analysis is one VerifyProgram run.
type analysis struct {
	p *vm.Program
	n int32
	// subOrder lists reachable subroutine entries, callees before
	// callers; results caches every analyzed context by entry.
	subOrder []int32
	results  map[int32]*ctxResult
	// chain memoizes the deepest nested call chain rooted at each
	// subroutine, itself included.
	chain map[int32]int
}

// body returns the instruction indices reachable from entry without
// entering calls (call sites fall through to their return site), and
// the set of CALL targets seen — the skeleton used for subroutine
// discovery and recursion checks.
func (a *analysis) body(entry int32) (pcs []int32, calls []int32) {
	seen := make(map[int32]bool)
	stack := []int32{entry}
	callSeen := make(map[int32]bool)
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc < 0 || pc >= a.n || seen[pc] {
			continue
		}
		seen[pc] = true
		pcs = append(pcs, pc)
		ins := a.p.Code[pc]
		switch ins.Op {
		case vm.OpJmp:
			stack = append(stack, ins.Arg)
		case vm.OpJz, vm.OpJnz:
			stack = append(stack, ins.Arg, pc+1)
		case vm.OpCall:
			if !callSeen[ins.Arg] {
				callSeen[ins.Arg] = true
				calls = append(calls, ins.Arg)
			}
			stack = append(stack, pc+1)
		case vm.OpRet, vm.OpHalt:
		default:
			stack = append(stack, pc+1)
		}
	}
	return pcs, calls
}

// discoverSubroutines finds every CALL target reachable from a handler,
// rejects recursion, orders the targets callees-first and bounds the
// call-chain depth per handler against vm.MaxFrames.
func (a *analysis) discoverSubroutines() error {
	callees := make(map[int32][]int32)
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[int32]int)
	a.chain = make(map[int32]int)
	var visit func(entry int32, trail []int32) error
	visit = func(entry int32, trail []int32) error {
		switch state[entry] {
		case done:
			return nil
		case visiting:
			cycle := append(append([]int32(nil), trail...), entry)
			parts := make([]string, len(cycle))
			for i, e := range cycle {
				parts[i] = fmt.Sprintf("%d", e)
			}
			return &BytecodeError{
				Program: a.p.Name, Handler: "call graph",
				PC: entry, Op: vm.OpCall.String(),
				Reason: fmt.Sprintf("recursive CALL cycle through entries %s; the %d-frame bound would be exhausted",
					strings.Join(parts, " -> "), vm.MaxFrames),
			}
		}
		state[entry] = visiting
		_, calls := a.body(entry)
		callees[entry] = calls
		depth := 0
		for _, c := range calls {
			if err := visit(c, append(trail, entry)); err != nil {
				return err
			}
			if a.chain[c] > depth {
				depth = a.chain[c]
			}
		}
		state[entry] = done
		a.chain[entry] = depth + 1
		a.subOrder = append(a.subOrder, entry)
		return nil
	}
	for _, h := range a.p.Handlers {
		_, calls := a.body(h.Entry)
		maxChain := 0
		for _, c := range calls {
			if err := visit(c, nil); err != nil {
				return err
			}
			if a.chain[c] > maxChain {
				maxChain = a.chain[c]
			}
		}
		if maxChain > vm.MaxFrames {
			return &BytecodeError{
				Program: a.p.Name, Handler: a.handlerName(h),
				PC: h.Entry, Op: vm.OpCall.String(),
				Reason: fmt.Sprintf("call chains nest %d deep, exceeding the frame bound of %d (vm.ErrCallDepth reachable)",
					maxChain, vm.MaxFrames),
			}
		}
	}
	return nil
}

// analyzeContext runs the interval dataflow over one context's blocks,
// caching the result by entry. Subroutine summaries of every CALL
// target must already be cached (discoverSubroutines orders them).
func (a *analysis) analyzeContext(entry int32) (*ctxResult, *BytecodeError) {
	if r, ok := a.results[entry]; ok {
		return r, nil
	}
	p := a.p
	res := &ctxResult{entry: entry, from: make(map[int32]int32)}
	in := map[int32]interval{entry: {0, 0}}
	queue := []int32{entry}
	queued := map[int32]bool{entry: true}
	var fellOff *witness

	edge := func(from, to int32, iv interval) {
		if to >= a.n {
			if fellOff == nil {
				fellOff = &witness{pc: a.n - 1, op: p.Code[a.n-1].Op, ctx: entry}
			}
			return
		}
		iv = iv.clamp()
		old, ok := in[to]
		merged := iv
		if ok {
			merged = union(old, iv)
		}
		if !ok || merged != old {
			in[to] = merged
			if _, seen := res.from[to]; !seen && to != entry {
				res.from[to] = from
			}
			if !queued[to] {
				queued[to] = true
				queue = append(queue, to)
			}
		}
	}

	leaders := vm.BlockLeaders(p)
	for len(queue) > 0 {
		head := queue[0]
		queue = queue[1:]
		queued[head] = false
		iv := in[head]
		pc := head
	walk:
		for {
			ins := p.Code[pc]
			need, delta, push := ins.Op.StackEffect()
			if need > 0 {
				res.noteNeed(need-iv.lo, witness{pc: pc, op: ins.Op, ctx: entry})
			}
			if push {
				res.noteHigh(iv.hi+1, witness{pc: pc, op: ins.Op, ctx: entry})
			}
			switch ins.Op {
			case vm.OpJmp:
				edge(head, ins.Arg, iv)
				break walk
			case vm.OpJz, vm.OpJnz:
				iv = iv.add(delta)
				edge(head, ins.Arg, iv)
				edge(head, pc+1, iv)
				break walk
			case vm.OpCall:
				sum := a.results[ins.Arg]
				if sum == nil {
					// Unreachable by construction; fail closed.
					return nil, &BytecodeError{
						Program: p.Name, Handler: "call graph", PC: pc,
						Op: ins.Op.String(), Reason: "CALL target was not summarized",
					}
				}
				if sum.worstNeed > 0 {
					res.noteNeed(sum.worstNeed-iv.lo,
						witness{pc: sum.needW.pc, op: sum.needW.op, ctx: sum.needW.ctx,
							calls: append([]int32{pc}, sum.needW.calls...)})
				}
				if sum.hasHigh {
					res.noteHigh(iv.hi+sum.worstHigh,
						witness{pc: sum.highW.pc, op: sum.highW.op, ctx: sum.highW.ctx,
							calls: append([]int32{pc}, sum.highW.calls...)})
				}
				if sum.hasRet {
					edge(head, pc+1, interval{iv.lo + sum.retLo, iv.hi + sum.retHi})
				}
				break walk
			case vm.OpRet:
				res.noteRet(iv)
				break walk
			case vm.OpHalt:
				break walk
			default:
				iv = iv.add(delta).clamp()
				if pc+1 >= a.n {
					edge(head, pc+1, iv) // records the fall-off
					break walk
				}
				if leaders[pc+1] {
					edge(head, pc+1, iv)
					break walk
				}
				pc++
			}
		}
	}
	if fellOff != nil {
		return nil, &BytecodeError{
			Program: p.Name, Handler: a.contextName(entry),
			PC: fellOff.pc, Op: fellOff.op.String(),
			Reason: "control can run past the end of the code",
			Path:   a.blockPath(res, fellOff.pc),
		}
	}
	a.results[entry] = res
	return res, nil
}

// checkHandlers analyzes every subroutine (callees first), then every
// handler at absolute entry depth 0, turning summary violations into
// errors.
func (a *analysis) checkHandlers() error {
	for _, entry := range a.subOrder {
		if _, err := a.analyzeContext(entry); err != nil {
			return err
		}
	}
	seen := make(map[int32]bool, len(a.p.Handlers))
	for _, h := range a.p.Handlers {
		if seen[h.Entry] {
			continue
		}
		seen[h.Entry] = true
		res, err := a.analyzeContext(h.Entry)
		if err != nil {
			err.Handler = a.handlerName(h)
			return err
		}
		if res.worstNeed > 0 {
			w := res.needW
			needOp, _, _ := w.op.StackEffect()
			return &BytecodeError{
				Program: a.p.Name, Handler: a.handlerName(h),
				PC: w.pc, Op: w.op.String(), Calls: w.calls,
				Reason: fmt.Sprintf("operand stack underflow reachable: %v pops %d value(s) but the stack can hold as few as %d here",
					w.op, needOp, needOp-res.worstNeed),
				Path: a.witnessPath(w),
			}
		}
		if res.hasHigh && res.worstHigh > vm.MaxStack {
			w := res.highW
			return &BytecodeError{
				Program: a.p.Name, Handler: a.handlerName(h),
				PC: w.pc, Op: w.op.String(), Calls: w.calls,
				Reason: fmt.Sprintf("operand stack overflow reachable: depth can reach %d, exceeding the bound of %d",
					res.worstHigh, vm.MaxStack),
				Path: a.witnessPath(w),
			}
		}
	}
	return nil
}

// witnessPath reconstructs the block path to a witness inside the
// context the witness lives in (the innermost subroutine for
// call-propagated violations).
func (a *analysis) witnessPath(w witness) []int32 {
	if res, ok := a.results[w.ctx]; ok {
		return a.blockPath(res, w.pc)
	}
	return nil
}

// blockPath walks the first-predecessor chain from the block containing
// pc back to the context entry, returning entry-first block heads.
func (a *analysis) blockPath(res *ctxResult, pc int32) []int32 {
	// Find the head of the block containing pc: the nearest recorded
	// head at or below pc whose straight-line walk covers it. The from
	// map keys every visited head, so scan down from pc.
	head := pc
	for head > res.entry {
		if _, ok := res.from[head]; ok {
			break
		}
		if head == res.entry {
			break
		}
		head--
	}
	var rev []int32
	for {
		rev = append(rev, head)
		if head == res.entry || len(rev) > len(a.p.Code) {
			break
		}
		prev, ok := res.from[head]
		if !ok {
			break
		}
		head = prev
	}
	path := make([]int32, len(rev))
	for i, h := range rev {
		path[len(rev)-1-i] = h
	}
	return path
}

// handlerName renders a handler for counterexamples.
func (a *analysis) handlerName(h vm.Handler) string {
	switch h.Kind {
	case vm.HandlerInit:
		return "init handler"
	case vm.HandlerMessage:
		if h.Index == -1 {
			return "catch-all message handler"
		}
		if int(h.Index) < len(a.p.Ports) {
			return fmt.Sprintf("message handler for port %d (%q)", h.Index, a.p.Ports[h.Index].Name)
		}
		return fmt.Sprintf("message handler for port %d", h.Index)
	case vm.HandlerTimer:
		return fmt.Sprintf("timer handler %d", h.Index)
	}
	return "handler"
}

// contextName renders a context entry: the handler declared on it, or a
// subroutine label.
func (a *analysis) contextName(entry int32) string {
	for _, h := range a.p.Handlers {
		if h.Entry == entry {
			return a.handlerName(h)
		}
	}
	return fmt.Sprintf("subroutine at pc %d", entry)
}
