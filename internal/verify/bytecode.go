// Package verify is the trusted server's static-analysis layer: it
// rejects unsafe plug-in bytecode and unsafe reconfiguration plans
// before either reaches a vehicle, and certifies optimized bytecode
// against its unoptimized form. Three engines live here.
//
// The bytecode verifier (VerifyProgram, VerifyBinary) runs the shared
// dataflow framework (internal/vm/dataflow) with its stack-interval
// client: it partitions the code into basic blocks (the same leader set
// the VM compiler fuses across, see vm.BlockLeaders) and propagates an
// interval of possible operand-stack depths to a fixpoint, proving that
// no execution of any handler can raise ErrStackOverflow or
// ErrStackUnderflow, that CALL chains are acyclic and within the frame
// bound, that control cannot run off the end of the code, and that PWR
// targets only provided-direction ports. Structural properties — jump
// targets, global slots, port and constant indices — come from
// Program.Verify, which runs first. A rejected program yields a
// BytecodeError carrying the handler, the offending instruction and the
// block path that reaches it. This file only renders counterexamples;
// the abstract interpretation itself lives in the dataflow package,
// where the optimizer shares it.
//
// The plan verifier (VerifyPlan, plan.go) models a deploy, uninstall or
// live-upgrade plan as a path of intermediate configurations — one step
// per plug-in, in the order internal/server executes them — and checks
// the configuration invariants at every step, returning a PlanError
// with the minimal counterexample path on violation.
//
// The translation validator (OptimizeProgram, validate.go) gates the
// dataflow optimizer: an optimized program is accepted only if it
// re-verifies and is differentially indistinguishable from its source
// on a behavioural battery (traps, traces, globals, budget accounting).
//
// All engines run at plan or upload time only; nothing here touches
// the data plane.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/vm"
	"dynautosar/internal/vm/dataflow"
)

// BytecodeError is the counterexample of a rejected program: the event
// handler from which the trap is reachable, the offending instruction,
// and the basic-block path that reaches it.
type BytecodeError struct {
	// Program is the program name.
	Program string
	// Handler names the entry point ("init handler", "message handler
	// for port 0 (\"Poke\")", "timer handler 3").
	Handler string
	// PC is the offending instruction index; Op its mnemonic.
	PC int32
	Op string
	// Reason is the human-readable violation.
	Reason string
	// Calls lists the CALL instruction indices crossed from the handler
	// into the subroutine containing PC (empty when PC is handler-level).
	Calls []int32
	// Path is the basic-block path, as instruction indices of the block
	// heads, from the innermost context's entry to the block holding PC.
	Path []int32
}

// Error implements the error interface with the full counterexample.
func (e *BytecodeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: program %q: %s: %s at pc %d: %s",
		e.Program, e.Handler, e.Op, e.PC, e.Reason)
	if len(e.Calls) > 0 {
		parts := make([]string, len(e.Calls))
		for i, pc := range e.Calls {
			parts[i] = fmt.Sprintf("%d", pc)
		}
		fmt.Fprintf(&b, "; via CALL at pc %s", strings.Join(parts, ", "))
	}
	if len(e.Path) > 1 {
		parts := make([]string, len(e.Path))
		for i, pc := range e.Path {
			parts[i] = fmt.Sprintf("%d", pc)
		}
		fmt.Fprintf(&b, "; path %s", strings.Join(parts, " -> "))
	}
	return b.String()
}

// VerifyBinary statically verifies a packaged plug-in binary: the
// manifest/program consistency checks of Binary.Validate (port lists
// and memory quota must match), then VerifyProgram over the decoded
// program.
func VerifyBinary(b plugin.Binary) error {
	if err := b.Validate(); err != nil {
		return err
	}
	prog, err := b.Decode()
	if err != nil {
		return err
	}
	return VerifyProgram(prog)
}

// VerifyProgram proves that no execution of any handler of the program
// can raise a stack trap (vm.ErrStackOverflow, vm.ErrStackUnderflow,
// vm.ErrCallDepth), that control cannot run past the end of the code,
// and that every PWR targets a provided-direction port. Division by
// zero and budget exhaustion remain dynamic conditions. The structural
// checks of Program.Verify run first. Returns nil or a *BytecodeError
// (or the Program.Verify error) describing the first violation.
func VerifyProgram(p *vm.Program) error {
	if err := p.Verify(); err != nil {
		return err
	}
	// Port-operation consistency: PWR emits through the PIRTE, which
	// routes provided-direction ports only; writing a required (input)
	// port is a manifest mismatch, not a runtime behaviour.
	for i, ins := range p.Code {
		if ins.Op == vm.OpPwr && p.Ports[ins.Arg].Direction != core.Provided {
			return &BytecodeError{
				Program: p.Name, Handler: "port declarations",
				PC: int32(i), Op: ins.Op.String(),
				Reason: fmt.Sprintf("PWR targets port %q which is a required (input) port; only provided ports can be written",
					p.Ports[ins.Arg].Name),
			}
		}
	}
	g, err := dataflow.New(p)
	if err != nil {
		return renderGraphError(p, err)
	}
	sa := dataflow.NewStackAnalysis(g)
	// Subroutines first, callees before callers, so every CALL site sees
	// a cached callee summary; then every handler at entry depth 0.
	for _, entry := range g.SubOrder {
		if _, cerr := sa.Context(entry); cerr != nil {
			return renderContextError(p, cerr, contextName(p, entry))
		}
	}
	seen := make(map[int32]bool, len(p.Handlers))
	for _, h := range p.Handlers {
		if seen[h.Entry] {
			continue
		}
		seen[h.Entry] = true
		sum, cerr := sa.Context(h.Entry)
		if cerr != nil {
			return renderContextError(p, cerr, handlerName(p, h))
		}
		if sum.WorstNeed > 0 {
			w := sum.NeedW
			needOp, _, _ := w.Op.StackEffect()
			return &BytecodeError{
				Program: p.Name, Handler: handlerName(p, h),
				PC: w.PC, Op: w.Op.String(), Calls: w.Calls,
				Reason: fmt.Sprintf("operand stack underflow reachable: %v pops %d value(s) but the stack can hold as few as %d here",
					w.Op, needOp, needOp-sum.WorstNeed),
				Path: sa.Path(w),
			}
		}
		if sum.HasHigh && sum.WorstHigh > vm.MaxStack {
			w := sum.HighW
			return &BytecodeError{
				Program: p.Name, Handler: handlerName(p, h),
				PC: w.PC, Op: w.Op.String(), Calls: w.Calls,
				Reason: fmt.Sprintf("operand stack overflow reachable: depth can reach %d, exceeding the bound of %d",
					sum.WorstHigh, vm.MaxStack),
				Path: sa.Path(w),
			}
		}
	}
	return nil
}

// renderGraphError maps the dataflow package's structural call-graph
// errors onto the verifier's counterexample format.
func renderGraphError(p *vm.Program, err error) error {
	var rec *dataflow.RecursionError
	if errors.As(err, &rec) {
		parts := make([]string, len(rec.Cycle))
		for i, e := range rec.Cycle {
			parts[i] = fmt.Sprintf("%d", e)
		}
		return &BytecodeError{
			Program: p.Name, Handler: "call graph",
			PC: rec.Cycle[len(rec.Cycle)-1], Op: vm.OpCall.String(),
			Reason: fmt.Sprintf("recursive CALL cycle through entries %s; the %d-frame bound would be exhausted",
				strings.Join(parts, " -> "), vm.MaxFrames),
		}
	}
	var chain *dataflow.ChainDepthError
	if errors.As(err, &chain) {
		return &BytecodeError{
			Program: p.Name, Handler: handlerName(p, chain.Handler),
			PC: chain.Handler.Entry, Op: vm.OpCall.String(),
			Reason: fmt.Sprintf("call chains nest %d deep, exceeding the frame bound of %d (vm.ErrCallDepth reachable)",
				chain.Depth, vm.MaxFrames),
		}
	}
	return err
}

// renderContextError maps a per-context dataflow failure (control past
// the end of the code, or the fail-closed unsummarized-CALL case) onto
// the verifier's counterexample format.
func renderContextError(p *vm.Program, cerr *dataflow.ContextError, handler string) error {
	if cerr.Missing {
		return &BytecodeError{
			Program: p.Name, Handler: "call graph", PC: cerr.PC,
			Op: cerr.Op.String(), Reason: "CALL target was not summarized",
		}
	}
	return &BytecodeError{
		Program: p.Name, Handler: handler,
		PC: cerr.PC, Op: cerr.Op.String(),
		Reason: "control can run past the end of the code",
		Path:   cerr.Path,
	}
}

// handlerName renders a handler for counterexamples.
func handlerName(p *vm.Program, h vm.Handler) string {
	switch h.Kind {
	case vm.HandlerInit:
		return "init handler"
	case vm.HandlerMessage:
		if h.Index == -1 {
			return "catch-all message handler"
		}
		if int(h.Index) < len(p.Ports) {
			return fmt.Sprintf("message handler for port %d (%q)", h.Index, p.Ports[h.Index].Name)
		}
		return fmt.Sprintf("message handler for port %d", h.Index)
	case vm.HandlerTimer:
		return fmt.Sprintf("timer handler %d", h.Index)
	}
	return "handler"
}

// contextName renders a context entry: the handler declared on it, or a
// subroutine label.
func contextName(p *vm.Program, entry int32) string {
	for _, h := range p.Handlers {
		if h.Entry == entry {
			return handlerName(p, h)
		}
	}
	return fmt.Sprintf("subroutine at pc %d", entry)
}
