// Translation validation for the bytecode optimizer: rather than trust
// the dataflow passes, every optimized program is (1) re-verified by
// the same abstract interpreter that gates uploads and (2) executed
// differentially against its unoptimized form over a behavioural
// battery. The battery drives every handler (init, one message handler
// per declared port, every timer slot) across a spread of input values
// and budgets, comparing results, host-event traces, exported globals
// and instruction counts after every activation.
//
// The contract checked here matches dataflow.Optimize's: activations
// that complete within budget must be indistinguishable; an optimized
// activation may never consume more instructions (so it never
// budget-faults where the original would not); state after a budget
// fault itself may differ, and the battery stops comparing a budget
// tier once either side faults on it.
//
// The battery is a seatbelt, not a proof — the soundness argument lives
// with the passes (internal/vm/dataflow) and the re-verification gate;
// the repo's differential test suite covers thousands of random
// programs the same way.
package verify

import (
	"errors"
	"fmt"

	"dynautosar/internal/plugin"
	"dynautosar/internal/sim"
	"dynautosar/internal/vm"
	"dynautosar/internal/vm/dataflow"
)

// OptReport summarizes an accepted optimization.
type OptReport struct {
	Stats dataflow.Stats
	// OrigInstrs/OptInstrs are the static code sizes before and after.
	OrigInstrs, OptInstrs int
}

// OptimizeProgram is the certified entry point to the optimizer: the
// input must verify, the optimized output must re-verify, and the two
// must be differentially indistinguishable under ValidateOptimized.
// When the optimizer finds nothing to do, the input program itself is
// returned. On any gate failure the error describes the first
// divergence and callers fall back to the unoptimized program.
func OptimizeProgram(p *vm.Program) (*vm.Program, OptReport, error) {
	rep := OptReport{OrigInstrs: len(p.Code), OptInstrs: len(p.Code)}
	if err := VerifyProgram(p); err != nil {
		return nil, rep, err
	}
	opt, stats := dataflow.Optimize(p)
	rep.Stats = stats
	rep.OptInstrs = len(opt.Code)
	if !stats.Changed() {
		return p, rep, nil
	}
	if err := VerifyProgram(opt); err != nil {
		return nil, rep, fmt.Errorf("translation validation: optimized program rejected by verifier: %w", err)
	}
	if err := ValidateOptimized(p, opt); err != nil {
		return nil, rep, err
	}
	return opt, rep, nil
}

// OptimizeBinary runs OptimizeProgram over a packaged binary,
// re-packaging the optimized program under the original manifest
// identity. The binary is returned unchanged when nothing improves or
// any gate fails (with the gate error for the caller to log).
func OptimizeBinary(b plugin.Binary) (plugin.Binary, OptReport, error) {
	prog, err := b.Decode()
	if err != nil {
		return b, OptReport{}, err
	}
	opt, rep, err := OptimizeProgram(prog)
	if err != nil || !rep.Stats.Changed() {
		return b, rep, err
	}
	nb, err := plugin.FromProgram(opt, b.Manifest)
	if err != nil {
		return b, rep, err
	}
	return nb, rep, nil
}

// traceHost records every host interaction for comparison.
type traceHost struct {
	events []string
}

func (h *traceHost) PortWrite(port int, v int64) error {
	h.events = append(h.events, fmt.Sprintf("pw %d %d", port, v))
	return nil
}
func (h *traceHost) SetTimer(id int, d sim.Duration) {
	h.events = append(h.events, fmt.Sprintf("set %d %v", id, d))
}
func (h *traceHost) ClearTimer(id int) {
	h.events = append(h.events, fmt.Sprintf("clr %d", id))
}
func (h *traceHost) Now() sim.Time { return 0 }
func (h *traceHost) Log(msg string, v int64) {
	h.events = append(h.events, fmt.Sprintf("log %q %d", msg, v))
}

// trapClass folds an activation error to the trap sentinel it wraps, so
// errors are compared by kind rather than text (trap messages embed
// pcs, which optimization legitimately moves).
func trapClass(err error) error {
	for _, s := range []error{
		vm.ErrBudget, vm.ErrStackOverflow, vm.ErrStackUnderflow,
		vm.ErrDivByZero, vm.ErrCallDepth, vm.ErrStopped, vm.ErrNoHandler,
	} {
		if errors.Is(err, s) {
			return s
		}
	}
	return err
}

// ValidateOptimized differentially executes orig and opt and returns an
// error describing the first behavioural divergence, or nil when the
// battery cannot tell them apart.
func ValidateOptimized(orig, opt *vm.Program) error {
	if len(opt.Ports) != len(orig.Ports) || opt.Globals != orig.Globals ||
		len(opt.Handlers) != len(orig.Handlers) {
		return fmt.Errorf("translation validation: optimized program changed its interface (ports %d->%d, globals %d->%d, handlers %d->%d)",
			len(orig.Ports), len(opt.Ports), orig.Globals, opt.Globals, len(orig.Handlers), len(opt.Handlers))
	}
	values := []int64{0, 1, -1, 2, 7, 255, 1000, -1000, 1<<31 - 1, -(1 << 31)}
	budgets := []int{vm.DefaultBudget, 5000, 400, 60}
	for _, budget := range budgets {
		if err := validateAtBudget(orig, opt, values, budget); err != nil {
			return err
		}
	}
	return nil
}

func validateAtBudget(orig, opt *vm.Program, values []int64, budget int) error {
	ho, hp := &traceHost{}, &traceHost{}
	io, err := vm.NewInstance(orig, ho, budget)
	if err != nil {
		return err
	}
	ip, err := vm.NewInstance(opt, hp, budget)
	if err != nil {
		return fmt.Errorf("translation validation: optimized program rejected by instance construction: %w", err)
	}
	// compare checks one activation pair; done=true stops this budget
	// tier (a budget fault forks the states irreconcilably).
	compare := func(what string, eo, ep error) (done bool, err error) {
		bo, bp := errors.Is(eo, vm.ErrBudget), errors.Is(ep, vm.ErrBudget)
		if bp && !bo {
			return true, fmt.Errorf("translation validation: %s (budget %d): optimized program exhausted the budget but the original did not", what, budget)
		}
		if bo || bp {
			return true, nil
		}
		if trapClass(eo) != trapClass(ep) {
			return true, fmt.Errorf("translation validation: %s (budget %d): result diverged: original %v, optimized %v", what, budget, eo, ep)
		}
		if ip.Instructions > io.Instructions {
			return true, fmt.Errorf("translation validation: %s (budget %d): optimized program executed more instructions (%d > %d)", what, budget, ip.Instructions, io.Instructions)
		}
		if fmt.Sprint(ho.events) != fmt.Sprint(hp.events) {
			return true, fmt.Errorf("translation validation: %s (budget %d): host traces diverged:\n  original:  %v\n  optimized: %v", what, budget, ho.events, hp.events)
		}
		go1, go2 := io.ExportGlobals(), ip.ExportGlobals()
		if fmt.Sprint(go1) != fmt.Sprint(go2) {
			return true, fmt.Errorf("translation validation: %s (budget %d): globals diverged:\n  original:  %v\n  optimized: %v", what, budget, go1, go2)
		}
		return false, nil
	}

	if done, err := compare("init", io.Init(), ip.Init()); done {
		return err
	}
	for port := range orig.Ports {
		for _, v := range values {
			if done, err := compare(fmt.Sprintf("deliver port %d value %d", port, v),
				io.Deliver(port, v), ip.Deliver(port, v)); done {
				return err
			}
		}
	}
	for id := 0; id < vm.MaxTimers; id++ {
		if done, err := compare(fmt.Sprintf("timer %d", id), io.Timer(id), ip.Timer(id)); done {
			return err
		}
	}
	return nil
}
