package verify

import (
	"fmt"
	"strings"

	"dynautosar/internal/core"
)

// This file is the plan verifier: a reconfiguration plan (deploy,
// uninstall or live upgrade) is modelled as a path of intermediate
// vehicle configurations — one step per plug-in, in exactly the order
// internal/server stages them — and the configuration invariants are
// checked at every state along the path, not just at the endpoints.
// Because the server pushes upgrade swaps concurrently, the reachable
// states are all subsets of completed swaps; every invariant checked
// here is per-plug-in or pairwise between two plug-ins, so checking the
// in-order prefix path and the reverse-order (compensation) path covers
// every pair combination an arbitrary subset could exhibit, without
// enumerating 2^n subsets. The reverse path doubles as the proof that a
// safe state (full rollback) is reachable from every intermediate
// state.

// MaxQuiesceInDegree bounds the number of live inbound links a plug-in
// may have while it is quiesced during a swap. Every inbound link is a
// source that keeps producing into the PIRTE's quiesce buffer while the
// plug-in is paused, so the in-degree is the structural bound on
// buffering growth per delivered message.
const MaxQuiesceInDegree = 32

// Invariant class names carried in PlanError.Invariant; stable strings
// that tests and clients can match on.
const (
	// InvLinkCompat: a live link connects ports of incompatible
	// direction or port type.
	InvLinkCompat = "link-compat"
	// InvOrphan: a live link or manifest dependency targets a plug-in
	// or port that is not live in this state.
	InvOrphan = "orphan"
	// InvPortCollision: two live plug-ins (or a live plug-in and a
	// concurrent reservation) share a port id within one SW-C.
	InvPortCollision = "port-collision"
	// InvQuiesceBound: a swap would quiesce a plug-in whose inbound
	// link degree exceeds MaxQuiesceInDegree.
	InvQuiesceBound = "quiesce-bound"
	// InvSafeState: an intermediate state has no rollback path to a
	// safe state (e.g. a swap step without a compensation package).
	InvSafeState = "safe-state"
)

// PlanKind tells which server operation the plan models.
type PlanKind string

// The three verifiable operations.
const (
	PlanDeploy    PlanKind = "deploy"
	PlanUninstall PlanKind = "uninstall"
	PlanUpgrade   PlanKind = "upgrade"
)

// PluginState is one plug-in as it exists (or would exist) on the
// vehicle: its placement, its declared ports, and its deployment
// contexts. Ports and PLC may be empty for pre-installed plug-ins whose
// manifests or contexts are unknown; the verifier then skips the checks
// that need them rather than guessing.
type PluginState struct {
	Plugin core.PluginName
	ECU    core.ECUID
	SWC    core.SWCID
	// Ports are the manifest-declared ports (names and directions).
	Ports []core.PluginPortSpec
	// PIC maps port names to SW-C-scope unique ids.
	PIC core.PIC
	// PLC is the linking context; nil means unknown (installed rows
	// predating this plan), which disables link checks for this
	// plug-in but not checks by others against it.
	PLC core.PLC
	// Requires lists manifest dependencies on other plug-ins.
	Requires []core.PluginName
}

// StepKind is the kind of one plan step.
type StepKind uint8

// The step kinds, matching how the server stages each operation.
const (
	StepInstall StepKind = iota + 1
	StepRemove
	StepSwap
)

// Step is one per-plug-in transition of the plan. Install carries New,
// Remove carries Old, Swap carries both (Old is the compensation
// package the server would roll back to).
type Step struct {
	Kind   StepKind
	Plugin core.PluginName
	New    *PluginState
	Old    *PluginState
}

// describe renders the step for counterexample paths.
func (s Step) describe() string {
	switch s.Kind {
	case StepInstall:
		if s.New != nil {
			return fmt.Sprintf("install %s on %s/%s", s.Plugin, s.New.ECU, s.New.SWC)
		}
		return fmt.Sprintf("install %s", s.Plugin)
	case StepRemove:
		if s.Old != nil {
			return fmt.Sprintf("remove %s from %s/%s", s.Plugin, s.Old.ECU, s.Old.SWC)
		}
		return fmt.Sprintf("remove %s", s.Plugin)
	case StepSwap:
		return fmt.Sprintf("swap %s", s.Plugin)
	}
	return fmt.Sprintf("step %s", s.Plugin)
}

// PortReservation is a set of port ids reserved on one SW-C by a
// concurrent operation (an in-flight upgrade's claim). Live plug-ins of
// other names must not collide with it.
type PortReservation struct {
	ECU   core.ECUID
	SWC   core.SWCID
	Owner core.PluginName
	IDs   []core.PluginPortID
}

// Plan is a reconfiguration plan presented for verification: the
// vehicle configuration it runs against, the surviving installed
// population (plug-ins the plan does not touch), the ordered steps the
// server would execute, and any concurrent port reservations.
type Plan struct {
	Kind    PlanKind
	Vehicle core.VehicleID
	Conf    core.VehicleConf
	// Installed is the live population untouched by the plan.
	Installed []PluginState
	// Steps are executed in order for deploy; in order for uninstall
	// (the server already reverses install order); for upgrade the
	// in-order path and the reverse compensation path are both walked.
	Steps []Step
	// Reserved are port ids claimed by concurrent operations.
	Reserved []PortReservation
}

// PlanError is the counterexample of a rejected plan: the violated
// invariant class, the minimal path of steps from the current vehicle
// state to the first violating intermediate state, and a human-readable
// detail naming the plug-ins and ports involved.
type PlanError struct {
	Invariant string
	Vehicle   core.VehicleID
	// Step is the step whose post-state (or, for quiesce violations,
	// whose execution) violates the invariant.
	Step string
	// Path lists the executed steps from the initial state up to and
	// including Step — the minimal counterexample path.
	Path []string
	// Detail is the human-readable violation.
	Detail string
}

// Error implements the error interface with the full counterexample.
func (e *PlanError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: plan for vehicle %q violates %s at step %q: %s",
		e.Vehicle, e.Invariant, e.Step, e.Detail)
	if len(e.Path) > 0 {
		fmt.Fprintf(&b, " (path: %s)", strings.Join(e.Path, " -> "))
	}
	return b.String()
}

// VerifyPlan checks every intermediate configuration the plan can reach
// against the invariant catalogue and returns nil or the *PlanError
// with the minimal counterexample path. Deploy walks the install
// prefixes; uninstall the removal prefixes; upgrade walks both the
// in-order swap path and the reverse-order compensation path, which
// together cover every subset of concurrently completed swaps and prove
// rollback reachability from each intermediate state.
func VerifyPlan(p *Plan) error {
	// Structural safe-state requirements per step kind.
	for _, st := range p.Steps {
		switch st.Kind {
		case StepInstall:
			if st.New == nil {
				return &PlanError{Invariant: InvSafeState, Vehicle: p.Vehicle,
					Step: st.describe(), Detail: "install step without a new plug-in state"}
			}
		case StepRemove:
			if st.Old == nil {
				return &PlanError{Invariant: InvSafeState, Vehicle: p.Vehicle,
					Step: st.describe(), Detail: "remove step without the installed plug-in state"}
			}
		case StepSwap:
			if st.New == nil || st.Old == nil {
				return &PlanError{Invariant: InvSafeState, Vehicle: p.Vehicle,
					Step:   st.describe(),
					Detail: "swap step without a compensation package: no safe state is reachable if the swap fails mid-path"}
			}
		default:
			return &PlanError{Invariant: InvSafeState, Vehicle: p.Vehicle,
				Step: st.describe(), Detail: fmt.Sprintf("unknown step kind %d", st.Kind)}
		}
	}
	switch p.Kind {
	case PlanDeploy:
		return errOrNil(p.walk(p.Steps, ""))
	case PlanUninstall:
		return errOrNil(p.walk(p.Steps, ""))
	case PlanUpgrade:
		if e := p.walk(p.Steps, ""); e != nil {
			return e
		}
		// Reverse path: compensation order, also covering out-of-order
		// completion of concurrent swaps.
		rev := make([]Step, len(p.Steps))
		for i, st := range p.Steps {
			rev[len(p.Steps)-1-i] = Step{Kind: st.Kind, Plugin: st.Plugin, New: st.Old, Old: st.New}
		}
		return errOrNil(p.walkFrom(p.finalState(), rev, "rollback: "))
	default:
		return &PlanError{Invariant: InvSafeState, Vehicle: p.Vehicle,
			Detail: fmt.Sprintf("unknown plan kind %q", p.Kind)}
	}
}

// errOrNil keeps a typed-nil *PlanError from escaping as a non-nil
// error interface.
func errOrNil(e *PlanError) error {
	if e == nil {
		return nil
	}
	return e
}

// initialState is the live population before the first step: the
// untouched installed plug-ins plus the Old side of every step.
func (p *Plan) initialState() []*PluginState {
	live := make([]*PluginState, 0, len(p.Installed)+len(p.Steps))
	for i := range p.Installed {
		live = append(live, &p.Installed[i])
	}
	for i := range p.Steps {
		if p.Steps[i].Old != nil {
			live = append(live, p.Steps[i].Old)
		}
	}
	return live
}

// finalState is the live population after every step has applied.
func (p *Plan) finalState() []*PluginState {
	live := make([]*PluginState, 0, len(p.Installed)+len(p.Steps))
	for i := range p.Installed {
		live = append(live, &p.Installed[i])
	}
	for i := range p.Steps {
		if p.Steps[i].New != nil {
			live = append(live, p.Steps[i].New)
		}
	}
	return live
}

// walk runs the path from the plan's initial state.
func (p *Plan) walk(steps []Step, label string) *PlanError {
	return p.walkFrom(p.initialState(), steps, label)
}

// walkFrom executes steps one at a time from the given live population,
// checking the quiesce bound while each swap runs and the full
// invariant catalogue on each post-step state. label prefixes step
// descriptions in the counterexample path (e.g. "rollback: ").
func (p *Plan) walkFrom(start []*PluginState, steps []Step, label string) *PlanError {
	live := append([]*PluginState(nil), start...)
	var path []string
	for i, st := range steps {
		desc := label + st.describe()
		if st.Kind == StepSwap {
			if e := p.checkQuiesce(live, st.Old, desc, append(path, desc)); e != nil {
				return e
			}
		}
		live = applyStep(live, st)
		path = append(path, desc)
		// Plug-ins scheduled later in the same plan: InstallOrder only
		// topo-orders manifest dependencies and same-SW-C links, so a
		// deploy path may transiently hold a link that targets a plug-in
		// installed a few steps later (the paper app's cross-SW-C remote
		// links). Such forward references are resolved within the plan,
		// not orphans — but their directions are still checked against
		// the scheduled state. Symmetrically, a plug-in whose removal is
		// scheduled later is mid-teardown: its own links may already
		// dangle (its partner removed a step earlier) and are not
		// checked, while links from survivors into removed plug-ins stay
		// strict.
		var pending, doomed []*PluginState
		for j := i + 1; j < len(steps); j++ {
			if steps[j].New != nil {
				pending = append(pending, steps[j].New)
			}
			if steps[j].Kind == StepRemove && steps[j].Old != nil {
				doomed = append(doomed, steps[j].Old)
			}
		}
		if e := p.checkState(live, pending, doomed, desc, path); e != nil {
			return e
		}
	}
	return nil
}

// applyStep returns the live population after the step.
func applyStep(live []*PluginState, st Step) []*PluginState {
	out := live[:0:0]
	for _, s := range live {
		if s == st.Old {
			continue
		}
		out = append(out, s)
	}
	if st.New != nil {
		out = append(out, st.New)
	}
	return out
}

// checkState verifies one intermediate configuration: port-id
// collisions (including concurrent reservations), link compatibility
// and orphan detection for every live link, and manifest dependency
// liveness. pending lists plug-ins scheduled later in the same plan:
// they satisfy orphan lookups (forward references within one plan) but
// do not claim port ids and are not themselves checked yet. doomed
// lists live plug-ins whose removal is scheduled later: they still
// claim their port ids but their own links and dependencies are not
// checked — teardown dangles by construction.
func (p *Plan) checkState(live, pending, doomed []*PluginState, step string, path []string) *PlanError {
	fail := func(invariant, format string, args ...any) *PlanError {
		return &PlanError{Invariant: invariant, Vehicle: p.Vehicle, Step: step,
			Path: append([]string(nil), path...), Detail: fmt.Sprintf(format, args...)}
	}

	// Port-id collisions within each SW-C, live vs live and live vs
	// concurrent reservations.
	type owner struct {
		plugin core.PluginName
		kind   string
	}
	ids := make(map[string]map[core.PluginPortID]owner)
	claim := func(ecu core.ECUID, swc core.SWCID, id core.PluginPortID, o owner) *PlanError {
		key := string(ecu) + "/" + string(swc)
		m := ids[key]
		if m == nil {
			m = make(map[core.PluginPortID]owner)
			ids[key] = m
		}
		if prev, ok := m[id]; ok && prev.plugin != o.plugin {
			return fail(InvPortCollision,
				"port id %s on %s is claimed by both %s %s and %s %s",
				id, key, prev.kind, prev.plugin, o.kind, o.plugin)
		}
		m[id] = o
		return nil
	}
	for _, r := range p.Reserved {
		for _, id := range r.IDs {
			if e := claim(r.ECU, r.SWC, id, owner{r.Owner, "reservation for"}); e != nil {
				return e
			}
		}
	}
	for _, s := range live {
		for _, entry := range s.PIC {
			if e := claim(s.ECU, s.SWC, entry.ID, owner{s.Plugin, "plug-in"}); e != nil {
				return e
			}
		}
	}

	// Per-plug-in link and dependency checks. Manifest dependencies are
	// checked strictly against the live population — InstallOrder
	// guarantees a dependency installs before its dependant, so a
	// forward reference here is a genuine ordering bug. Link targets may
	// additionally resolve to pending plug-ins (see walkFrom).
	byName := make(map[core.PluginName]*PluginState, len(live))
	for _, s := range live {
		byName[s.Plugin] = s
	}
	reach := live
	if len(pending) > 0 {
		reach = append(append([]*PluginState(nil), live...), pending...)
	}
	tearing := make(map[*PluginState]bool, len(doomed))
	for _, s := range doomed {
		tearing[s] = true
	}
	for _, s := range live {
		if tearing[s] {
			continue
		}
		for _, req := range s.Requires {
			if byName[req] == nil {
				return fail(InvOrphan,
					"plug-in %s requires %s, which is not live in this state", s.Plugin, req)
			}
		}
		for _, e := range s.PLC {
			if pe := p.checkLink(reach, s, e, fail); pe != nil {
				return pe
			}
		}
	}
	return nil
}

// checkLink verifies one PLC post of one live plug-in against the
// current state: the target must exist (orphan check) and the
// directions and port types must be compatible (link-compat check).
func (p *Plan) checkLink(live []*PluginState, s *PluginState, e core.PLCEntry,
	fail func(invariant, format string, args ...any) *PlanError) *PlanError {
	dir, hasDir := s.portDirection(e.Plugin)
	switch e.Kind {
	case core.LinkNone:
		return nil
	case core.LinkVirtual:
		vp, ok := p.virtualPort(s.ECU, s.SWC, e.Virtual)
		if !ok {
			return fail(InvOrphan,
				"plug-in %s links %s to virtual port %s, which does not exist on %s/%s",
				s.Plugin, e.Plugin, e.Virtual, s.ECU, s.SWC)
		}
		if hasDir && vp.Direction != dir {
			return fail(InvLinkCompat,
				"plug-in %s links its %s port %s to virtual port %s (%s): virtual port links require matching directions",
				s.Plugin, dir, e.Plugin, e.Virtual, vp.Direction)
		}
	case core.LinkVirtualRemote:
		vp, ok := p.virtualPort(s.ECU, s.SWC, e.Virtual)
		if !ok {
			return fail(InvOrphan,
				"plug-in %s links %s to mux virtual port %s, which does not exist on %s/%s",
				s.Plugin, e.Plugin, e.Virtual, s.ECU, s.SWC)
		}
		if vp.Type != core.TypeII {
			return fail(InvLinkCompat,
				"plug-in %s links %s through virtual port %s, which is %s, not the type II mux a remote link needs",
				s.Plugin, e.Plugin, e.Virtual, vp.Type)
		}
		target := findRemotePort(live, s, e.Remote)
		if target == nil {
			return fail(InvOrphan,
				"plug-in %s links %s to remote port %s, which no live plug-in on another SW-C provides",
				s.Plugin, e.Plugin, e.Remote)
		}
		if rdir, ok := target.portDirection(e.Remote); hasDir && ok && rdir == dir {
			return fail(InvLinkCompat,
				"plug-in %s links its %s port %s to remote port %s of %s, which is also %s: remote links connect opposite directions",
				s.Plugin, dir, e.Plugin, e.Remote, target.Plugin, rdir)
		}
	case core.LinkPeer:
		peer := findPeerPort(live, s, e.Peer)
		if peer == nil {
			return fail(InvOrphan,
				"plug-in %s links %s to peer port %s, which no live plug-in on %s/%s provides",
				s.Plugin, e.Plugin, e.Peer, s.ECU, s.SWC)
		}
		if pdir, ok := peer.portDirection(e.Peer); hasDir && ok && pdir == dir {
			return fail(InvLinkCompat,
				"plug-in %s links its %s port %s to peer port %s of %s, which is also %s: peer links connect opposite directions",
				s.Plugin, dir, e.Plugin, e.Peer, peer.Plugin, pdir)
		}
	}
	return nil
}

// checkQuiesce bounds the inbound live-link degree of the plug-in about
// to be quiesced by a swap: every inbound link keeps feeding the
// PIRTE's quiesce buffer while the plug-in is paused.
func (p *Plan) checkQuiesce(live []*PluginState, old *PluginState, step string, path []string) *PlanError {
	if old == nil {
		return nil
	}
	inIDs := make(map[core.PluginPortID]bool, len(old.PIC))
	for _, e := range old.PIC {
		inIDs[e.ID] = true
	}
	degree := 0
	// Links from other live plug-ins into the quiescing one.
	for _, s := range live {
		if s == old {
			continue
		}
		for _, e := range s.PLC {
			switch e.Kind {
			case core.LinkPeer:
				if s.ECU == old.ECU && s.SWC == old.SWC && inIDs[e.Peer] {
					degree++
				}
			case core.LinkVirtualRemote:
				if !(s.ECU == old.ECU && s.SWC == old.SWC) && inIDs[e.Remote] {
					degree++
				}
			}
		}
	}
	// Inbound feeds of the quiescing plug-in's own required ports:
	// virtual-port links (BSW sources) and unconnected ports fed by the
	// PIRTE or external routing.
	for _, e := range old.PLC {
		if dir, ok := old.portDirection(e.Plugin); !ok || dir != core.Required {
			continue
		}
		switch e.Kind {
		case core.LinkNone, core.LinkVirtual:
			degree++
		}
	}
	if degree > MaxQuiesceInDegree {
		return &PlanError{Invariant: InvQuiesceBound, Vehicle: p.Vehicle, Step: step,
			Path: append([]string(nil), path...),
			Detail: fmt.Sprintf("quiescing %s would buffer %d inbound links, exceeding the bound of %d",
				old.Plugin, degree, MaxQuiesceInDegree)}
	}
	return nil
}

// portDirection resolves the direction of one of the plug-in's own
// ports by id, via the PIC name and the manifest port list; ok is false
// when either is unknown.
func (s *PluginState) portDirection(id core.PluginPortID) (core.Direction, bool) {
	name, ok := s.PIC.Name(id)
	if !ok {
		return 0, false
	}
	for _, spec := range s.Ports {
		if spec.Name == name {
			return spec.Direction, true
		}
	}
	return 0, false
}

// virtualPort looks up a virtual port spec in the plan's vehicle conf.
func (p *Plan) virtualPort(ecu core.ECUID, swc core.SWCID, id core.VirtualPortID) (core.VirtualPortSpec, bool) {
	conf, ok := p.Conf.SWC(ecu, swc)
	if !ok {
		return core.VirtualPortSpec{}, false
	}
	for _, vp := range conf.VirtualPorts {
		if vp.ID == id {
			return vp, true
		}
	}
	return core.VirtualPortSpec{}, false
}

// findPeerPort finds the live plug-in on the same SW-C as s that owns
// the given port id.
func findPeerPort(live []*PluginState, s *PluginState, id core.PluginPortID) *PluginState {
	for _, o := range live {
		if o == s || o.ECU != s.ECU || o.SWC != s.SWC {
			continue
		}
		if _, ok := o.PIC.Name(id); ok {
			return o
		}
	}
	return nil
}

// findRemotePort finds a live plug-in on a different SW-C than s that
// owns the given port id.
func findRemotePort(live []*PluginState, s *PluginState, id core.PluginPortID) *PluginState {
	for _, o := range live {
		if o.ECU == s.ECU && o.SWC == s.SWC {
			continue
		}
		if _, ok := o.PIC.Name(id); ok {
			return o
		}
	}
	return nil
}
