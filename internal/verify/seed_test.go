package verify_test

import (
	"flag"
	"testing"
)

// seedFlag threads `-seed` through the differential suites (verifier
// soundness, optimizer translation validation). The default keeps each
// suite's historical fixed seed so CI stays reproducible; passing -seed
// explores a fresh program population, and every run logs the effective
// seed for replay.
var seedFlag = flag.Int64("seed", 0, "randomized-test seed override (0 keeps each test's default)")

func testSeed(t *testing.T, def int64) int64 {
	s := *seedFlag
	if s == 0 {
		s = def
	}
	t.Logf("randomized test seed %d — replay with: go test ./internal/verify -run '^%s$' -seed %d", s, t.Name(), s)
	return s
}
