package verify_test

import (
	"errors"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/verify"
	"dynautosar/internal/vm"
)

// FuzzVerifyBytecode feeds arbitrary bytes through the binary decoder
// into the verifier. Three properties: the verifier never panics, a
// structurally invalid program never reaches the abstract interpreter
// uncaught, and — the differential property — any program the verifier
// accepts runs without stack or call-depth traps.
func FuzzVerifyBytecode(f *testing.F) {
	seed := func(p *vm.Program) {
		enc, err := vm.EncodeProgram(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	seed(&vm.Program{
		Name:     "ok",
		Ports:    []vm.PortDecl{{Name: "out", Direction: core.Provided}},
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpPush, Arg: 7},
			{Op: vm.OpPwr, Arg: 0},
			{Op: vm.OpHalt},
		},
	})
	seed(&vm.Program{
		Name:    "loop",
		Globals: 2,
		Handlers: []vm.Handler{
			{Kind: vm.HandlerInit, Entry: 0},
			{Kind: vm.HandlerMessage, Index: -1, Entry: 0},
		},
		Code: []vm.Instr{
			{Op: vm.OpPush, Arg: 5},
			{Op: vm.OpPush, Arg: 1},
			{Op: vm.OpSub},
			{Op: vm.OpDup},
			{Op: vm.OpJnz, Arg: 1},
			{Op: vm.OpStg, Arg: 0},
			{Op: vm.OpHalt},
		},
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := vm.DecodeProgram(data)
		if err != nil {
			return
		}
		if err := verify.VerifyProgram(prog); err != nil {
			return
		}
		in, err := vm.NewInstance(prog, diffHost{}, 2048)
		if err != nil {
			// Accepted by the verifier but rejected at instantiation:
			// instantiation re-runs Program.Verify, so this would be an
			// inconsistency between the two gates.
			t.Fatalf("verified program failed to instantiate: %v", err)
		}
		for _, run := range []func() error{
			in.Init,
			func() error { return in.Deliver(0, 42) },
		} {
			err := run()
			for _, trap := range []error{vm.ErrStackOverflow, vm.ErrStackUnderflow, vm.ErrCallDepth} {
				if errors.Is(err, trap) {
					t.Fatalf("verifier soundness bug: accepted program trapped with %v\n%s",
						err, vm.Disassemble(prog))
				}
			}
		}
	})
}

// FuzzOptimize feeds arbitrary bytes through the binary decoder into
// the certified optimization pipeline. Property: for any program the
// verifier accepts, OptimizeProgram must succeed — a translation-
// validation failure means the optimizer miscompiled a verified
// program, which is a bug in the passes, never an acceptable rejection.
func FuzzOptimize(f *testing.F) {
	seed := func(p *vm.Program) {
		enc, err := vm.EncodeProgram(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	seed(&vm.Program{ // counted sum loop: rotation + fusion fodder
		Name:     "sum",
		Ports:    []vm.PortDecl{{Name: "n", Direction: core.Required}},
		Globals:  2,
		Handlers: []vm.Handler{{Kind: vm.HandlerMessage, Index: 0, Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpArg}, {Op: vm.OpStg, Arg: 0},
			{Op: vm.OpPush}, {Op: vm.OpStg, Arg: 1},
			{Op: vm.OpLdg}, {Op: vm.OpJz, Arg: 15},
			{Op: vm.OpLdg, Arg: 1}, {Op: vm.OpLdg}, {Op: vm.OpAdd}, {Op: vm.OpStg, Arg: 1},
			{Op: vm.OpLdg}, {Op: vm.OpPush, Arg: 1}, {Op: vm.OpSub}, {Op: vm.OpStg},
			{Op: vm.OpJmp, Arg: 4},
			{Op: vm.OpLdg, Arg: 1}, {Op: vm.OpPop}, {Op: vm.OpRet},
		},
	})
	seed(&vm.Program{ // constant folding + dead store fodder
		Name:     "fold",
		Globals:  1,
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpPush, Arg: 6}, {Op: vm.OpPush, Arg: 7}, {Op: vm.OpMul},
			{Op: vm.OpStg}, {Op: vm.OpPush, Arg: 2}, {Op: vm.OpStg},
			{Op: vm.OpRet},
		},
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := vm.DecodeProgram(data)
		if err != nil {
			return
		}
		if err := verify.VerifyProgram(prog); err != nil {
			return
		}
		if _, _, err := verify.OptimizeProgram(prog); err != nil {
			t.Fatalf("optimizer failed translation validation on a verified program: %v\n%s",
				err, vm.Disassemble(prog))
		}
	})
}

// FuzzVerifyPlan decodes arbitrary bytes into a small reconfiguration
// plan — plug-in placements, port assignments, links and step kinds all
// driven by the input — and checks that the plan verifier always
// terminates with a verdict, never a panic, and that every rejection
// carries a classified invariant.
func FuzzVerifyPlan(f *testing.F) {
	f.Add([]byte{1, 0x12, 0x03, 0x21, 0x47, 2, 0x55})
	f.Add([]byte{3, 0x01, 0x80, 0xff, 0x10, 0x23, 0x31, 0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		conf := testConf()
		kinds := []verify.PlanKind{verify.PlanDeploy, verify.PlanUninstall, verify.PlanUpgrade}
		plan := &verify.Plan{
			Kind: kinds[int(next())%len(kinds)], Vehicle: "VIN-FUZZ", Conf: conf,
		}
		names := []core.PluginName{"A", "B", "C", "D"}
		genState := func(name core.PluginName) *verify.PluginState {
			b := next()
			swc := conf.SWCs[int(b>>4)%len(conf.SWCs)]
			s := &verify.PluginState{Plugin: name, ECU: swc.ECU, SWC: swc.SWC}
			nports := int(b&0x3) + 1
			for i := 0; i < nports; i++ {
				pb := next()
				dir := core.Provided
				if pb&1 == 1 {
					dir = core.Required
				}
				pname := string(name) + "p" + string(rune('0'+i))
				id := core.PluginPortID(pb >> 4)
				s.Ports = append(s.Ports, core.PluginPortSpec{Name: pname, Direction: dir})
				s.PIC = append(s.PIC, core.PICEntry{Name: pname, ID: id})
				lb := next()
				e := core.PLCEntry{Plugin: id}
				switch lb & 0x3 {
				case 0:
					e.Kind = core.LinkNone
				case 1:
					e.Kind = core.LinkVirtual
					e.Virtual = core.VirtualPortID(lb >> 4)
				case 2:
					e.Kind = core.LinkVirtualRemote
					e.Virtual = core.VirtualPortID(int(lb>>4) % 5)
					e.Remote = core.PluginPortID(next() >> 4)
				case 3:
					e.Kind = core.LinkPeer
					e.Peer = core.PluginPortID(lb >> 4)
				}
				s.PLC = append(s.PLC, e)
			}
			if b&0x8 != 0 {
				s.Requires = append(s.Requires, names[int(next())%len(names)])
			}
			return s
		}
		nsteps := int(next())%3 + 1
		for i := 0; i < nsteps; i++ {
			name := names[i%len(names)]
			var st verify.Step
			switch plan.Kind {
			case verify.PlanDeploy:
				st = verify.Step{Kind: verify.StepInstall, Plugin: name, New: genState(name)}
			case verify.PlanUninstall:
				st = verify.Step{Kind: verify.StepRemove, Plugin: name, Old: genState(name)}
			case verify.PlanUpgrade:
				st = verify.Step{Kind: verify.StepSwap, Plugin: name,
					New: genState(name), Old: genState(name)}
			}
			plan.Steps = append(plan.Steps, st)
		}
		if next()&1 == 1 {
			plan.Installed = append(plan.Installed, *genState("Z"))
		}
		if next()&1 == 1 {
			plan.Reserved = append(plan.Reserved, verify.PortReservation{
				ECU: "E1", SWC: "S1", Owner: "R",
				IDs: []core.PluginPortID{core.PluginPortID(next() >> 4)},
			})
		}
		err := verify.VerifyPlan(plan)
		if err == nil {
			return
		}
		var pe *verify.PlanError
		if !errors.As(err, &pe) {
			t.Fatalf("rejection is not a *PlanError: %v (%T)", err, err)
		}
		switch pe.Invariant {
		case verify.InvLinkCompat, verify.InvOrphan, verify.InvPortCollision,
			verify.InvQuiesceBound, verify.InvSafeState:
		default:
			t.Fatalf("rejection carries unclassified invariant %q: %v", pe.Invariant, pe)
		}
	})
}
