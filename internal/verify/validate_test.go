package verify_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/sim"
	"dynautosar/internal/verify"
	"dynautosar/internal/vm"
)

// --- random safe-program generator ---------------------------------------------

// progBuilder assembles structured random programs that are safe by
// construction (every fragment leaves the stack balanced, loops are
// counted), so the optimizer differential suite runs on a population
// the verifier accepts rather than mostly-rejected noise.
type progBuilder struct {
	rng  *rand.Rand
	code []vm.Instr
}

func (b *progBuilder) emit(op vm.Op, arg ...int32) int32 {
	ins := vm.Instr{Op: op}
	if len(arg) > 0 {
		ins.Arg = arg[0]
	}
	b.code = append(b.code, ins)
	return int32(len(b.code) - 1)
}

func (b *progBuilder) patch(at int32) { b.code[at].Arg = int32(len(b.code)) }

const genGlobals = 4

func (b *progBuilder) g() int32 { return int32(b.rng.Intn(genGlobals)) }

var genBinops = []vm.Op{
	vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpMin, vm.OpMax,
	vm.OpAnd, vm.OpOr, vm.OpXor, vm.OpShl, vm.OpShr,
	vm.OpEq, vm.OpNe, vm.OpLt, vm.OpLe, vm.OpGt, vm.OpGe,
}

// fragment emits one stack-balanced unit; depth limits loop/if nesting.
func (b *progBuilder) fragment(depth int) {
	switch k := b.rng.Intn(12); {
	case k == 0: // constant arithmetic into a global (folding fodder)
		b.emit(vm.OpPush, int32(b.rng.Intn(21)-10))
		b.emit(vm.OpPush, int32(b.rng.Intn(21)-10))
		b.emit(genBinops[b.rng.Intn(len(genBinops))])
		b.emit(vm.OpStg, b.g())
	case k == 1: // load-op-store
		b.emit(vm.OpLdg, b.g())
		b.emit(vm.OpLdg, b.g())
		b.emit(genBinops[b.rng.Intn(len(genBinops))])
		b.emit(vm.OpStg, b.g())
	case k == 2: // arg combine
		b.emit(vm.OpArg)
		b.emit(vm.OpPush, int32(b.rng.Intn(9)+1))
		b.emit(genBinops[b.rng.Intn(len(genBinops))])
		b.emit(vm.OpStg, b.g())
	case k == 3: // possibly-dead store pair
		g := b.g()
		b.emit(vm.OpPush, int32(b.rng.Intn(100)))
		b.emit(vm.OpStg, g)
		b.emit(vm.OpPush, int32(b.rng.Intn(100)))
		b.emit(vm.OpStg, g)
	case k == 4: // port write
		b.emit(vm.OpLdg, b.g())
		b.emit(vm.OpPwr, 1)
	case k == 5: // dead pure code
		b.emit(vm.OpLdg, b.g())
		b.emit(vm.OpPop)
		b.emit(vm.OpNop)
	case k == 6: // constant branch (simplification fodder)
		br := vm.OpJz
		if b.rng.Intn(2) == 0 {
			br = vm.OpJnz
		}
		b.emit(vm.OpPush, int32(b.rng.Intn(2)))
		j := b.emit(br, 0)
		b.fragment(0)
		b.patch(j)
	case k == 7 && depth < 2: // data-dependent if/else
		b.emit(vm.OpLdg, b.g())
		jz := b.emit(vm.OpJz, 0)
		b.fragment(depth + 1)
		jmp := b.emit(vm.OpJmp, 0)
		b.patch(jz)
		b.fragment(depth + 1)
		b.patch(jmp)
	case k == 8 && depth < 2: // counted while-loop (rotation fodder)
		c := b.g()
		b.emit(vm.OpPush, int32(b.rng.Intn(5)+1))
		b.emit(vm.OpStg, c)
		loop := b.emit(vm.OpLdg, c)
		jz := b.emit(vm.OpJz, 0)
		b.fragment(depth + 1)
		b.emit(vm.OpLdg, c)
		b.emit(vm.OpPush, 1)
		b.emit(vm.OpSub)
		b.emit(vm.OpStg, c)
		b.emit(vm.OpJmp, loop)
		b.patch(jz)
	case k == 9: // stack shuffle, balanced
		b.emit(vm.OpPush, int32(b.rng.Intn(50)))
		b.emit(vm.OpPush, int32(b.rng.Intn(50)))
		b.emit(vm.OpSwap)
		b.emit(vm.OpSub)
		b.emit(vm.OpStg, b.g())
	case k == 10: // log + timer churn
		b.emit(vm.OpPush, int32(b.rng.Intn(1000)))
		b.emit(vm.OpLog, 0)
		b.emit(vm.OpPop)
		if b.rng.Intn(2) == 0 {
			b.emit(vm.OpPush, int32(b.rng.Intn(500)+1))
			b.emit(vm.OpTset, int32(b.rng.Intn(vm.MaxTimers)))
		} else {
			b.emit(vm.OpTclr, int32(b.rng.Intn(vm.MaxTimers)))
		}
	default: // unary chain
		b.emit(vm.OpLdg, b.g())
		for i := b.rng.Intn(3); i >= 0; i-- {
			b.emit([]vm.Op{vm.OpNeg, vm.OpAbs, vm.OpNot}[b.rng.Intn(3)])
		}
		b.emit(vm.OpStg, b.g())
	}
}

func genSafeProgram(rng *rand.Rand) *vm.Program {
	b := &progBuilder{rng: rng}
	// Message handler body.
	msgEntry := int32(0)
	for i := rng.Intn(6) + 2; i > 0; i-- {
		b.fragment(0)
	}
	b.emit(vm.OpRet)
	// Timer handler body.
	timerEntry := int32(len(b.code))
	for i := rng.Intn(3) + 1; i > 0; i-- {
		b.fragment(0)
	}
	b.emit(vm.OpHalt)
	return &vm.Program{
		Name:    fmt.Sprintf("gen%d", rng.Intn(1<<30)),
		Version: "1.0",
		Ports: []vm.PortDecl{
			{Name: "in", Direction: core.Required},
			{Name: "out", Direction: core.Provided},
		},
		Globals: genGlobals,
		Consts:  []string{"t"},
		Handlers: []vm.Handler{
			{Kind: vm.HandlerMessage, Index: 0, Entry: msgEntry},
			{Kind: vm.HandlerTimer, Index: 0, Entry: timerEntry},
		},
		Code: b.code,
	}
}

// --- differential infrastructure -----------------------------------------------

type diffTraceHost struct{ events []string }

func (h *diffTraceHost) PortWrite(port int, v int64) error {
	h.events = append(h.events, fmt.Sprintf("pw %d %d", port, v))
	return nil
}
func (h *diffTraceHost) SetTimer(id int, d sim.Duration) {
	h.events = append(h.events, fmt.Sprintf("set %d %v", id, d))
}
func (h *diffTraceHost) ClearTimer(id int) { h.events = append(h.events, fmt.Sprintf("clr %d", id)) }
func (h *diffTraceHost) Now() sim.Time     { return 0 }
func (h *diffTraceHost) Log(m string, v int64) {
	h.events = append(h.events, fmt.Sprintf("log %q %d", m, v))
}

func trapClass(err error) error {
	for _, s := range []error{
		vm.ErrBudget, vm.ErrStackOverflow, vm.ErrStackUnderflow,
		vm.ErrDivByZero, vm.ErrCallDepth, vm.ErrStopped, vm.ErrNoHandler,
	} {
		if errors.Is(err, s) {
			return s
		}
	}
	return err
}

// diffRun drives both programs through an identical random activation
// sequence and returns a description of the first divergence under the
// optimizer contract (budget faults stop the comparison; the optimized
// side must never fault first or run more instructions).
func diffRun(orig, opt *vm.Program, rng *rand.Rand, budget int) string {
	ho, hp := &diffTraceHost{}, &diffTraceHost{}
	io, err := vm.NewInstance(orig, ho, budget)
	if err != nil {
		return fmt.Sprintf("original instance: %v", err)
	}
	ip, err := vm.NewInstance(opt, hp, budget)
	if err != nil {
		return fmt.Sprintf("optimized instance: %v", err)
	}
	for step := 0; step < 40; step++ {
		var eo, ep error
		var what string
		switch rng.Intn(3) {
		case 0, 1:
			v := int64(rng.Intn(2001) - 1000)
			what = fmt.Sprintf("step %d: deliver %d", step, v)
			eo, ep = io.Deliver(0, v), ip.Deliver(0, v)
		case 2:
			what = fmt.Sprintf("step %d: timer", step)
			eo, ep = io.Timer(0), ip.Timer(0)
		}
		bo, bp := errors.Is(eo, vm.ErrBudget), errors.Is(ep, vm.ErrBudget)
		if bp && !bo {
			return what + ": optimized program budget-faulted but original did not"
		}
		if bo || bp {
			return "" // states fork at a budget fault; contract holds up to here
		}
		if trapClass(eo) != trapClass(ep) {
			return fmt.Sprintf("%s: result diverged: %v vs %v", what, eo, ep)
		}
		if ip.Instructions > io.Instructions {
			return fmt.Sprintf("%s: optimized ran more instructions (%d > %d)", what, ip.Instructions, io.Instructions)
		}
		if fmt.Sprint(ho.events) != fmt.Sprint(hp.events) {
			return fmt.Sprintf("%s: traces diverged:\n  orig: %v\n  opt:  %v", what, ho.events, hp.events)
		}
		if fmt.Sprint(io.ExportGlobals()) != fmt.Sprint(ip.ExportGlobals()) {
			return fmt.Sprintf("%s: globals diverged: %v vs %v", what, io.ExportGlobals(), ip.ExportGlobals())
		}
	}
	return ""
}

// --- the suites ----------------------------------------------------------------

// TestDifferentialOptimizer is the optimizer's main soundness suite:
// 4000 random structured programs, each certified by OptimizeProgram
// (re-verification + battery) and then differentially executed against
// its original over a fresh random activation sequence at several
// budgets. The suite must be non-vacuous: a healthy majority of the
// population has to actually change under optimization.
func TestDifferentialOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(testSeed(t, 20260808)))
	changed := 0
	for i := 0; i < 4000; i++ {
		prog := genSafeProgram(rng)
		if err := verify.VerifyProgram(prog); err != nil {
			t.Fatalf("generator produced an unverifiable program: %v\n%s", err, vm.Disassemble(prog))
		}
		opt, rep, err := verify.OptimizeProgram(prog)
		if err != nil {
			t.Fatalf("program %d failed the translation-validation gate: %v\n%s", i, err, vm.Disassemble(prog))
		}
		if !rep.Stats.Changed() {
			continue
		}
		changed++
		for _, budget := range []int{vm.DefaultBudget, 300, 45} {
			if d := diffRun(prog, opt, rng, budget); d != "" {
				t.Fatalf("program %d (budget %d): %s\noriginal:\n%s\noptimized:\n%s",
					i, budget, d, vm.Disassemble(prog), vm.Disassemble(opt))
			}
		}
	}
	if changed < 2000 {
		t.Fatalf("only %d/4000 programs changed under optimization; generator too tame", changed)
	}
	t.Logf("differential optimizer: %d/4000 programs optimized", changed)
}

// TestOptimizeProgramIdentity pins that an already-minimal program
// passes through untouched (same pointer, zero stats).
func TestOptimizeProgramIdentity(t *testing.T) {
	p := &vm.Program{
		Name:     "tiny",
		Ports:    []vm.PortDecl{{Name: "out", Direction: core.Provided}},
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpPush, Arg: 7},
			{Op: vm.OpPwr, Arg: 0},
			{Op: vm.OpRet},
		},
	}
	opt, rep, err := verify.OptimizeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Changed() || opt != p {
		t.Fatalf("minimal program was rewritten: %+v", rep.Stats)
	}
}

// TestOptimizeProgramRejectsUnverifiable pins the gate's first stage.
func TestOptimizeProgramRejectsUnverifiable(t *testing.T) {
	p := &vm.Program{
		Name:     "bad",
		Handlers: []vm.Handler{{Kind: vm.HandlerInit, Entry: 0}},
		Code:     []vm.Instr{{Op: vm.OpPop}, {Op: vm.OpHalt}},
	}
	if _, _, err := verify.OptimizeProgram(p); err == nil {
		t.Fatal("unverifiable program passed OptimizeProgram")
	}
}
