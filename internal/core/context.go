package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the three deployment contexts of the dynamic
// component model (paper sections 3.1.2 and 3.2.2):
//
//   - PIC, the Port Initialization Context: a mapping between developer
//     chosen plug-in port names and SW-C-scope unique port ids;
//   - PLC, the Port Linking Context: the connections to establish between
//     the new plug-in ports and the PIRTE's virtual ports (or directly
//     between plug-in ports on the same SW-C);
//   - ECC, the External Connection Context: location information for
//     external resources together with the in-vehicle routing of their
//     messages.
//
// The textual syntax follows the paper's own notation, e.g. the OP plug-in
// of section 4 ships with the PLC {P0-V3, P1-V3, P2-V4, P3-V5} and the COM
// plug-in with {P0-, P1-, P2-V0.P0, P3-V0.P1}.

// PICEntry maps one developer-chosen plug-in port name to the SW-C-scope
// unique id assigned by the trusted server.
type PICEntry struct {
	Name string
	ID   PluginPortID
}

// PIC is the Port Initialization Context: the ordered set of port
// name-to-id assignments for one plug-in on one SW-C.
type PIC []PICEntry

// Lookup returns the id assigned to the named port.
func (p PIC) Lookup(name string) (PluginPortID, bool) {
	for _, e := range p {
		if e.Name == name {
			return e.ID, true
		}
	}
	return 0, false
}

// Name returns the developer name of the port with the given id.
func (p PIC) Name(id PluginPortID) (string, bool) {
	for _, e := range p {
		if e.ID == id {
			return e.Name, true
		}
	}
	return "", false
}

// IDs returns all assigned port ids in declaration order.
func (p PIC) IDs() []PluginPortID {
	ids := make([]PluginPortID, len(p))
	for i, e := range p {
		ids[i] = e.ID
	}
	return ids
}

// Validate checks that names are non-empty and that both names and ids are
// unique within the context, the invariant the server's id assignment must
// maintain (paper section 3.2.2).
func (p PIC) Validate() error {
	names := make(map[string]bool, len(p))
	ids := make(map[PluginPortID]bool, len(p))
	for _, e := range p {
		if e.Name == "" {
			return fmt.Errorf("core: PIC entry %s has an empty port name", e.ID)
		}
		if strings.ContainsAny(e.Name, "{}:,") {
			return fmt.Errorf("core: PIC port name %q contains reserved characters", e.Name)
		}
		if names[e.Name] {
			return fmt.Errorf("core: PIC has duplicate port name %q", e.Name)
		}
		if ids[e.ID] {
			return fmt.Errorf("core: PIC has duplicate port id %s", e.ID)
		}
		if e.ID < 0 {
			return fmt.Errorf("core: PIC port %q has negative id", e.Name)
		}
		names[e.Name] = true
		ids[e.ID] = true
	}
	return nil
}

// String renders the context as "{name:P0, other:P1}".
func (p PIC) String() string {
	parts := make([]string, len(p))
	for i, e := range p {
		parts[i] = e.Name + ":" + e.ID.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ParsePIC parses the String form of a PIC.
func ParsePIC(s string) (PIC, error) {
	body, err := unbrace(s)
	if err != nil {
		return nil, fmt.Errorf("core: PIC: %v", err)
	}
	if body == "" {
		return PIC{}, nil
	}
	var pic PIC
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		name, idStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("core: PIC entry %q: want name:P<n>", part)
		}
		id, err := ParsePluginPortID(idStr)
		if err != nil {
			return nil, fmt.Errorf("core: PIC entry %q: %v", part, err)
		}
		pic = append(pic, PICEntry{Name: strings.TrimSpace(name), ID: id})
	}
	if err := pic.Validate(); err != nil {
		return nil, err
	}
	return pic, nil
}

// LinkKind classifies one PLC post.
type LinkKind uint8

const (
	// LinkNone ("P0-") leaves the plug-in port unconnected to any virtual
	// port; the PIRTE communicates with it directly. In the paper's COM
	// plug-in, the externally fed ports P0 and P1 are of this kind.
	LinkNone LinkKind = iota
	// LinkVirtual ("P3-V5") connects the plug-in port to a virtual port on
	// the same SW-C.
	LinkVirtual
	// LinkVirtualRemote ("P2-V0.P0") connects the plug-in port to a type II
	// virtual port and names the recipient plug-in port id on the remote
	// SW-C; the PIRTE attaches that id to outgoing data (paper 3.1.3).
	LinkVirtualRemote
	// LinkPeer ("P2-P5") links two plug-in ports on the same SW-C directly
	// in the PIRTE, without touching any virtual port (paper 3.1.2).
	LinkPeer
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkNone:
		return "none"
	case LinkVirtual:
		return "virtual"
	case LinkVirtualRemote:
		return "virtual+remote"
	case LinkPeer:
		return "peer"
	}
	return fmt.Sprintf("LinkKind(%d)", uint8(k))
}

// PLCEntry is one post of a Port Linking Context.
type PLCEntry struct {
	Kind   LinkKind
	Plugin PluginPortID
	// Virtual is set for LinkVirtual and LinkVirtualRemote.
	Virtual VirtualPortID
	// Remote is the recipient plug-in port id on the far SW-C, set for
	// LinkVirtualRemote.
	Remote PluginPortID
	// Peer is the local partner plug-in port, set for LinkPeer.
	Peer PluginPortID
}

// String renders the post in the paper's notation.
func (e PLCEntry) String() string {
	switch e.Kind {
	case LinkNone:
		return e.Plugin.String() + "-"
	case LinkVirtual:
		return e.Plugin.String() + "-" + e.Virtual.String()
	case LinkVirtualRemote:
		return e.Plugin.String() + "-" + e.Virtual.String() + "." + e.Remote.String()
	case LinkPeer:
		return e.Plugin.String() + "-" + e.Peer.String()
	}
	return e.Plugin.String() + "-?"
}

// PLC is the Port Linking Context: the ordered list of connection posts for
// one plug-in.
type PLC []PLCEntry

// String renders the context as, e.g., "{P0-V3, P1-V3, P2-V4, P3-V5}".
func (p PLC) String() string {
	parts := make([]string, len(p))
	for i, e := range p {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Lookup returns the (first) post for the given plug-in port.
func (p PLC) Lookup(id PluginPortID) (PLCEntry, bool) {
	for _, e := range p {
		if e.Plugin == id {
			return e, true
		}
	}
	return PLCEntry{}, false
}

// Validate checks that each plug-in port appears at most once and that each
// post's fields match its kind.
func (p PLC) Validate() error {
	seen := make(map[PluginPortID]bool, len(p))
	for _, e := range p {
		if seen[e.Plugin] {
			return fmt.Errorf("core: PLC has duplicate post for %s", e.Plugin)
		}
		seen[e.Plugin] = true
		switch e.Kind {
		case LinkNone, LinkVirtual, LinkVirtualRemote:
		case LinkPeer:
			if e.Peer == e.Plugin {
				return fmt.Errorf("core: PLC post %s links a port to itself", e.Plugin)
			}
		default:
			return fmt.Errorf("core: PLC post %s has invalid kind %d", e.Plugin, e.Kind)
		}
	}
	return nil
}

// ParsePLC parses the String form of a PLC, e.g.
// "{P0-, P1-, P2-V0.P0, P3-V0.P1}".
func ParsePLC(s string) (PLC, error) {
	body, err := unbrace(s)
	if err != nil {
		return nil, fmt.Errorf("core: PLC: %v", err)
	}
	if body == "" {
		return PLC{}, nil
	}
	var plc PLC
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		left, right, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("core: PLC post %q: want P<n>-<target>", part)
		}
		plug, err := ParsePluginPortID(left)
		if err != nil {
			return nil, fmt.Errorf("core: PLC post %q: %v", part, err)
		}
		entry := PLCEntry{Plugin: plug}
		right = strings.TrimSpace(right)
		switch {
		case right == "":
			entry.Kind = LinkNone
		case strings.HasPrefix(right, "V"):
			vStr, rStr, hasRemote := strings.Cut(right, ".")
			v, err := ParseVirtualPortID(vStr)
			if err != nil {
				return nil, fmt.Errorf("core: PLC post %q: %v", part, err)
			}
			entry.Virtual = v
			if hasRemote {
				r, err := ParsePluginPortID(rStr)
				if err != nil {
					return nil, fmt.Errorf("core: PLC post %q: %v", part, err)
				}
				entry.Kind = LinkVirtualRemote
				entry.Remote = r
			} else {
				entry.Kind = LinkVirtual
			}
		case strings.HasPrefix(right, "P"):
			peer, err := ParsePluginPortID(right)
			if err != nil {
				return nil, fmt.Errorf("core: PLC post %q: %v", part, err)
			}
			entry.Kind = LinkPeer
			entry.Peer = peer
		default:
			return nil, fmt.Errorf("core: PLC post %q: unknown target %q", part, right)
		}
		plc = append(plc, entry)
	}
	if err := plc.Validate(); err != nil {
		return nil, err
	}
	return plc, nil
}

// ECCEntry is one post of an External Connection Context: the location of
// the external resource, the message id, and the internal routing
// information (recipient ECU and plug-in port). The COM plug-in of section
// 4 ships with {{111.22.33.44:56789, ECU1, 'Wheels', P0}, ...}.
type ECCEntry struct {
	// Endpoint is the external resource location, e.g. "111.22.33.44:56789".
	Endpoint string
	// ECU is the recipient ECU inside the vehicle.
	ECU ECUID
	// MessageID selects the destination port when a message arrives.
	MessageID string
	// Port is the recipient plug-in port.
	Port PluginPortID
}

// String renders "{111.22.33.44:56789, ECU1, 'Wheels', P0}".
func (e ECCEntry) String() string {
	return fmt.Sprintf("{%s, %s, '%s', %s}", e.Endpoint, e.ECU, e.MessageID, e.Port)
}

// ECC is the External Connection Context: the list of external connection
// posts shipped with a plug-in that communicates with the outside world.
type ECC []ECCEntry

// String renders "{{...}, {...}}".
func (e ECC) String() string {
	parts := make([]string, len(e))
	for i, entry := range e {
		parts[i] = entry.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Endpoints returns the distinct external endpoints in first-seen order;
// the ECM PIRTE opens one communication link per endpoint.
func (e ECC) Endpoints() []string {
	seen := make(map[string]bool)
	var out []string
	for _, entry := range e {
		if !seen[entry.Endpoint] {
			seen[entry.Endpoint] = true
			out = append(out, entry.Endpoint)
		}
	}
	return out
}

// RouteByPort returns the (first) entry whose in-vehicle destination is
// the given plug-in port, the reverse lookup used for outbound external
// messages.
func (e ECC) RouteByPort(port PluginPortID) (ECCEntry, bool) {
	for _, entry := range e {
		if entry.Port == port {
			return entry, true
		}
	}
	return ECCEntry{}, false
}

// Route returns the in-vehicle destination for the given message id.
func (e ECC) Route(messageID string) (ECCEntry, bool) {
	for _, entry := range e {
		if entry.MessageID == messageID {
			return entry, true
		}
	}
	return ECCEntry{}, false
}

// Validate checks that entries are well-formed and message ids unique.
func (e ECC) Validate() error {
	ids := make(map[string]bool, len(e))
	for _, entry := range e {
		if entry.Endpoint == "" {
			return fmt.Errorf("core: ECC entry %q has empty endpoint", entry.MessageID)
		}
		if entry.ECU == "" {
			return fmt.Errorf("core: ECC entry %q has empty ECU", entry.MessageID)
		}
		if entry.MessageID == "" {
			return fmt.Errorf("core: ECC entry for %s has empty message id", entry.Port)
		}
		if ids[entry.MessageID] {
			return fmt.Errorf("core: ECC has duplicate message id %q", entry.MessageID)
		}
		ids[entry.MessageID] = true
	}
	return nil
}

// ParseECC parses the String form of an ECC.
func ParseECC(s string) (ECC, error) {
	body, err := unbrace(s)
	if err != nil {
		return nil, fmt.Errorf("core: ECC: %v", err)
	}
	if strings.TrimSpace(body) == "" {
		return ECC{}, nil
	}
	var ecc ECC
	rest := body
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] == ',' {
			rest = rest[1:]
			continue
		}
		if rest[0] != '{' {
			return nil, fmt.Errorf("core: ECC: expected '{' at %q", rest)
		}
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return nil, fmt.Errorf("core: ECC: unterminated entry at %q", rest)
		}
		fields := strings.Split(rest[1:end], ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("core: ECC entry %q: want 4 fields", rest[:end+1])
		}
		msgID := strings.TrimSpace(fields[2])
		msgID = strings.Trim(msgID, "'")
		port, perr := ParsePluginPortID(fields[3])
		if perr != nil {
			return nil, fmt.Errorf("core: ECC entry %q: %v", rest[:end+1], perr)
		}
		ecc = append(ecc, ECCEntry{
			Endpoint:  strings.TrimSpace(fields[0]),
			ECU:       ECUID(strings.TrimSpace(fields[1])),
			MessageID: msgID,
			Port:      port,
		})
		rest = rest[end+1:]
	}
	if err := ecc.Validate(); err != nil {
		return nil, err
	}
	return ecc, nil
}

// Context bundles the deployment contexts shipped inside one installation
// package. ECC is only present for plug-ins that communicate externally.
type Context struct {
	PIC PIC
	PLC PLC
	ECC ECC
}

// Validate checks all parts and their cross-consistency: every PLC post and
// every ECC post must refer to a port assigned in the PIC.
func (c Context) Validate() error {
	if err := c.PIC.Validate(); err != nil {
		return err
	}
	if err := c.PLC.Validate(); err != nil {
		return err
	}
	if err := c.ECC.Validate(); err != nil {
		return err
	}
	known := make(map[PluginPortID]bool, len(c.PIC))
	for _, e := range c.PIC {
		known[e.ID] = true
	}
	for _, e := range c.PLC {
		if !known[e.Plugin] {
			return fmt.Errorf("core: PLC post %s refers to a port not in the PIC", e.Plugin)
		}
		// Peer targets are SW-C-scope ids that may belong to another
		// plug-in on the same SW-C; the PIRTE resolves them at install
		// time.
	}
	for _, e := range c.ECC {
		if !known[e.Port] {
			return fmt.Errorf("core: ECC entry %q routes to a port not in the PIC", e.MessageID)
		}
	}
	return nil
}

// SortedPortNames returns the PIC port names sorted alphabetically; useful
// for deterministic reporting.
func (c Context) SortedPortNames() []string {
	names := make([]string, len(c.PIC))
	for i, e := range c.PIC {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// unbrace strips one layer of surrounding braces, tolerating whitespace.
func unbrace(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return "", fmt.Errorf("missing surrounding braces in %q", s)
	}
	return strings.TrimSpace(s[1 : len(s)-1]), nil
}
