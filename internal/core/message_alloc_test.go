package core

import (
	"bytes"
	"io"
	"testing"
)

// TestAppendBinaryMatchesMarshal pins that the in-place framing of
// AppendBinary is byte-identical to MarshalBinary, including when it
// extends a non-empty buffer.
func TestAppendBinaryMatchesMarshal(t *testing.T) {
	msgs := []Message{
		{Type: MsgAck, Seq: 7},
		{Type: MsgInstall, Plugin: "OP", ECU: "ECU2", SWC: "SW-C2", Seq: 42,
			Payload: bytes.Repeat([]byte{0xAB}, 300)},
		{Type: MsgNack, Plugin: "COM", Payload: []byte("quota exceeded")},
		{Type: MsgExternal},
	}
	for i, m := range msgs {
		want, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		prefix := []byte("prefix-")
		got, err := m.AppendBinary(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, prefix) {
			t.Fatalf("msg %d: AppendBinary clobbered the prefix", i)
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("msg %d: AppendBinary differs from MarshalBinary", i)
		}
		var back Message
		if err := back.UnmarshalBinary(got[len(prefix):]); err != nil {
			t.Fatalf("msg %d: round trip: %v", i, err)
		}
	}
}

// TestUnmarshalInterned pins that the interned decode matches the plain
// decode and stops allocating once its identifier cache is warm.
func TestUnmarshalInterned(t *testing.T) {
	m := Message{Type: MsgAck, Plugin: "OP", ECU: "ECU2", SWC: "SW-C2", Seq: 9,
		Payload: []byte{1, 2, 3}}
	frame, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var in Interner
	var got Message
	if err := got.UnmarshalBinaryInterned(frame, &in); err != nil {
		t.Fatal(err)
	}
	if got.Plugin != m.Plugin || got.ECU != m.ECU || got.SWC != m.SWC ||
		got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("interned decode = %+v, want %+v", got, m)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		var msg Message
		if err := msg.UnmarshalBinaryInterned(frame, &in); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("interned decode: %v allocs/op with warm cache, want 0", allocs)
	}
}

// TestInternerCap pins that the cache stops growing at its cap but keeps
// returning correct strings.
func TestInternerCap(t *testing.T) {
	var in Interner
	for i := 0; i < maxInternEntries+100; i++ {
		b := []byte{byte(i), byte(i >> 8), 'x'}
		if got := in.Intern(b); got != string(b) {
			t.Fatalf("intern %d returned %q", i, got)
		}
	}
	if len(in.m) > maxInternEntries {
		t.Fatalf("interner grew to %d entries (cap %d)", len(in.m), maxInternEntries)
	}
}

// TestWriteMessageAllocFree pins the pooled encoder of the ack path: a
// steady writer stream reuses its frame buffers.
func TestWriteMessageAllocFree(t *testing.T) {
	m := Message{Type: MsgAck, Plugin: "OP", ECU: "ECU2", SWC: "SW-C2", Seq: 1}
	if err := WriteMessage(io.Discard, m); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := WriteMessage(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("WriteMessage: %v allocs/op in steady state, want 0", allocs)
	}
}
