package core

import (
	"encoding/json"
	"fmt"
)

// The configuration fingerprints exchanged between OEMs and the trusted
// server (paper section 3.2.1): the HW conf describes the hardware
// resources available to plug-ins, the SystemSW conf the exposed API in
// terms of virtual ports of the available plug-in SW-Cs. Together they
// form the Vehicle Conf against which APP compatibility is checked.

// SWCConf describes one plug-in SW-C of a vehicle: its location, resource
// quotas (HW conf) and exposed virtual ports (SystemSW conf).
type SWCConf struct {
	ECU ECUID `json:"ecu"`
	SWC SWCID `json:"swc"`
	// MemoryQuota is the total global words available to plug-ins.
	MemoryQuota int `json:"memoryQuota"`
	// MaxPlugins bounds the number of installed plug-ins (0 = unlimited).
	MaxPlugins int `json:"maxPlugins"`
	// ECM marks the SW-C hosting the external communication manager.
	ECM bool `json:"ecm"`
	// VirtualPorts is the static API exposed to plug-ins.
	VirtualPorts []VirtualPortSpec `json:"virtualPorts"`
}

// VirtualPort looks up a virtual port by its OEM-facing name.
func (c SWCConf) VirtualPort(name string) (VirtualPortSpec, bool) {
	for _, v := range c.VirtualPorts {
		if v.Name == name {
			return v, true
		}
	}
	return VirtualPortSpec{}, false
}

// VehicleConf is the complete configuration of one vehicle as known to
// the trusted server.
type VehicleConf struct {
	Vehicle VehicleID `json:"vehicle"`
	Model   string    `json:"model"`
	SWCs    []SWCConf `json:"swcs"`
}

// SWC looks up the configuration of a plug-in SW-C.
func (v VehicleConf) SWC(ecu ECUID, swc SWCID) (SWCConf, bool) {
	for _, c := range v.SWCs {
		if c.ECU == ecu && c.SWC == swc {
			return c, true
		}
	}
	return SWCConf{}, false
}

// ECMSWc returns the SW-C hosting the ECM.
func (v VehicleConf) ECMSWc() (SWCConf, bool) {
	for _, c := range v.SWCs {
		if c.ECM {
			return c, true
		}
	}
	return SWCConf{}, false
}

// Validate checks structural consistency: unique SW-C locations, exactly
// one ECM, valid virtual port specs.
func (v VehicleConf) Validate() error {
	if v.Vehicle == "" {
		return fmt.Errorf("core: vehicle conf without vehicle id")
	}
	seen := make(map[string]bool, len(v.SWCs))
	ecms := 0
	for _, c := range v.SWCs {
		key := string(c.ECU) + "/" + string(c.SWC)
		if seen[key] {
			return fmt.Errorf("core: vehicle conf: duplicate SW-C %s", key)
		}
		seen[key] = true
		if c.ECM {
			ecms++
		}
		names := make(map[string]bool, len(c.VirtualPorts))
		ids := make(map[VirtualPortID]bool, len(c.VirtualPorts))
		for _, vp := range c.VirtualPorts {
			if err := vp.Validate(); err != nil {
				return fmt.Errorf("core: vehicle conf: %s: %v", key, err)
			}
			if vp.Name != "" && names[vp.Name] {
				return fmt.Errorf("core: vehicle conf: %s: duplicate virtual port name %q", key, vp.Name)
			}
			if ids[vp.ID] {
				return fmt.Errorf("core: vehicle conf: %s: duplicate virtual port id %s", key, vp.ID)
			}
			names[vp.Name] = true
			ids[vp.ID] = true
		}
	}
	if ecms != 1 {
		return fmt.Errorf("core: vehicle conf: %d ECM SW-Cs, want exactly 1", ecms)
	}
	return nil
}

// MarshalJSON helpers keep enum fields readable in the Web Services API.

// vpsJSON is the JSON face of VirtualPortSpec.
type vpsJSON struct {
	ID        int    `json:"id"`
	SWCPort   int    `json:"swcPort"`
	Type      uint8  `json:"type"`
	Direction uint8  `json:"direction"`
	Name      string `json:"name"`
	Format    string `json:"format"`
}

// MarshalJSON implements json.Marshaler.
func (v VirtualPortSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(vpsJSON{
		ID: int(v.ID), SWCPort: int(v.SWCPort), Type: uint8(v.Type),
		Direction: uint8(v.Direction), Name: v.Name, Format: v.Format,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *VirtualPortSpec) UnmarshalJSON(b []byte) error {
	var j vpsJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*v = VirtualPortSpec{
		ID: VirtualPortID(j.ID), SWCPort: SWCPortID(j.SWCPort),
		Type: PortType(j.Type), Direction: Direction(j.Direction),
		Name: j.Name, Format: j.Format,
	}
	return nil
}
