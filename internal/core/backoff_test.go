package core

import (
	"math/rand"
	"testing"
	"time"
)

// Without jitter the sequence must double from Base and pin at Max.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d = %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != want[0] {
		t.Fatalf("after Reset = %v, want %v", got, want[0])
	}
}

// Jittered delays stay inside ((1-Jitter)·d, d] and a seeded source
// makes the whole sequence reproducible.
func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5, Rand: rng.Float64}
		var out []time.Duration
		for i := 0; i < 10; i++ {
			out = append(out, b.Next())
		}
		return out
	}
	a, b2 := seq(42), seq(42)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("attempt %d: %v != %v for the same seed", i, a[i], b2[i])
		}
	}
	// Bounds against the un-jittered envelope.
	env := []time.Duration{100, 200, 400, 800, 1000, 1000, 1000, 1000, 1000, 1000}
	for i, d := range a {
		hi := env[i] * time.Millisecond
		lo := hi / 2
		if d <= lo || d > hi {
			t.Fatalf("attempt %d = %v, want in (%v, %v]", i, d, lo, hi)
		}
	}
	if c := seq(43); c[3] == a[3] && c[4] == a[4] && c[5] == a[5] {
		t.Fatalf("different seeds produced identical tails: %v vs %v", c, a)
	}
}

// The zero value must be usable and default-jittered.
func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	d := b.Next()
	if d <= 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("zero-value first delay = %v, want in (50ms, 100ms]", d)
	}
	if b.Attempt() != 1 {
		t.Fatalf("Attempt = %d, want 1", b.Attempt())
	}
}
