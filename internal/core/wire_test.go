package core

import (
	"bytes"
	"math"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncDecPrimitives(t *testing.T) {
	e := NewEnc(0)
	e.U8(0xAB)
	e.U16(0x1234)
	e.U32(0xDEADBEEF)
	e.U64(0x0102030405060708)
	e.I64(-42)
	e.F64(3.5)
	e.Str("hello")
	e.Blob([]byte{1, 2, 3})

	d := NewDec(e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Fatalf("U8 = %x", got)
	}
	if got := d.U16(); got != 0x1234 {
		t.Fatalf("U16 = %x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := d.U64(); got != 0x0102030405060708 {
		t.Fatalf("U64 = %x", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.5 {
		t.Fatalf("F64 = %g", got)
	}
	if got := d.Str(); got != "hello" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestDecTruncationSticksAsError(t *testing.T) {
	d := NewDec([]byte{0x01})
	_ = d.U32()
	if d.Err() == nil {
		t.Fatal("truncated U32 not reported")
	}
	// Subsequent reads return zero values, error is sticky.
	if got := d.U8(); got != 0 {
		t.Fatalf("post-error U8 = %d", got)
	}
	if got := d.Str(); got != "" {
		t.Fatalf("post-error Str = %q", got)
	}
}

func TestEncStrTruncatesOversized(t *testing.T) {
	e := NewEnc(0)
	huge := string(make([]byte, math.MaxUint16+10))
	e.Str(huge)
	d := NewDec(e.Bytes())
	if got := d.Str(); len(got) != math.MaxUint16 {
		t.Fatalf("oversized string encoded to %d bytes", len(got))
	}
}

func TestQuickEncDecRoundTrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d64 uint64, s string, blob []byte) bool {
		if len(s) > math.MaxUint16 {
			s = s[:math.MaxUint16]
		}
		e := NewEnc(0)
		e.U8(a)
		e.U16(b)
		e.U32(c)
		e.U64(d64)
		e.Str(s)
		e.Blob(blob)
		d := NewDec(e.Bytes())
		okA := d.U8() == a
		okB := d.U16() == b
		okC := d.U32() == c
		okD := d.U64() == d64
		okS := d.Str() == s
		got := d.Blob()
		okBlob := bytes.Equal(got, blob) || (len(blob) == 0 && len(got) == 0)
		return okA && okB && okC && okD && okS && okBlob && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Type:    MsgInstall,
		Plugin:  "OP",
		ECU:     "ECU2",
		SWC:     "SW-C2",
		Seq:     77,
		Payload: []byte("op.pkg"),
	}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Message
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip = %+v, want %+v", back, m)
	}
}

func TestMessageChecksumDetectsCorruption(t *testing.T) {
	m := Message{Type: MsgInstall, Plugin: "COM", Payload: []byte{1, 2, 3, 4}}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	var back Message
	if err := back.UnmarshalBinary(b); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestReadWriteMessageOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	sent := Message{Type: MsgExternal, Plugin: "COM", ECU: "ECU1", Seq: 3, Payload: []byte("Wheels=42")}
	errc := make(chan error, 1)
	go func() { errc <- WriteMessage(client, sent) }()
	got, err := ReadMessage(server)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-errc; werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(sent, got) {
		t.Fatalf("got %+v, want %+v", got, sent)
	}
}

func TestReadMessageRejectsOversized(t *testing.T) {
	e := NewEnc(8)
	e.U32(maxMessageSize + 1)
	e.U32(0)
	if _, err := ReadMessage(bytes.NewReader(e.Bytes())); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestAckAndNack(t *testing.T) {
	m := Message{Type: MsgInstall, Plugin: "OP", ECU: "ECU2", SWC: "SW-C2", Seq: 9}
	ack := m.Ack()
	if ack.Type != MsgAck || ack.Seq != 9 || ack.Plugin != "OP" || ack.ECU != "ECU2" {
		t.Fatalf("Ack = %+v", ack)
	}
	nack := m.Nack("incompatible")
	if nack.Type != MsgNack || string(nack.Payload) != "incompatible" {
		t.Fatalf("Nack = %+v", nack)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt, want := range map[MsgType]string{
		MsgInstall: "install", MsgAck: "ack", MsgUninstall: "uninstall",
		MsgExternal: "external", MsgStop: "stop", MsgStart: "start",
		MsgNack: "nack", MsgHello: "hello",
	} {
		if mt.String() != want {
			t.Errorf("MsgType(%d).String() = %q, want %q", mt, mt.String(), want)
		}
	}
	// The paper fixes installation packages to message type id 0.
	if MsgInstall != 0 {
		t.Fatal("MsgInstall must have wire id 0 (paper section 3.1.3)")
	}
}
