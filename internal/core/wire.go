package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// The binary wire form used between the trusted server, the ECM and the
// plug-in SW-Cs. The format is deliberately simple — the embedded side of
// the paper's system has neither file systems nor dynamic memory, so
// messages are flat, length-prefixed and CRC-protected.

// Enc is an append-style encoder for the wire format.
type Enc struct{ buf []byte }

// NewEnc returns an encoder with the given initial capacity.
func NewEnc(capacity int) *Enc { return &Enc{buf: make([]byte, 0, capacity)} }

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Enc) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian 16-bit value.
func (e *Enc) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian 32-bit value.
func (e *Enc) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian 64-bit value.
func (e *Enc) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 appends a big-endian signed 64-bit value.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 double.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a 16-bit length-prefixed UTF-8 string.
func (e *Enc) Str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.U16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a 32-bit length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Dec is a cursor-style decoder for the wire format. Decoding methods
// record the first error and return zero values afterwards, so call sites
// may decode a full structure and check Err once.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("core: wire: truncated %s at offset %d", what, d.off)
	}
}

// U8 decodes one byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 decodes a big-endian 16-bit value.
func (d *Dec) U16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 decodes a big-endian 32-bit value.
func (d *Dec) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 decodes a big-endian 64-bit value.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 decodes a big-endian signed 64-bit value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 decodes an IEEE-754 double.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str decodes a 16-bit length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// StrBytes decodes a 16-bit length-prefixed string as raw bytes. The
// returned slice aliases the decoder's buffer — it is the zero-copy
// sibling of Str for callers that intern or copy themselves.
func (d *Dec) StrBytes() []byte {
	n := int(d.U16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail("string")
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// Blob decodes a 32-bit length-prefixed byte slice. The returned slice
// aliases the decoder's buffer.
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("blob")
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// Checksum computes the CRC-32 (IEEE) checksum used to protect packages in
// transit over the in-vehicle network.
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// --- Context wire form -----------------------------------------------------

// MarshalBinary encodes the context in the compact wire form shipped inside
// installation packages.
func (c Context) MarshalBinary() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	e := NewEnc(64)
	e.U16(uint16(len(c.PIC)))
	for _, p := range c.PIC {
		e.Str(p.Name)
		e.U16(uint16(p.ID))
	}
	e.U16(uint16(len(c.PLC)))
	for _, p := range c.PLC {
		e.U8(uint8(p.Kind))
		e.U16(uint16(p.Plugin))
		switch p.Kind {
		case LinkVirtual:
			e.U16(uint16(p.Virtual))
		case LinkVirtualRemote:
			e.U16(uint16(p.Virtual))
			e.U16(uint16(p.Remote))
		case LinkPeer:
			e.U16(uint16(p.Peer))
		}
	}
	e.U16(uint16(len(c.ECC)))
	for _, p := range c.ECC {
		e.Str(p.Endpoint)
		e.Str(string(p.ECU))
		e.Str(p.MessageID)
		e.U16(uint16(p.Port))
	}
	return e.Bytes(), nil
}

// UnmarshalBinary decodes the wire form produced by MarshalBinary.
func (c *Context) UnmarshalBinary(b []byte) error {
	d := NewDec(b)
	nPIC := int(d.U16())
	pic := make(PIC, 0, nPIC)
	for i := 0; i < nPIC; i++ {
		name := d.Str()
		id := PluginPortID(d.U16())
		pic = append(pic, PICEntry{Name: name, ID: id})
	}
	nPLC := int(d.U16())
	plc := make(PLC, 0, nPLC)
	for i := 0; i < nPLC; i++ {
		entry := PLCEntry{Kind: LinkKind(d.U8()), Plugin: PluginPortID(d.U16())}
		switch entry.Kind {
		case LinkNone:
		case LinkVirtual:
			entry.Virtual = VirtualPortID(d.U16())
		case LinkVirtualRemote:
			entry.Virtual = VirtualPortID(d.U16())
			entry.Remote = PluginPortID(d.U16())
		case LinkPeer:
			entry.Peer = PluginPortID(d.U16())
		default:
			return fmt.Errorf("core: wire: PLC post %d has invalid kind %d", i, entry.Kind)
		}
		plc = append(plc, entry)
	}
	nECC := int(d.U16())
	var ecc ECC
	for i := 0; i < nECC; i++ {
		ecc = append(ecc, ECCEntry{
			Endpoint:  d.Str(),
			ECU:       ECUID(d.Str()),
			MessageID: d.Str(),
			Port:      PluginPortID(d.U16()),
		})
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("core: wire: %d trailing bytes after context", d.Remaining())
	}
	*c = Context{PIC: pic, PLC: plc, ECC: ecc}
	return c.Validate()
}
