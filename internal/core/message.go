package core

import (
	"fmt"
	"io"
	"sync"
)

// MsgType identifies the kind of a message exchanged between the trusted
// server and the vehicle's ECM, and between the ECM PIRTE and the plug-in
// PIRTEs over type I SW-C ports. The paper fixes installation packages to
// message type id 0 (section 3.1.3); the remaining ids complete the life
// cycle operations of section 3.2.2.
type MsgType uint8

const (
	// MsgInstall carries an installation package (binaries + context).
	MsgInstall MsgType = 0
	// MsgAck acknowledges a completed operation back to the server.
	MsgAck MsgType = 1
	// MsgUninstall requests removal of a named plug-in.
	MsgUninstall MsgType = 2
	// MsgExternal relays an external (FES/diagnostic) payload between the
	// ECM and a plug-in port.
	MsgExternal MsgType = 3
	// MsgStop requests a plug-in to be stopped (used before updates; the
	// paper mandates stop-then-restart-fresh semantics, section 5).
	MsgStop MsgType = 4
	// MsgStart requests a stopped plug-in to be (re)started.
	MsgStart MsgType = 5
	// MsgNack reports a failed operation with a reason.
	MsgNack MsgType = 6
	// MsgHello is sent by the ECM when it dials the trusted server,
	// identifying the vehicle.
	MsgHello MsgType = 7
	// MsgUpgrade requests a live in-place upgrade of the named plug-in:
	// the payload carries the replacement installation package, and the
	// target PIRTE quiesces, snapshots state, swaps, replays buffered
	// traffic and health-probes the new version before acknowledging —
	// or rolls back to the old version and nacks with a "rollback: "
	// prefixed reason.
	MsgUpgrade MsgType = 8
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgInstall:
		return "install"
	case MsgAck:
		return "ack"
	case MsgUninstall:
		return "uninstall"
	case MsgExternal:
		return "external"
	case MsgStop:
		return "stop"
	case MsgStart:
		return "start"
	case MsgNack:
		return "nack"
	case MsgHello:
		return "hello"
	case MsgUpgrade:
		return "upgrade"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is the envelope exchanged on the server link and relayed over
// type I ports. When a new plug-in arrives from the server it comes
// "together with a message type id; the plug-in name; an id of the
// recipient plug-in SW-C; and a context" (paper section 3.1.3) — the
// context and binaries travel inside Payload as an encoded
// plugin.Package.
type Message struct {
	Type    MsgType
	Plugin  PluginName
	ECU     ECUID
	SWC     SWCID
	Seq     uint32
	Payload []byte
}

// maxMessageSize bounds decoded messages; a plug-in binary plus context
// comfortably fits, while corrupt length prefixes are rejected early.
const maxMessageSize = 16 << 20

// AppendBinary appends the framed encoding of m to dst and returns the
// extended slice — the allocation-free form of MarshalBinary for hot
// paths that own a reusable buffer (the ECM ack path, the pushers).
// The frame is built in place: eight header bytes are reserved, the
// body encoded after them, and length and checksum backfilled.
func (m Message) AppendBinary(dst []byte) ([]byte, error) {
	base := len(dst)
	e := Enc{buf: append(dst, 0, 0, 0, 0, 0, 0, 0, 0)}
	e.U8(uint8(m.Type))
	e.Str(string(m.Plugin))
	e.Str(string(m.ECU))
	e.Str(string(m.SWC))
	e.U32(m.Seq)
	e.Blob(m.Payload)
	out := e.Bytes()
	body := out[base+8:]
	hdr := Enc{buf: out[base : base : base+8]}
	hdr.U32(uint32(len(body)))
	hdr.U32(Checksum(body))
	return out, nil
}

// MarshalBinary encodes the envelope.
func (m Message) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, 40+len(m.Payload)))
}

// UnmarshalBinary decodes a full frame produced by MarshalBinary,
// verifying the length prefix and checksum.
func (m *Message) UnmarshalBinary(b []byte) error {
	body, err := frameBody(b)
	if err != nil {
		return err
	}
	return m.decodeBody(body)
}

// frameBody validates a frame's length prefix and checksum and returns
// the body — the one copy of the framing contract shared by the plain
// and interned decoders.
func frameBody(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("core: wire: message frame of %d bytes is too short", len(b))
	}
	d := NewDec(b[:8])
	n := d.U32()
	sum := d.U32()
	if int(n) != len(b)-8 {
		return nil, fmt.Errorf("core: wire: frame length %d does not match body of %d bytes", n, len(b)-8)
	}
	body := b[8:]
	if got := Checksum(body); got != sum {
		return nil, fmt.Errorf("core: wire: message checksum mismatch (got %08x want %08x)", got, sum)
	}
	return body, nil
}

// UnmarshalBinaryInterned decodes like UnmarshalBinary but resolves the
// envelope's identifier strings through the interner, so steady-state
// decoding of recurring senders does not allocate. The interner is not
// safe for concurrent use; give each single-threaded decoder its own.
func (m *Message) UnmarshalBinaryInterned(b []byte, in *Interner) error {
	body, err := frameBody(b)
	if err != nil {
		return err
	}
	return m.decodeBodyWith(body, in)
}

// decodeBody decodes the frame body (after length and checksum).
func (m *Message) decodeBody(b []byte) error { return m.decodeBodyWith(b, nil) }

func (m *Message) decodeBodyWith(b []byte, in *Interner) error {
	d := NewDec(b)
	m.Type = MsgType(d.U8())
	if in != nil {
		m.Plugin = PluginName(in.Intern(d.StrBytes()))
		m.ECU = ECUID(in.Intern(d.StrBytes()))
		m.SWC = SWCID(in.Intern(d.StrBytes()))
	} else {
		m.Plugin = PluginName(d.Str())
		m.ECU = ECUID(d.Str())
		m.SWC = SWCID(d.Str())
	}
	m.Seq = d.U32()
	m.Payload = d.Blob()
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("core: wire: %d trailing bytes after message", d.Remaining())
	}
	return nil
}

// Interner canonicalises recurring small strings decoded from the wire
// so the hot decode paths stop allocating one string per identifier per
// message. Lookups on cached content are allocation-free; the cache is
// capped, falling back to plain allocation when full.
type Interner struct {
	m map[string]string
}

// maxInternEntries bounds an interner; identifiers are ECU/SW-C/plug-in
// names, so real populations are tiny and the cap only guards against
// adversarial churn.
const maxInternEntries = 1024

// Intern returns the canonical string for the byte content.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok { // compiler avoids the conversion alloc
		return s
	}
	s := string(b)
	if len(in.m) < maxInternEntries {
		if in.m == nil {
			in.m = make(map[string]string)
		}
		in.m[s] = s
	}
	return s
}

// frameBufPool recycles encode buffers across WriteMessage calls: the
// server pushers and the ECM ack path frame thousands of messages per
// second, and io.Writer's contract (the writer must not retain p after
// returning) makes the buffer reusable the moment Write returns.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// WriteMessage frames and writes one message to w: a 4-byte length, a
// 4-byte CRC-32 of the body, then the body. The encoding buffer is
// pooled; steady-state writers allocate nothing.
func WriteMessage(w io.Writer, m Message) error {
	bp := frameBufPool.Get().(*[]byte)
	b, err := m.AppendBinary((*bp)[:0])
	if err == nil {
		_, err = w.Write(b)
	}
	*bp = b[:0]
	frameBufPool.Put(bp)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	d := NewDec(hdr[:])
	n := d.U32()
	sum := d.U32()
	if n > maxMessageSize {
		return Message{}, fmt.Errorf("core: wire: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	if got := Checksum(body); got != sum {
		return Message{}, fmt.Errorf("core: wire: message checksum mismatch (got %08x want %08x)", got, sum)
	}
	var m Message
	if err := m.decodeBody(body); err != nil {
		return Message{}, err
	}
	return m, nil
}

// Ack builds the acknowledgement for m, echoing its identifiers and
// sequence number.
func (m Message) Ack() Message {
	return Message{Type: MsgAck, Plugin: m.Plugin, ECU: m.ECU, SWC: m.SWC, Seq: m.Seq}
}

// Nack builds the negative acknowledgement for m carrying a reason.
func (m Message) Nack(reason string) Message {
	return Message{Type: MsgNack, Plugin: m.Plugin, ECU: m.ECU, SWC: m.SWC, Seq: m.Seq, Payload: []byte(reason)}
}
