package core

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with jitter — the
// reconnect policy of every vehicle link. A fleet whose links die
// together (a trusted-server restart, a healed partition) must not
// redial in lockstep: bare exponential backoff keeps the herd
// synchronized, so every delay is shortened by a random fraction,
// spreading the retries of thousands of vehicles across the window.
//
// The zero value is ready to use with the defaults below. Backoff is
// not safe for concurrent use; each link owns one.
type Backoff struct {
	// Base is the un-jittered first delay; zero defaults to 100ms.
	Base time.Duration
	// Max caps the grown (un-jittered) delay; zero defaults to 30s.
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized away:
	// a computed delay d becomes uniform in ((1-Jitter)·d, d]. Zero
	// defaults to 0.5; values above 1 are clamped to 1.
	Jitter float64
	// Rand supplies jitter randomness in [0,1); nil uses math/rand.
	// Simulations inject a seeded source here so a scenario's retry
	// timing is a pure function of its seed.
	Rand func() float64

	attempt int
}

// Next returns the delay to wait before the upcoming retry and advances
// the attempt counter: Base, 2·Base, 4·Base, ... capped at Max, each
// shortened by the jitter fraction.
func (b *Backoff) Next() time.Duration {
	base, max, jitter := b.Base, b.Max, b.Jitter
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if jitter == 0 {
		jitter = 0.5
	} else if jitter > 1 {
		jitter = 1
	} else if jitter < 0 {
		jitter = 0
	}
	d := base
	for i := 0; i < b.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.attempt < 62 {
		b.attempt++
	}
	if jitter > 0 {
		r := rand.Float64
		if b.Rand != nil {
			r = b.Rand
		}
		d -= time.Duration(jitter * float64(d) * r())
	}
	return d
}

// Reset rewinds to the first attempt; called after a connection has
// been re-established and proven healthy.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
