// Package core defines the shared model of the dynamic AUTOSAR component
// model: identifiers for ECUs, software components and ports; the three
// special-purpose port types of the paper (type I, II, III); and the three
// deployment contexts (PIC, PLC, ECC) together with their canonical textual
// syntax and compact binary wire form.
//
// Everything else in the repository — the PIRTE, the ECM, the trusted
// server — is written against these types, mirroring how the paper's
// concepts are shared between the vehicle side (section 3.1) and the server
// side (section 3.2).
package core

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ECUID names an electronic control unit within one vehicle, e.g. "ECU1".
type ECUID string

// SWCID names a software component instance on an ECU, e.g. "SW-C2".
// Plug-in SW-Cs and the ECM SW-C are identified the same way as ordinary
// AUTOSAR SW-Cs; the boundary between static and dynamic software passes
// through the SW-C level (paper section 3.1.1).
type SWCID string

// PluginName names a plug-in binary, e.g. "COM" or "OP". Plug-in names are
// unique within one application (APP) and, once installed, within one
// plug-in SW-C.
type PluginName string

// AppName names an application stored on the trusted server. An APP
// typically consists of one or several plug-in binaries (paper section
// 3.2.1).
type AppName string

// VehicleID names a vehicle known to the trusted server (e.g. a VIN).
type VehicleID string

// UserID names a user account on the trusted server.
type UserID string

// PluginPortID identifies a plug-in port within the scope of one plug-in
// SW-C. The trusted server assigns SW-C-scope unique ids when it generates
// the Port Initialization Context, so two plug-ins installed in the same
// SW-C never collide (paper section 3.2.2).
type PluginPortID int

// String renders the id in the paper's "P<n>" notation.
func (p PluginPortID) String() string { return "P" + strconv.Itoa(int(p)) }

// VirtualPortID identifies a virtual port of a PIRTE. Virtual ports build
// up the static API available to the plug-ins; they are created by the OEM
// at design time and mapped 1:1 onto SW-C ports (paper section 3.1.2).
type VirtualPortID int

// String renders the id in the paper's "V<n>" notation.
func (v VirtualPortID) String() string { return "V" + strconv.Itoa(int(v)) }

// SWCPortID identifies a static AUTOSAR SW-C port, the ports visible to the
// RTE. In the paper's figures these are the "S" ports.
type SWCPortID int

// String renders the id in the paper's "S<n>" notation.
func (s SWCPortID) String() string { return "S" + strconv.Itoa(int(s)) }

var (
	pluginPortRe  = regexp.MustCompile(`^P(\d+)$`)
	virtualPortRe = regexp.MustCompile(`^V(\d+)$`)
	swcPortRe     = regexp.MustCompile(`^S(\d+)$`)
)

// ParsePluginPortID parses the "P<n>" notation.
func ParsePluginPortID(s string) (PluginPortID, error) {
	m := pluginPortRe.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return 0, fmt.Errorf("core: %q is not a plug-in port id (want P<n>)", s)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, fmt.Errorf("core: bad plug-in port id %q: %v", s, err)
	}
	return PluginPortID(n), nil
}

// ParseVirtualPortID parses the "V<n>" notation.
func ParseVirtualPortID(s string) (VirtualPortID, error) {
	m := virtualPortRe.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return 0, fmt.Errorf("core: %q is not a virtual port id (want V<n>)", s)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, fmt.Errorf("core: bad virtual port id %q: %v", s, err)
	}
	return VirtualPortID(n), nil
}

// ParseSWCPortID parses the "S<n>" notation.
func ParseSWCPortID(s string) (SWCPortID, error) {
	m := swcPortRe.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return 0, fmt.Errorf("core: %q is not a SW-C port id (want S<n>)", s)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, fmt.Errorf("core: bad SW-C port id %q: %v", s, err)
	}
	return SWCPortID(n), nil
}

// Address locates a plug-in port globally: vehicle-internal routing is
// expressed as (ECU, SW-C, plug-in port). The ECC carries such addresses
// for externally reachable ports (paper section 3.1.2).
type Address struct {
	ECU  ECUID
	SWC  SWCID
	Port PluginPortID
}

// String renders "ECU1/SW-C1:P0".
func (a Address) String() string {
	return fmt.Sprintf("%s/%s:%s", a.ECU, a.SWC, a.Port)
}
