package core

import "fmt"

// PortType classifies the special-purpose SW-C ports introduced by the
// dynamic component model (paper section 3.1.3). All three look the same to
// the underlying RTE but carry different data and are handled differently
// by the PIRTE.
type PortType uint8

const (
	// TypeI ports connect each plug-in SW-C with the ECM SW-C. They carry
	// external traffic: installation packages, acks, diagnostic messages
	// and FES messages relayed by the ECM PIRTE.
	TypeI PortType = iota + 1
	// TypeII ports connect plug-in SW-Cs with each other. Any number of
	// plug-in port pairs are multiplexed over one pair of type II ports by
	// attaching the recipient plug-in port id to the data.
	TypeII
	// TypeIII ports are ordinary AUTOSAR SW-C ports used for communication
	// with the built-in software (BSW and legacy ASW). No additional data
	// is attached; virtual ports only translate formats.
	TypeIII
)

// String implements fmt.Stringer using the paper's roman-numeral naming.
func (t PortType) String() string {
	switch t {
	case TypeI:
		return "type I"
	case TypeII:
		return "type II"
	case TypeIII:
		return "type III"
	}
	return fmt.Sprintf("PortType(%d)", uint8(t))
}

// Valid reports whether t is one of the three defined port types.
func (t PortType) Valid() bool { return t >= TypeI && t <= TypeIII }

// Direction tells whether a port produces or consumes data, matching the
// AUTOSAR provided/required port split (paper section 2).
type Direction uint8

const (
	// Provided ports are used by a component for its output.
	Provided Direction = iota + 1
	// Required ports expect input from the rest of the system.
	Required
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Provided:
		return "provided"
	case Required:
		return "required"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Valid reports whether d is a defined direction.
func (d Direction) Valid() bool { return d == Provided || d == Required }

// Opposite returns the complementary direction; a provided port connects to
// a required port and vice versa.
func (d Direction) Opposite() Direction {
	if d == Provided {
		return Required
	}
	return Provided
}

// SWCPortSpec describes one static SW-C port of a plug-in SW-C as exposed
// to the RTE. The OEM fixes these at design time; the PIRTE's static part
// maps them to virtual ports (paper section 3.1.2).
type SWCPortSpec struct {
	ID        SWCPortID
	Type      PortType
	Direction Direction
	// Signal names the RTE-level signal or data element this port carries,
	// e.g. "WheelsReq". Only meaningful for type III ports; type I/II
	// ports carry opaque dynamic payloads.
	Signal string
}

// VirtualPortSpec describes one virtual port of a PIRTE: the static API
// available to plug-ins. Each virtual port wraps exactly one SW-C port and
// performs the type-dependent translation between plug-in data and the
// SW-C port format.
type VirtualPortSpec struct {
	ID        VirtualPortID
	SWCPort   SWCPortID
	Type      PortType
	Direction Direction
	// Name is the OEM-facing name used in SystemSW conf uploads and in APP
	// configurations, e.g. "WheelsReq" (paper section 4: V4).
	Name string
	// Format names the payload codec applied when translating between the
	// plug-in byte representation and the SW-C signal representation,
	// e.g. "i16be". Empty means pass-through.
	Format string
}

// Validate checks internal consistency of the spec.
func (v VirtualPortSpec) Validate() error {
	if !v.Type.Valid() {
		return fmt.Errorf("core: virtual port %s: invalid port type %d", v.ID, v.Type)
	}
	if !v.Direction.Valid() {
		return fmt.Errorf("core: virtual port %s: invalid direction %d", v.ID, v.Direction)
	}
	if v.SWCPort < 0 {
		return fmt.Errorf("core: virtual port %s: negative SW-C port id", v.ID)
	}
	return nil
}

// PluginPortSpec describes one port declared by a plug-in developer. The
// developer chooses the Name; the trusted server assigns the SW-C-scope
// unique ID when generating the PIC.
type PluginPortSpec struct {
	Name      string    `json:"name"`
	Direction Direction `json:"direction"`
}
