package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// The PLC strings of the paper's section 4 example serve as parsing
// oracles.
const (
	paperPLCOP  = "{P0-V3, P1-V3, P2-V4, P3-V5}"
	paperPLCCOM = "{P0-, P1-, P2-V0.P0, P3-V0.P1}"
	paperECCCOM = "{{111.22.33.44:56789, ECU1, 'Wheels', P0}, {111.22.33.44:56789, ECU1, 'Speed', P1}}"
)

func TestParsePLCPaperOP(t *testing.T) {
	plc, err := ParsePLC(paperPLCOP)
	if err != nil {
		t.Fatalf("ParsePLC(%q): %v", paperPLCOP, err)
	}
	want := PLC{
		{Kind: LinkVirtual, Plugin: 0, Virtual: 3},
		{Kind: LinkVirtual, Plugin: 1, Virtual: 3},
		{Kind: LinkVirtual, Plugin: 2, Virtual: 4},
		{Kind: LinkVirtual, Plugin: 3, Virtual: 5},
	}
	if !reflect.DeepEqual(plc, want) {
		t.Fatalf("ParsePLC(%q) = %v, want %v", paperPLCOP, plc, want)
	}
	if got := plc.String(); got != paperPLCOP {
		t.Fatalf("String() = %q, want %q", got, paperPLCOP)
	}
}

func TestParsePLCPaperCOM(t *testing.T) {
	plc, err := ParsePLC(paperPLCCOM)
	if err != nil {
		t.Fatalf("ParsePLC(%q): %v", paperPLCCOM, err)
	}
	want := PLC{
		{Kind: LinkNone, Plugin: 0},
		{Kind: LinkNone, Plugin: 1},
		{Kind: LinkVirtualRemote, Plugin: 2, Virtual: 0, Remote: 0},
		{Kind: LinkVirtualRemote, Plugin: 3, Virtual: 0, Remote: 1},
	}
	if !reflect.DeepEqual(plc, want) {
		t.Fatalf("ParsePLC(%q) = %v, want %v", paperPLCCOM, plc, want)
	}
	if got := plc.String(); got != paperPLCCOM {
		t.Fatalf("String() = %q, want %q", got, paperPLCCOM)
	}
}

func TestParseECCPaper(t *testing.T) {
	ecc, err := ParseECC(paperECCCOM)
	if err != nil {
		t.Fatalf("ParseECC(%q): %v", paperECCCOM, err)
	}
	want := ECC{
		{Endpoint: "111.22.33.44:56789", ECU: "ECU1", MessageID: "Wheels", Port: 0},
		{Endpoint: "111.22.33.44:56789", ECU: "ECU1", MessageID: "Speed", Port: 1},
	}
	if !reflect.DeepEqual(ecc, want) {
		t.Fatalf("ParseECC = %v, want %v", ecc, want)
	}
	if got := ecc.String(); got != paperECCCOM {
		t.Fatalf("String() = %q, want %q", got, paperECCCOM)
	}
	if eps := ecc.Endpoints(); len(eps) != 1 || eps[0] != "111.22.33.44:56789" {
		t.Fatalf("Endpoints() = %v, want one shared endpoint", eps)
	}
	entry, ok := ecc.Route("Wheels")
	if !ok || entry.Port != 0 {
		t.Fatalf("Route(Wheels) = %v, %v", entry, ok)
	}
	if _, ok := ecc.Route("Horn"); ok {
		t.Fatal("Route(Horn) unexpectedly resolved")
	}
}

func TestPLCPeerLinks(t *testing.T) {
	plc, err := ParsePLC("{P0-P1, P2-}")
	if err != nil {
		t.Fatalf("ParsePLC peer: %v", err)
	}
	if plc[0].Kind != LinkPeer || plc[0].Peer != 1 {
		t.Fatalf("peer post parsed as %+v", plc[0])
	}
	if got := plc.String(); got != "{P0-P1, P2-}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPLCValidateRejectsDuplicatesAndSelfLinks(t *testing.T) {
	if _, err := ParsePLC("{P0-V1, P0-V2}"); err == nil {
		t.Fatal("duplicate post accepted")
	}
	bad := PLC{{Kind: LinkPeer, Plugin: 2, Peer: 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("self-link accepted")
	}
	worse := PLC{{Kind: LinkKind(9), Plugin: 0}}
	if err := worse.Validate(); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestParsePLCErrors(t *testing.T) {
	for _, s := range []string{
		"P0-V1",           // no braces
		"{P0}",            // no dash
		"{X0-V1}",         // bad port
		"{P0-W1}",         // bad target
		"{P0-V1.X2}",      // bad remote
		"{P0-V1, P1-V1.}", // empty remote
	} {
		if _, err := ParsePLC(s); err == nil {
			t.Errorf("ParsePLC(%q) unexpectedly succeeded", s)
		}
	}
}

func TestPICLookupAndValidate(t *testing.T) {
	pic := PIC{{Name: "wheels", ID: 0}, {Name: "speed", ID: 1}}
	if err := pic.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if id, ok := pic.Lookup("speed"); !ok || id != 1 {
		t.Fatalf("Lookup(speed) = %v, %v", id, ok)
	}
	if _, ok := pic.Lookup("horn"); ok {
		t.Fatal("Lookup(horn) unexpectedly resolved")
	}
	if name, ok := pic.Name(0); !ok || name != "wheels" {
		t.Fatalf("Name(0) = %q, %v", name, ok)
	}
	if got := pic.String(); got != "{wheels:P0, speed:P1}" {
		t.Fatalf("String() = %q", got)
	}
	back, err := ParsePIC(pic.String())
	if err != nil || !reflect.DeepEqual(back, pic) {
		t.Fatalf("ParsePIC round trip = %v, %v", back, err)
	}
}

func TestPICValidateRejects(t *testing.T) {
	cases := []PIC{
		{{Name: "", ID: 0}},
		{{Name: "a", ID: 0}, {Name: "a", ID: 1}},
		{{Name: "a", ID: 0}, {Name: "b", ID: 0}},
		{{Name: "a", ID: -1}},
		{{Name: "a{b", ID: 0}},
	}
	for i, pic := range cases {
		if err := pic.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, pic)
		}
	}
}

func TestContextValidateCrossReferences(t *testing.T) {
	ctx := Context{
		PIC: PIC{{Name: "in", ID: 0}},
		PLC: PLC{{Kind: LinkVirtual, Plugin: 5, Virtual: 1}},
	}
	if err := ctx.Validate(); err == nil || !strings.Contains(err.Error(), "not in the PIC") {
		t.Fatalf("dangling PLC post not rejected: %v", err)
	}
	ctx = Context{
		PIC: PIC{{Name: "in", ID: 0}},
		ECC: ECC{{Endpoint: "1.2.3.4:1", ECU: "ECU1", MessageID: "m", Port: 9}},
	}
	if err := ctx.Validate(); err == nil || !strings.Contains(err.Error(), "not in the PIC") {
		t.Fatalf("dangling ECC post not rejected: %v", err)
	}
	ctx = Context{
		PIC: PIC{{Name: "a", ID: 0}, {Name: "b", ID: 1}},
		PLC: PLC{{Kind: LinkPeer, Plugin: 0, Peer: 1}},
	}
	if err := ctx.Validate(); err != nil {
		t.Fatalf("valid context rejected: %v", err)
	}
}

func TestParseIDs(t *testing.T) {
	if id, err := ParsePluginPortID(" P12 "); err != nil || id != 12 {
		t.Fatalf("ParsePluginPortID = %v, %v", id, err)
	}
	if id, err := ParseVirtualPortID("V6"); err != nil || id != 6 {
		t.Fatalf("ParseVirtualPortID = %v, %v", id, err)
	}
	if id, err := ParseSWCPortID("S3"); err != nil || id != 3 {
		t.Fatalf("ParseSWCPortID = %v, %v", id, err)
	}
	for _, bad := range []string{"P", "Q1", "V-1", "", "P1x"} {
		if _, err := ParsePluginPortID(bad); err == nil {
			t.Errorf("ParsePluginPortID(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestPortTypeAndDirectionStrings(t *testing.T) {
	if TypeI.String() != "type I" || TypeII.String() != "type II" || TypeIII.String() != "type III" {
		t.Fatal("PortType.String mismatch")
	}
	if !TypeI.Valid() || PortType(0).Valid() || PortType(4).Valid() {
		t.Fatal("PortType.Valid mismatch")
	}
	if Provided.Opposite() != Required || Required.Opposite() != Provided {
		t.Fatal("Direction.Opposite mismatch")
	}
	if Provided.String() != "provided" || Required.String() != "required" {
		t.Fatal("Direction.String mismatch")
	}
}

func TestAddressString(t *testing.T) {
	a := Address{ECU: "ECU2", SWC: "SW-C2", Port: 3}
	if got := a.String(); got != "ECU2/SW-C2:P3" {
		t.Fatalf("Address.String() = %q", got)
	}
}

// randomContext builds a random but valid context for property tests.
func randomContext(r *rand.Rand) Context {
	n := 1 + r.Intn(8)
	pic := make(PIC, 0, n)
	for i := 0; i < n; i++ {
		pic = append(pic, PICEntry{Name: "p" + string(rune('a'+i)), ID: PluginPortID(i)})
	}
	var plc PLC
	for i := 0; i < n; i++ {
		e := PLCEntry{Plugin: PluginPortID(i)}
		switch r.Intn(4) {
		case 0:
			e.Kind = LinkNone
		case 1:
			e.Kind = LinkVirtual
			e.Virtual = VirtualPortID(r.Intn(16))
		case 2:
			e.Kind = LinkVirtualRemote
			e.Virtual = VirtualPortID(r.Intn(16))
			e.Remote = PluginPortID(r.Intn(16))
		case 3:
			peer := PluginPortID((i + 1) % n)
			if peer == PluginPortID(i) {
				e.Kind = LinkNone
			} else {
				e.Kind = LinkPeer
				e.Peer = peer
			}
		}
		plc = append(plc, e)
	}
	var ecc ECC
	for i := 0; i < r.Intn(3); i++ {
		ecc = append(ecc, ECCEntry{
			Endpoint:  "10.0.0.1:99",
			ECU:       "ECU1",
			MessageID: "m" + string(rune('0'+i)),
			Port:      PluginPortID(r.Intn(n)),
		})
	}
	return Context{PIC: pic, PLC: plc, ECC: ecc}
}

func TestQuickContextTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		ctx := randomContext(rand.New(rand.NewSource(seed)))
		plc, err := ParsePLC(ctx.PLC.String())
		if err != nil || !reflect.DeepEqual(plc, ctx.PLC) {
			t.Logf("PLC %v -> %v (%v)", ctx.PLC, plc, err)
			return false
		}
		pic, err := ParsePIC(ctx.PIC.String())
		if err != nil || !reflect.DeepEqual(pic, ctx.PIC) {
			t.Logf("PIC %v -> %v (%v)", ctx.PIC, pic, err)
			return false
		}
		if len(ctx.ECC) > 0 {
			ecc, err := ParseECC(ctx.ECC.String())
			if err != nil || !reflect.DeepEqual(ecc, ctx.ECC) {
				t.Logf("ECC %v -> %v (%v)", ctx.ECC, ecc, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContextBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		ctx := randomContext(rand.New(rand.NewSource(seed)))
		b, err := ctx.MarshalBinary()
		if err != nil {
			t.Logf("marshal %v: %v", ctx, err)
			return false
		}
		var back Context
		if err := back.UnmarshalBinary(b); err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		// Empty slices normalise to nil on decode for empty contexts.
		if len(ctx.ECC) == 0 {
			ctx.ECC = back.ECC
		}
		return reflect.DeepEqual(ctx, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContextUnmarshalRejectsGarbage(t *testing.T) {
	var ctx Context
	if err := ctx.UnmarshalBinary([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage accepted")
	}
	good, err := Context{PIC: PIC{{Name: "a", ID: 0}}}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.UnmarshalBinary(append(good, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
