package core_test

import (
	"fmt"

	"dynautosar/internal/core"
)

// The PLC of the paper's OP plug-in: four ports connected to the virtual
// ports of SW-C2.
func ExampleParsePLC() {
	plc, err := core.ParsePLC("{P0-V3, P1-V3, P2-V4, P3-V5}")
	if err != nil {
		panic(err)
	}
	post, _ := plc.Lookup(3)
	fmt.Println(post.Kind, "to", post.Virtual)
	fmt.Println(plc)
	// Output:
	// virtual to V5
	// {P0-V3, P1-V3, P2-V4, P3-V5}
}

// The PLC of the paper's COM plug-in: two PIRTE-direct ports and two mux
// connections carrying the recipient ids of the far side.
func ExamplePLCEntry() {
	plc, _ := core.ParsePLC("{P0-, P1-, P2-V0.P0, P3-V0.P1}")
	for _, post := range plc {
		fmt.Println(post)
	}
	// Output:
	// P0-
	// P1-
	// P2-V0.P0
	// P3-V0.P1
}

// The ECC of the paper's COM plug-in routes two message ids from the
// phone to plug-in ports on ECU1.
func ExampleParseECC() {
	ecc, _ := core.ParseECC("{{111.22.33.44:56789, ECU1, 'Wheels', P0}, {111.22.33.44:56789, ECU1, 'Speed', P1}}")
	entry, _ := ecc.Route("Speed")
	fmt.Println(entry.ECU, entry.Port)
	fmt.Println(ecc.Endpoints())
	// Output:
	// ECU1 P1
	// [111.22.33.44:56789]
}

// A PIC maps developer-chosen port names to SW-C-scope unique ids.
func ExamplePIC() {
	pic := core.PIC{{Name: "WheelsIn", ID: 0}, {Name: "SpeedIn", ID: 1}}
	id, _ := pic.Lookup("SpeedIn")
	fmt.Println(id)
	fmt.Println(pic)
	// Output:
	// P1
	// {WheelsIn:P0, SpeedIn:P1}
}
