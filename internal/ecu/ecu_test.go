package ecu

import (
	"testing"

	"dynautosar/internal/bsw"
	"dynautosar/internal/can"
	"dynautosar/internal/core"
	"dynautosar/internal/pirte"
	"dynautosar/internal/sim"
	"dynautosar/internal/vfb"
)

func twoECUs(t *testing.T) (*sim.Engine, *ECU, *ECU) {
	t.Helper()
	eng := sim.NewEngine()
	bus := can.NewBus(eng, "CAN0", 500_000)
	return eng, New(eng, "ECU1", bus), New(eng, "ECU2", bus)
}

func TestStartTransitionsEcuM(t *testing.T) {
	_, e1, _ := twoECUs(t)
	if err := e1.Start(); err != nil {
		t.Fatal(err)
	}
	if e1.EcuM.State() != bsw.StateRun {
		t.Fatalf("state = %v", e1.EcuM.State())
	}
	if err := e1.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestHostPIRTEValidation(t *testing.T) {
	_, e1, _ := twoECUs(t)
	cfg := pirte.Config{ECU: "ECU9", SWC: "SW-CX"}
	if _, err := e1.HostPIRTE(cfg); err == nil {
		t.Fatal("mismatched ECU accepted")
	}
	cfg.ECU = "ECU1"
	if _, err := e1.HostPIRTE(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.HostPIRTE(cfg); err == nil {
		t.Fatal("second plug-in SW-C accepted")
	}
	// The ECU's NvM is wired in automatically.
	if e1.PIRTE.Config().NvM != e1.NvM {
		t.Fatal("PIRTE not bound to ECU NvM")
	}
}

func TestConnectCrossECU(t *testing.T) {
	eng, e1, e2 := twoECUs(t)
	sr := vfb.Interface{Name: "SR", Kind: vfb.SenderReceiver}
	prod := vfb.ComponentType{
		Name:  "P",
		Ports: []vfb.PortDef{{Name: "S0", Direction: core.Provided, Iface: sr}},
	}
	cons := vfb.ComponentType{
		Name:  "C",
		Ports: []vfb.PortDef{{Name: "S1", Direction: core.Required, Iface: sr}},
	}
	if err := e1.RTE.AddComponent("P", prod); err != nil {
		t.Fatal(err)
	}
	if err := e2.RTE.AddComponent("C", cons); err != nil {
		t.Fatal(err)
	}
	alloc := NewCanIDAllocator(0x500)
	if err := Connect(alloc, e1, "P", 0, e2, "C", 1); err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello across the bus")
	if err := e1.RTE.Write("P", "S0", payload); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got, ok := e2.RTE.Read("C", "S1")
	if !ok || string(got) != string(payload) {
		t.Fatalf("cross-ECU read = %q, %v", got, ok)
	}
}

func TestAllocatorPairs(t *testing.T) {
	a := NewCanIDAllocator(0x100)
	tx1, rx1 := a.Pair()
	tx2, _ := a.Pair()
	if tx1 != 0x100 || rx1 != 0x101 || tx2 != 0x102 {
		t.Fatalf("pairs = %x %x %x", tx1, rx1, tx2)
	}
}
