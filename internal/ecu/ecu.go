// Package ecu assembles one electronic control unit of the test platform:
// an OSEK kernel, an RTE, a CAN controller with its COM stack, the basic
// software services, and optionally a plug-in SW-C (PIRTE) or the ECM.
// It mirrors the paper's platform where each Raspberry Pi ran ArcticCore
// plus one plug-in SW-C (section 4).
package ecu

import (
	"fmt"

	"dynautosar/internal/bsw"
	"dynautosar/internal/can"
	"dynautosar/internal/com"
	"dynautosar/internal/core"
	"dynautosar/internal/ecm"
	"dynautosar/internal/osek"
	"dynautosar/internal/pirte"
	"dynautosar/internal/rte"
	"dynautosar/internal/sim"
)

// ECU is one node of the vehicle.
type ECU struct {
	ID     core.ECUID
	Eng    *sim.Engine
	Kernel *osek.Kernel
	RTE    *rte.RTE
	Node   *can.Node
	Com    *com.Stack
	IoHwAb *bsw.IoHwAb
	NvM    *bsw.NvM
	WdgM   *bsw.WdgM
	EcuM   *bsw.EcuM

	// PIRTE is the plug-in SW-C hosted on this ECU, nil when the ECU only
	// runs built-in software.
	PIRTE *pirte.PIRTE
	// ECM is set on the gateway ECU.
	ECM *ecm.ECM

	transports []*com.Transport
}

// New creates an ECU attached to the bus.
func New(eng *sim.Engine, id core.ECUID, bus *can.Bus) *ECU {
	kernel := osek.New(eng, string(id))
	node := bus.AttachNode(string(id))
	e := &ECU{
		ID:     id,
		Eng:    eng,
		Kernel: kernel,
		RTE:    rte.New(kernel),
		Node:   node,
		Com:    com.NewStack(eng, node),
		IoHwAb: bsw.NewIoHwAb(eng),
		NvM:    bsw.NewNvM(),
		WdgM:   bsw.NewWdgM(eng),
		EcuM:   bsw.NewEcuM(),
	}
	return e
}

// Start moves the ECU state machine into Run.
func (e *ECU) Start() error {
	if err := e.EcuM.Transition(bsw.StateStartup); err != nil {
		return err
	}
	return e.EcuM.Transition(bsw.StateRun)
}

// NewTransport creates a segmenting transport endpoint on this ECU's CAN
// controller.
func (e *ECU) NewTransport(txID uint32, rxID uint32) *com.Transport {
	tr := com.NewTransport(e.Node, txID, false, can.Filter{ID: rxID, Mask: ^uint32(0)})
	e.transports = append(e.transports, tr)
	return tr
}

// HostPIRTE creates and attaches a plug-in SW-C with the given PIRTE
// configuration. The configuration's ECU field must match this ECU.
func (e *ECU) HostPIRTE(cfg pirte.Config) (*pirte.PIRTE, error) {
	if cfg.ECU != e.ID {
		return nil, fmt.Errorf("ecu: PIRTE config targets %s, hosting on %s", cfg.ECU, e.ID)
	}
	if e.PIRTE != nil {
		return nil, fmt.Errorf("ecu: %s already hosts a plug-in SW-C", e.ID)
	}
	if cfg.NvM == nil {
		cfg.NvM = e.NvM
	}
	p, err := pirte.New(e.Eng, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Attach(e.RTE); err != nil {
		return nil, err
	}
	e.PIRTE = p
	return p, nil
}

// HostECM upgrades this ECU's plug-in SW-C into the vehicle's ECM.
func (e *ECU) HostECM(cfg pirte.Config) (*ecm.ECM, error) {
	p, err := e.HostPIRTE(cfg)
	if err != nil {
		return nil, err
	}
	e.ECM = ecm.New(e.Eng, p)
	return e.ECM, nil
}

// CanIDAllocatorHandle hands out CAN identifier pairs for cross-ECU
// links; lower ids are allocated first so earlier links win arbitration.
type CanIDAllocatorHandle struct{ next uint32 }

// NewCanIDAllocator starts allocating at base.
func NewCanIDAllocator(base uint32) *CanIDAllocatorHandle {
	return &CanIDAllocatorHandle{next: base}
}

// Pair returns two fresh identifiers.
func (a *CanIDAllocatorHandle) Pair() (uint32, uint32) {
	tx := a.next
	a.next += 2
	return tx, tx + 1
}

// Connect realises a cross-ECU VFB connection between two SW-C ports: a
// transport pair is allocated and bound into both RTEs.
func Connect(alloc *CanIDAllocatorHandle, fromECU *ECU, fromSWC core.SWCID, fromPort core.SWCPortID,
	toECU *ECU, toSWC core.SWCID, toPort core.SWCPortID) error {
	txID, rxID := alloc.Pair()
	out := fromECU.NewTransport(txID, rxID)
	in := toECU.NewTransport(rxID, txID)
	if err := fromECU.RTE.BindNetworkTx(string(fromSWC), fromPort.String(), out); err != nil {
		return err
	}
	return toECU.RTE.BindNetworkRx(in, string(toSWC), toPort.String())
}
