package vehicle

import (
	"testing"

	"dynautosar/internal/can"
	"dynautosar/internal/core"
	"dynautosar/internal/osek"
	"dynautosar/internal/pirte"
	"dynautosar/internal/sim"
)

// Failure injection: the dynamic installation path must survive a lossy
// bus — CAN error frames corrupt transfers, the controller retransmits,
// and the ISO-TP reassembly still completes. This exercises the
// robustness the paper's platform gets from CAN's own fault confinement.
func TestInstallSurvivesBusCorruption(t *testing.T) {
	car, eng, server := newCar(t)
	// Corrupt every 10th frame on the bus; retransmission must recover.
	n := 0
	car.Bus.SetFaultInjector(func(can.Frame) can.FaultAction {
		n++
		if n%10 == 0 {
			return can.Corrupt
		}
		return can.Deliver
	})
	installPaperApp(t, car, eng, server)
	if _, ok := car.SWC2PIRTE.Plugin("OP"); !ok {
		t.Fatal("OP not installed despite retransmissions")
	}
	if car.Bus.Stats().FramesCorrupted == 0 {
		t.Fatal("fault injector never fired; test is vacuous")
	}
	// The signal chain works on the lossy bus too.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 33)
	eng.RunFor(300 * sim.Millisecond)
	if got := car.Dynamics.WheelAngle(); got != 33 {
		t.Fatalf("wheel angle = %d on lossy bus", got)
	}
}

// A trapped plug-in must not take the platform down: the dispatcher
// parks it as faulted and the rest of the vehicle keeps operating.
func TestFaultedPluginIsContained(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)

	// Install a crashing plug-in next to OP on SW-C2.
	crashSrc := `
.plugin Crasher 1.0
.port in required
on_message in:
	PUSH 1
	PUSH 0
	DIV
	RET
`
	pkg, err := buildPackage(crashSrc, false, core.Context{
		PIC: core.PIC{{Name: "in", ID: 40}},
		PLC: core.PLC{{Kind: core.LinkNone, Plugin: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := InstallMessage(pkg, ECU2, SWC2, 50)
	if err != nil {
		t.Fatal(err)
	}
	car.ECM.HandleServerMessage(msg)
	eng.RunFor(300 * sim.Millisecond)
	if _, ok := car.SWC2PIRTE.Plugin("Crasher"); !ok {
		t.Fatal("Crasher not installed")
	}

	// Trip it with a directly addressed external message (type II mux
	// traffic is addressed by recipient id, so the crasher only sees what
	// is sent to its own port).
	trip := core.Message{Type: core.MsgExternal, ECU: ECU2, SWC: SWC2,
		Payload: extPayload(40, 1)}
	car.ECM.HandleServerMessage(trip)
	eng.RunFor(300 * sim.Millisecond)
	// The vehicle still works: drive the wheels through COM and OP.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 7)
	eng.RunFor(300 * sim.Millisecond)
	ip, _ := car.SWC2PIRTE.Plugin("Crasher")
	if ip.State() != pirte.StateFaulted {
		t.Fatalf("Crasher state = %v, want faulted", ip.State())
	}
	// OP and the rest of the vehicle are unaffected.
	if got := car.Dynamics.WheelAngle(); got != 7 {
		t.Fatalf("wheel angle = %d; healthy plug-in disturbed by faulty one", got)
	}
	opIP, _ := car.SWC2PIRTE.Plugin("OP")
	if opIP.State() != pirte.StateRunning {
		t.Fatalf("OP state = %v", opIP.State())
	}
}

// Best-effort execution (paper section 3.1.1): plug-ins run below the
// built-in priorities, so heavy built-in load delays plug-in dispatch —
// but neither side starves the other.
func TestBestEffortSchedulingUnderLoad(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)

	// A high-priority built-in task hogging 9 of every 10 ms on ECU2.
	e2, _ := car.ECU(ECU2)
	ran := 0
	hog := e2.Kernel.DeclareTask(osek.TaskConfig{
		Name: "builtin-hog", Priority: 50, ExecTime: 9 * sim.Millisecond,
		Body: func() { ran++ },
	})
	alarm := e2.Kernel.DeclareAlarm(osek.AlarmAction{Task: hog})
	if err := e2.Kernel.SetRelAlarm(alarm, 0, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The command still gets through — later, but without starving the
	// built-in task.
	start := eng.Now()
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 99)
	for car.Dynamics.WheelAngle() != 99 {
		eng.RunFor(10 * sim.Millisecond)
		if eng.Now()-start > sim.Time(5*sim.Second) {
			t.Fatal("plug-in starved under built-in load")
		}
	}
	elapsed := sim.Duration(eng.Now() - start)
	// The built-in task keeps its cycle despite the plug-in traffic.
	eng.RunFor(50 * sim.Millisecond)
	if ran < 3 {
		t.Fatalf("built-in load ran only %d times", ran)
	}
	t.Logf("actuation under 90%% built-in load took %d us (hog ran %d times)", elapsed, ran)
}

// extPayload mirrors the MsgExternal payload encoding.
func extPayload(port core.PluginPortID, value int64) []byte {
	e := core.NewEnc(10)
	e.U16(uint16(port))
	e.I64(value)
	return e.Bytes()
}
