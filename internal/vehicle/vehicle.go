// Package vehicle assembles complete simulated vehicles: ECUs on a CAN
// bus, plug-in SW-Cs with their PIRTEs, the ECM gateway, the built-in
// application software and the (simulated) hardware the built-in software
// drives. The ModelCar constructor reproduces the paper's two-RPi test
// platform (section 4) port-for-port.
package vehicle

import (
	"fmt"

	"dynautosar/internal/can"
	"dynautosar/internal/core"
	"dynautosar/internal/ecm"
	"dynautosar/internal/ecu"
	"dynautosar/internal/sim"
)

// Vehicle is one simulated vehicle.
type Vehicle struct {
	ID     core.VehicleID
	Model  string
	Engine *sim.Engine
	Bus    *can.Bus
	ECUs   map[core.ECUID]*ecu.ECU
	// ECM is the gateway; its ECU is recorded in ECMECU.
	ECM    *ecm.ECM
	ECMECU core.ECUID

	alloc *ecu.CanIDAllocatorHandle

	// conf accumulates the SW-C configurations for the server upload.
	conf core.VehicleConf
}

// New creates an empty vehicle with one CAN bus.
func New(eng *sim.Engine, id core.VehicleID, model string, bitrate int) *Vehicle {
	return &Vehicle{
		ID:     id,
		Model:  model,
		Engine: eng,
		Bus:    can.NewBus(eng, "CAN0", bitrate),
		ECUs:   make(map[core.ECUID]*ecu.ECU),
		alloc:  ecu.NewCanIDAllocator(0x400),
		conf:   core.VehicleConf{Vehicle: id, Model: model},
	}
}

// AddECU attaches a new ECU to the bus.
func (v *Vehicle) AddECU(id core.ECUID) (*ecu.ECU, error) {
	if _, dup := v.ECUs[id]; dup {
		return nil, fmt.Errorf("vehicle: ECU %s already present", id)
	}
	e := ecu.New(v.Engine, id, v.Bus)
	v.ECUs[id] = e
	return e, nil
}

// ECU returns a previously added ECU.
func (v *Vehicle) ECU(id core.ECUID) (*ecu.ECU, bool) {
	e, ok := v.ECUs[id]
	return e, ok
}

// RecordSWCConf registers a plug-in SW-C in the vehicle configuration
// uploaded to the trusted server.
func (v *Vehicle) RecordSWCConf(c core.SWCConf) { v.conf.SWCs = append(v.conf.SWCs, c) }

// Conf returns the vehicle configuration (HW conf + SystemSW conf).
func (v *Vehicle) Conf() core.VehicleConf { return v.conf }

// Alloc exposes the CAN identifier allocator for cross-ECU links.
func (v *Vehicle) Alloc() *ecu.CanIDAllocatorHandle { return v.alloc }

// Start moves every ECU into the Run state.
func (v *Vehicle) Start() error {
	for _, e := range v.ECUs {
		if err := e.Start(); err != nil {
			return err
		}
	}
	return nil
}

// ConnectSWCs wires a provided SW-C port to a required SW-C port across
// ECUs.
func (v *Vehicle) ConnectSWCs(fromECU core.ECUID, fromSWC core.SWCID, fromPort core.SWCPortID,
	toECU core.ECUID, toSWC core.SWCID, toPort core.SWCPortID) error {
	fe, ok := v.ECUs[fromECU]
	if !ok {
		return fmt.Errorf("vehicle: unknown ECU %s", fromECU)
	}
	te, ok := v.ECUs[toECU]
	if !ok {
		return fmt.Errorf("vehicle: unknown ECU %s", toECU)
	}
	return ecu.Connect(v.alloc, fe, fromSWC, fromPort, te, toSWC, toPort)
}

// SetECM records the gateway after it has been hosted on an ECU.
func (v *Vehicle) SetECM(e *ecm.ECM, on core.ECUID) {
	v.ECM = e
	v.ECMECU = on
}

// RunFor advances the whole vehicle simulation.
func (v *Vehicle) RunFor(d sim.Duration) { v.Engine.RunFor(d) }
