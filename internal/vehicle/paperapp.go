package vehicle

import (
	"fmt"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
	"dynautosar/internal/vm"
)

// The remote-control application of the paper's section 4: the
// communicator plug-in COM on the ECM (ECU1) listening to the smart
// phone, and the operator plug-in OP on ECU2 forwarding the control
// signals to the hardware. Sources are written in the plug-in assembly
// of internal/vm; contexts reproduce the paper's PIC/PLC/ECC verbatim.

// PhoneEndpoint is the external resource location from the paper's ECC.
const PhoneEndpoint = "111.22.33.44:56789"

// COMSource is the communicator plug-in. P0/P1 are fed by the ECM from
// the phone ('Wheels'/'Speed'); the handlers format the data and relay it
// through the provided ports P2/P3 into the type II mux.
const COMSource = `
.plugin COM 1.0
.port WheelsExt required
.port SpeedExt required
.port WheelsFwd provided
.port SpeedFwd provided
.const started "communicator ready"

on_init:
	PUSH 0
	LOG started
	POP
	RET
on_message WheelsExt:
	ARG
	PWR WheelsFwd
	RET
on_message SpeedExt:
	ARG
	PWR SpeedFwd
	RET
`

// OPSource is the operator plug-in. P0/P1 receive through the mux; the
// handlers transform the signals into calls to the underlying software by
// writing P2/P3, which the PLC connects to the WheelsReq/SpeedReq virtual
// ports.
const OPSource = `
.plugin OP 1.0
.port WheelsIn required
.port SpeedIn required
.port WheelsOut provided
.port SpeedOut provided
.globals 2
.const started "operator ready"

on_init:
	PUSH 0
	LOG started
	POP
	RET
on_message WheelsIn:
	ARG
	PWR WheelsOut
	RET
on_message SpeedIn:
	ARG
	PWR SpeedOut
	RET
`

// COMContext reproduces the paper's COM deployment: PLC
// {P0-, P1-, P2-V0.P0, P3-V0.P1} and the Wheels/Speed ECC.
func COMContext() core.Context {
	return core.Context{
		PIC: core.PIC{
			{Name: "WheelsExt", ID: 0},
			{Name: "SpeedExt", ID: 1},
			{Name: "WheelsFwd", ID: 2},
			{Name: "SpeedFwd", ID: 3},
		},
		PLC: core.PLC{
			{Kind: core.LinkNone, Plugin: 0},
			{Kind: core.LinkNone, Plugin: 1},
			{Kind: core.LinkVirtualRemote, Plugin: 2, Virtual: 0, Remote: 0},
			{Kind: core.LinkVirtualRemote, Plugin: 3, Virtual: 0, Remote: 1},
		},
		ECC: core.ECC{
			{Endpoint: PhoneEndpoint, ECU: ECU1, MessageID: "Wheels", Port: 0},
			{Endpoint: PhoneEndpoint, ECU: ECU1, MessageID: "Speed", Port: 1},
		},
	}
}

// OPContext reproduces the paper's OP deployment: PLC
// {P0-V3, P1-V3, P2-V4, P3-V5}.
func OPContext() core.Context {
	return core.Context{
		PIC: core.PIC{
			{Name: "WheelsIn", ID: 0},
			{Name: "SpeedIn", ID: 1},
			{Name: "WheelsOut", ID: 2},
			{Name: "SpeedOut", ID: 3},
		},
		PLC: core.PLC{
			{Kind: core.LinkVirtual, Plugin: 0, Virtual: 3},
			{Kind: core.LinkVirtual, Plugin: 1, Virtual: 3},
			{Kind: core.LinkVirtual, Plugin: 2, Virtual: 4},
			{Kind: core.LinkVirtual, Plugin: 3, Virtual: 5},
		},
	}
}

// buildPackage assembles a source into an installation package.
func buildPackage(src string, external bool, ctx core.Context) (plugin.Package, error) {
	prog, err := vm.Assemble(src)
	if err != nil {
		return plugin.Package{}, err
	}
	bin, err := plugin.FromProgram(prog, plugin.Manifest{
		Developer:   "SICS",
		Description: "paper section 4 example application",
		External:    external,
	})
	if err != nil {
		return plugin.Package{}, err
	}
	pkg := plugin.Package{Binary: bin, Context: ctx}
	if err := pkg.Validate(); err != nil {
		return plugin.Package{}, err
	}
	return pkg, nil
}

// COMPackage builds com.pkg.
func COMPackage() (plugin.Package, error) { return buildPackage(COMSource, true, COMContext()) }

// OPPackage builds op.pkg.
func OPPackage() (plugin.Package, error) { return buildPackage(OPSource, false, OPContext()) }

// InstallMessage wraps a package the way the server does: "{0, 'OP',
// ECU2, op.pkg}" (paper section 4).
func InstallMessage(pkg plugin.Package, ecu core.ECUID, swc core.SWCID, seq uint32) (core.Message, error) {
	raw, err := pkg.MarshalBinary()
	if err != nil {
		return core.Message{}, err
	}
	return core.Message{
		Type:    core.MsgInstall,
		Plugin:  pkg.Binary.Manifest.Name,
		ECU:     ecu,
		SWC:     swc,
		Seq:     seq,
		Payload: raw,
	}, nil
}

// PaperBinaries returns the two uploaded binaries (without contexts), the
// artifact a developer stores in the server's APP database.
func PaperBinaries() (com, op plugin.Binary, err error) {
	comPkg, err := COMPackage()
	if err != nil {
		return plugin.Binary{}, plugin.Binary{}, err
	}
	opPkg, err := OPPackage()
	if err != nil {
		return plugin.Binary{}, plugin.Binary{}, err
	}
	return comPkg.Binary, opPkg.Binary, nil
}

// String renders a short platform description, useful in example output.
func (m *ModelCar) String() string {
	return fmt.Sprintf("model car %s: %d ECUs, bus %s @ %d bit/s",
		m.ID, len(m.ECUs), m.Bus.Name(), m.Bus.Bitrate())
}
