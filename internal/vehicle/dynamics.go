package vehicle

import (
	"dynautosar/internal/bsw"
	"dynautosar/internal/sim"
)

// CarDynamics is the hardware model of the paper's model car: a steering
// servo that applies the commanded wheel angle directly and a drive train
// whose measured speed follows the commanded speed with a first-order
// lag. The model closes the loop between the actuator channels written
// by the built-in software and the sensor channel it samples.
type CarDynamics struct {
	io *bsw.IoHwAb
	// Step is the update period of the model.
	Step sim.Duration
	// LagNum/LagDen give the first-order filter coefficient
	// (speed += (cmd-speed)*LagNum/LagDen per step).
	LagNum, LagDen int64

	speed int64
	// History records (time, speed) samples for tests and plots.
	History []SpeedSample
	running bool
}

// SpeedSample is one point of the speed trajectory.
type SpeedSample struct {
	At    sim.Time
	Speed int64
}

// Channel names of the model car hardware.
const (
	ChanWheels     = "Wheels"     // steering servo, degrees*10, [-300, 300]
	ChanSpeedAct   = "SpeedAct"   // commanded speed, mm/s, [0, 2000]
	ChanSpeedSense = "SpeedSense" // measured speed, mm/s
)

// NewCarDynamics registers the hardware channels on the IoHwAb and
// returns the (not yet started) model.
func NewCarDynamics(io *bsw.IoHwAb) (*CarDynamics, error) {
	if err := io.AddChannel(ChanWheels, bsw.PWM, -300, 300); err != nil {
		return nil, err
	}
	if err := io.AddChannel(ChanSpeedAct, bsw.Analog, 0, 2000); err != nil {
		return nil, err
	}
	if err := io.AddChannel(ChanSpeedSense, bsw.Analog, 0, 2000); err != nil {
		return nil, err
	}
	return &CarDynamics{
		io:     io,
		Step:   20 * sim.Millisecond,
		LagNum: 1,
		LagDen: 5,
	}, nil
}

// Start begins the periodic model update on the engine.
func (c *CarDynamics) Start(eng *sim.Engine) {
	if c.running {
		return
	}
	c.running = true
	var step func()
	step = func() {
		cmd, _ := c.io.Read(ChanSpeedAct)
		c.speed += (cmd - c.speed) * c.LagNum / c.LagDen
		_ = c.io.Set(ChanSpeedSense, c.speed)
		c.History = append(c.History, SpeedSample{At: eng.Now(), Speed: c.speed})
		eng.After(c.Step, step)
	}
	eng.After(c.Step, step)
}

// Speed returns the current modelled speed.
func (c *CarDynamics) Speed() int64 { return c.speed }

// WheelAngle returns the last commanded wheel angle.
func (c *CarDynamics) WheelAngle() int64 {
	v, _ := c.io.Read(ChanWheels)
	return v
}
