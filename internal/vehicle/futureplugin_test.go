package vehicle

import (
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/sim"
)

// The paper points out "there may exist unused virtual ports, such as V6
// in SW-C2, which are set up by the OEM for the use of future plug-ins".
// This test is that future plug-in: a speed monitor subscribing to the
// SpeedProv virtual port (V6), installed long after production, without
// touching any built-in software.
func TestFuturePluginUsesReservedV6(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)

	monitorSrc := `
.plugin SpeedMonitor 1.0
.port SpeedProv required
.port MaxSeen provided
.globals 1
on_message SpeedProv:
	ARG
	LDG 0
	MAX
	STG 0
	LDG 0
	PWR MaxSeen
	RET
`
	pkg, err := buildPackage(monitorSrc, false, core.Context{
		PIC: core.PIC{{Name: "SpeedProv", ID: 10}, {Name: "MaxSeen", ID: 11}},
		PLC: core.PLC{
			// P10-V6: subscribe to the reserved SpeedProv virtual port.
			{Kind: core.LinkVirtual, Plugin: 10, Virtual: 6},
			{Kind: core.LinkNone, Plugin: 11},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := InstallMessage(pkg, ECU2, SWC2, 77)
	if err != nil {
		t.Fatal(err)
	}
	car.ECM.HandleServerMessage(msg)
	eng.RunFor(300 * sim.Millisecond)
	if _, ok := car.SWC2PIRTE.Plugin("SpeedMonitor"); !ok {
		t.Fatal("SpeedMonitor not installed")
	}

	// Drive the car; CarCtrl publishes the measured speed on SpeedProv
	// every 50 ms, which now reaches the monitor through V6.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Speed", 600)
	eng.RunFor(3 * sim.Second)
	maxSeen, ok := car.SWC2PIRTE.DirectRead(11)
	if !ok {
		t.Fatal("monitor never observed the published speed")
	}
	if maxSeen < 500 || maxSeen > 600 {
		t.Fatalf("max observed speed = %d, want close to 600", maxSeen)
	}
}
