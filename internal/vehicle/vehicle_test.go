package vehicle

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"dynautosar/internal/core"
	"dynautosar/internal/ecm"
	"dynautosar/internal/sim"
)

// captureConn records written frames; reads report EOF.
type captureConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *captureConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}
func (c *captureConn) Read(p []byte) (int, error) { return 0, io.EOF }
func (c *captureConn) Close() error               { return nil }

func (c *captureConn) messages(t *testing.T) []core.Message {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	r := bytes.NewReader(c.buf.Bytes())
	var out []core.Message
	for r.Len() > 0 {
		m, err := core.ReadMessage(r)
		if err != nil {
			t.Fatalf("decoding server stream: %v", err)
		}
		out = append(out, m)
	}
	return out
}

// newCar assembles the model car with a capture server link and endpoint.
func newCar(t *testing.T) (*ModelCar, *sim.Engine, *captureConn) {
	t.Helper()
	eng := sim.NewEngine()
	car, err := NewModelCar(eng, "VIN-TEST-1")
	if err != nil {
		t.Fatal(err)
	}
	server := &captureConn{}
	car.ECM.SetDialer(ecm.DialerFunc(func(string) (io.ReadWriteCloser, error) {
		return &captureConn{}, nil
	}))
	if err := car.ECM.ConnectServer(server, car.ID); err != nil {
		t.Fatal(err)
	}
	return car, eng, server
}

// installPaperApp pushes COM and OP through the ECM and waits for both
// acknowledgements.
func installPaperApp(t *testing.T, car *ModelCar, eng *sim.Engine, server *captureConn) {
	t.Helper()
	opPkg, err := OPPackage()
	if err != nil {
		t.Fatal(err)
	}
	comPkg, err := COMPackage()
	if err != nil {
		t.Fatal(err)
	}
	opMsg, err := InstallMessage(opPkg, ECU2, SWC2, 1)
	if err != nil {
		t.Fatal(err)
	}
	comMsg, err := InstallMessage(comPkg, ECU1, SWC1, 2)
	if err != nil {
		t.Fatal(err)
	}
	car.ECM.HandleServerMessage(opMsg)
	car.ECM.HandleServerMessage(comMsg)
	eng.RunFor(500 * sim.Millisecond)

	acks := 0
	for _, m := range server.messages(t) {
		if m.Type == core.MsgAck {
			acks++
		}
		if m.Type == core.MsgNack {
			t.Fatalf("nack during install: %s (%s)", m.Plugin, m.Payload)
		}
	}
	if acks != 2 {
		t.Fatalf("acks = %d, want 2 (OP over CAN + COM local)", acks)
	}
}

// TestFig3PaperSignalChain reproduces the complete walkthrough of the
// paper's section 4: installation of com.pkg and op.pkg, then the signal
// chain phone -> COM -> V0(+id) -> S0 -> RTE/CAN -> S3(SW-C2, here S2) ->
// V3 -> OP -> V4/V5 -> built-in software -> actuators.
func TestFig3PaperSignalChain(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)

	// OP installed on ECU2 with the paper's PLC.
	ip, ok := car.SWC2PIRTE.Plugin("OP")
	if !ok {
		t.Fatal("OP not installed on SW-C2")
	}
	if got := ip.Pkg.Context.PLC.String(); got != "{P0-V3, P1-V3, P2-V4, P3-V5}" {
		t.Fatalf("OP PLC = %s", got)
	}
	// COM installed in the ECM SW-C with the paper's PLC.
	cp, ok := car.ECM.Plugin("COM")
	if !ok {
		t.Fatal("COM not installed on SW-C1")
	}
	if got := cp.Pkg.Context.PLC.String(); got != "{P0-, P1-, P2-V0.P0, P3-V0.P1}" {
		t.Fatalf("COM PLC = %s", got)
	}

	// The phone turns the wheels.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 42)
	eng.RunFor(100 * sim.Millisecond)
	if got := car.Dynamics.WheelAngle(); got != 42 {
		t.Fatalf("wheel angle = %d, want 42", got)
	}

	// The phone commands a speed; the drive train ramps towards it.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Speed", 500)
	eng.RunFor(2 * sim.Second)
	if got := car.Dynamics.Speed(); got < 450 || got > 500 {
		t.Fatalf("speed = %d, want ~500", got)
	}
	if len(car.Dynamics.History) == 0 {
		t.Fatal("dynamics recorded no history")
	}
}

func TestFig3FaultProtectionClampsWheelCommand(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)
	// 5000 is far outside the servo range; the OEM monitor on V4 clamps.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 5000)
	eng.RunFor(100 * sim.Millisecond)
	if got := car.Dynamics.WheelAngle(); got != 300 {
		t.Fatalf("wheel angle = %d, want clamp at 300", got)
	}
}

func TestFig3UninstallViaServer(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)
	un := core.Message{Type: core.MsgUninstall, Plugin: "OP", ECU: ECU2, SWC: SWC2, Seq: 9}
	car.ECM.HandleServerMessage(un)
	eng.RunFor(200 * sim.Millisecond)
	if _, ok := car.SWC2PIRTE.Plugin("OP"); ok {
		t.Fatal("OP survived uninstall")
	}
	msgs := server.messages(t)
	last := msgs[len(msgs)-1]
	if last.Type != core.MsgAck || last.Seq != 9 {
		t.Fatalf("uninstall ack = %+v", last)
	}
	// After uninstall the signal chain is dead.
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", -100)
	eng.RunFor(100 * sim.Millisecond)
	if got := car.Dynamics.WheelAngle(); got == -100 {
		t.Fatal("signal chain alive after uninstall")
	}
}

func TestFig3StopAndRestartFresh(t *testing.T) {
	car, eng, server := newCar(t)
	installPaperApp(t, car, eng, server)
	stop := core.Message{Type: core.MsgStop, Plugin: "OP", ECU: ECU2, SWC: SWC2, Seq: 11}
	car.ECM.HandleServerMessage(stop)
	eng.RunFor(100 * sim.Millisecond)
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 77)
	eng.RunFor(100 * sim.Millisecond)
	if got := car.Dynamics.WheelAngle(); got == 77 {
		t.Fatal("stopped plug-in still actuates")
	}
	start := core.Message{Type: core.MsgStart, Plugin: "OP", ECU: ECU2, SWC: SWC2, Seq: 12}
	car.ECM.HandleServerMessage(start)
	eng.RunFor(100 * sim.Millisecond)
	car.ECM.HandleEndpointFrame(PhoneEndpoint, "Wheels", 78)
	eng.RunFor(100 * sim.Millisecond)
	if got := car.Dynamics.WheelAngle(); got != 78 {
		t.Fatalf("restarted plug-in: wheel angle = %d, want 78", got)
	}
}

func TestVehicleConfMatchesPlatform(t *testing.T) {
	car, _, _ := newCar(t)
	conf := car.Conf()
	if err := conf.Validate(); err != nil {
		t.Fatal(err)
	}
	ecmConf, ok := conf.ECMSWc()
	if !ok || ecmConf.ECU != ECU1 || ecmConf.SWC != SWC1 {
		t.Fatalf("ECM conf = %+v", ecmConf)
	}
	swc2, ok := conf.SWC(ECU2, SWC2)
	if !ok {
		t.Fatal("SW-C2 conf missing")
	}
	wheels, ok := swc2.VirtualPort("WheelsReq")
	if !ok || wheels.ID != 4 || wheels.Format != "i16be" {
		t.Fatalf("WheelsReq = %+v", wheels)
	}
	if _, ok := swc2.VirtualPort("SpeedProv"); !ok {
		t.Fatal("unused V6 (SpeedProv) must still be exposed for future plug-ins")
	}
}

func TestDynamicsFirstOrderLag(t *testing.T) {
	eng := sim.NewEngine()
	car, err := NewModelCar(eng, "VIN-DYN")
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := car.ECU(ECU2)
	if _, err := e2.IoHwAb.Write(ChanSpeedAct, 1000); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(200 * sim.Millisecond) // 10 steps of 20 ms
	mid := car.Dynamics.Speed()
	if mid <= 0 || mid >= 1000 {
		t.Fatalf("speed after 10 steps = %d, want ramping", mid)
	}
	eng.RunFor(3 * sim.Second)
	if got := car.Dynamics.Speed(); got < 950 {
		t.Fatalf("speed settled at %d", got)
	}
}

func TestVehicleBuilderErrors(t *testing.T) {
	eng := sim.NewEngine()
	v := New(eng, "VIN-X", "custom", 500_000)
	if _, err := v.AddECU("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddECU("A"); err == nil {
		t.Fatal("duplicate ECU accepted")
	}
	if err := v.ConnectSWCs("missing", "S", 0, "A", "S", 0); err == nil {
		t.Fatal("unknown ECU accepted")
	}
	if _, ok := v.ECU("A"); !ok {
		t.Fatal("ECU lookup failed")
	}
}
