package vehicle

import (
	"fmt"

	"dynautosar/internal/core"
	"dynautosar/internal/pirte"
	"dynautosar/internal/sim"
	"dynautosar/internal/vfb"
)

// The model car of the paper's section 4: two ECUs on one CAN bus. ECU1
// carries the ECM SW-C (SW-C1) where the COM plug-in will live; ECU2
// carries SW-C2 where the OP plug-in will live, plus the built-in CarCtrl
// software driving the simulated hardware.
//
// Port map (fixed by the OEM at design time; the SystemSW conf uploads
// exactly this):
//
//	SW-C1 (ECM, ECU1):  S0 type II provided  -> SW-C2 S2
//	                    S1 type II required  <- SW-C2 S3
//	                    S2 type I  provided  -> SW-C2 S0   (packages)
//	                    S3 type I  required  <- SW-C2 S1   (acks)
//	                    V0 = mux out (type II), V1 = mux in (type II)
//	SW-C2 (ECU2):       S0 type I  required, S1 type I provided
//	                    S2 type II required, S3 type II provided
//	                    S4 type III provided WheelsReq  (V4, i16be)
//	                    S5 type III provided SpeedReq   (V5, i16be)
//	                    S6 type III required SpeedProv  (V6, i16be)
//	                    V3 = mux in (type II)
//
// V6 is deliberately left unused by the OP plug-in — the paper points it
// out as an OEM-provisioned port for future plug-ins.

// Identities of the model car platform.
const (
	ECU1 core.ECUID = "ECU1"
	ECU2 core.ECUID = "ECU2"
	SWC1 core.SWCID = "SW-C1"
	SWC2 core.SWCID = "SW-C2"
)

// ECMConfig returns the PIRTE configuration of SW-C1.
func ECMConfig() pirte.Config {
	return pirte.Config{
		ECU: ECU1,
		SWC: SWC1,
		SWCPorts: []core.SWCPortSpec{
			{ID: 0, Type: core.TypeII, Direction: core.Provided},
			{ID: 1, Type: core.TypeII, Direction: core.Required},
			{ID: 2, Type: core.TypeI, Direction: core.Provided},
			{ID: 3, Type: core.TypeI, Direction: core.Required},
		},
		VirtualPorts: []core.VirtualPortSpec{
			{ID: 0, SWCPort: 0, Type: core.TypeII, Direction: core.Provided, Name: "MuxOut"},
			{ID: 1, SWCPort: 1, Type: core.TypeII, Direction: core.Required, Name: "MuxIn"},
		},
		MemoryQuota:      1024,
		MaxPlugins:       8,
		DispatchPriority: 1,
	}
}

// SWC2Config returns the PIRTE configuration of SW-C2.
func SWC2Config() pirte.Config {
	return pirte.Config{
		ECU: ECU2,
		SWC: SWC2,
		SWCPorts: []core.SWCPortSpec{
			{ID: 0, Type: core.TypeI, Direction: core.Required},
			{ID: 1, Type: core.TypeI, Direction: core.Provided},
			{ID: 2, Type: core.TypeII, Direction: core.Required},
			{ID: 3, Type: core.TypeII, Direction: core.Provided},
			{ID: 4, Type: core.TypeIII, Direction: core.Provided, Signal: "WheelsReq"},
			{ID: 5, Type: core.TypeIII, Direction: core.Provided, Signal: "SpeedReq"},
			{ID: 6, Type: core.TypeIII, Direction: core.Required, Signal: "SpeedProv"},
		},
		VirtualPorts: []core.VirtualPortSpec{
			{ID: 3, SWCPort: 2, Type: core.TypeII, Direction: core.Required, Name: "Mux"},
			{ID: 7, SWCPort: 3, Type: core.TypeII, Direction: core.Provided, Name: "MuxOut"},
			{ID: 4, SWCPort: 4, Type: core.TypeIII, Direction: core.Provided, Name: "WheelsReq", Format: pirte.FormatI16},
			{ID: 5, SWCPort: 5, Type: core.TypeIII, Direction: core.Provided, Name: "SpeedReq", Format: pirte.FormatI16},
			{ID: 6, SWCPort: 6, Type: core.TypeIII, Direction: core.Required, Name: "SpeedProv", Format: pirte.FormatI16},
		},
		MemoryQuota:      1024,
		MaxPlugins:       8,
		DispatchPriority: 1,
	}
}

// ModelCar is the assembled two-ECU platform.
type ModelCar struct {
	*Vehicle
	Dynamics *CarDynamics
	// SWC2PIRTE is the plug-in runtime on ECU2.
	SWC2PIRTE *pirte.PIRTE
}

// carCtrl builds the built-in CarCtrl component on ECU2: it applies wheel
// and speed requests to the IoHwAb and publishes the measured speed.
func carCtrl(car *ModelCar) vfb.ComponentType {
	sr := func(name string) vfb.Interface {
		return vfb.Interface{Name: name, Kind: vfb.SenderReceiver, MaxLen: 8}
	}
	io := func() *CarDynamics { return car.Dynamics }
	return vfb.ComponentType{
		Name: "CarCtrl",
		Ports: []vfb.PortDef{
			{Name: "WheelsIn", Direction: core.Required, Iface: sr("WheelsReq")},
			{Name: "SpeedIn", Direction: core.Required, Iface: sr("SpeedReq")},
			{Name: "SpeedOut", Direction: core.Provided, Iface: sr("SpeedProv")},
		},
		Runnables: []vfb.RunnableSpec{
			{
				Name: "onWheels", OnData: []string{"WheelsIn"}, Priority: 5,
				Entry: func(rt vfb.Runtime) {
					if data, ok := rt.Read("WheelsIn"); ok && len(data) >= 2 {
						v := int64(int16(uint16(data[0])<<8 | uint16(data[1])))
						_, _ = io().io.Write(ChanWheels, v)
					}
				},
			},
			{
				Name: "onSpeed", OnData: []string{"SpeedIn"}, Priority: 5,
				Entry: func(rt vfb.Runtime) {
					if data, ok := rt.Read("SpeedIn"); ok && len(data) >= 2 {
						v := int64(int16(uint16(data[0])<<8 | uint16(data[1])))
						_, _ = io().io.Write(ChanSpeedAct, v)
					}
				},
			},
			{
				Name: "pubSpeed", Period: 50 * sim.Millisecond, Priority: 4,
				Entry: func(rt vfb.Runtime) {
					v, _ := io().io.Read(ChanSpeedSense)
					_ = rt.Write("SpeedOut", []byte{byte(uint16(v) >> 8), byte(uint16(v))})
				},
			},
		},
	}
}

// NewModelCar assembles the paper's platform on the engine.
func NewModelCar(eng *sim.Engine, id core.VehicleID) (*ModelCar, error) {
	v := New(eng, id, "modelcar-v1", 500_000)
	e1, err := v.AddECU(ECU1)
	if err != nil {
		return nil, err
	}
	e2, err := v.AddECU(ECU2)
	if err != nil {
		return nil, err
	}

	car := &ModelCar{Vehicle: v}

	// Hardware model on ECU2.
	dyn, err := NewCarDynamics(e2.IoHwAb)
	if err != nil {
		return nil, err
	}
	car.Dynamics = dyn
	dyn.Start(eng)

	// Plug-in SW-Cs.
	gateway, err := e1.HostECM(ECMConfig())
	if err != nil {
		return nil, err
	}
	v.SetECM(gateway, ECU1)
	p2, err := e2.HostPIRTE(SWC2Config())
	if err != nil {
		return nil, err
	}
	car.SWC2PIRTE = p2

	// Built-in software on ECU2.
	if err := e2.RTE.AddComponent("CarCtrl", carCtrl(car)); err != nil {
		return nil, err
	}
	if err := e2.RTE.Connect(string(SWC2), "S4", "CarCtrl", "WheelsIn"); err != nil {
		return nil, err
	}
	if err := e2.RTE.Connect(string(SWC2), "S5", "CarCtrl", "SpeedIn"); err != nil {
		return nil, err
	}
	if err := e2.RTE.Connect("CarCtrl", "SpeedOut", string(SWC2), "S6"); err != nil {
		return nil, err
	}

	// Fault protection on the critical signals (paper section 3.1.1).
	if err := p2.AddMonitor(4, &pirte.RangeMonitor{Min: -300, Max: 300, Clamp: true}); err != nil {
		return nil, err
	}
	if err := p2.AddMonitor(5, &pirte.RangeMonitor{Min: 0, Max: 2000, Clamp: true}); err != nil {
		return nil, err
	}

	// Cross-ECU links (type I pair, then type II pair).
	if err := v.ConnectSWCs(ECU1, SWC1, 2, ECU2, SWC2, 0); err != nil {
		return nil, err
	}
	if err := v.ConnectSWCs(ECU2, SWC2, 1, ECU1, SWC1, 3); err != nil {
		return nil, err
	}
	if err := v.ConnectSWCs(ECU1, SWC1, 0, ECU2, SWC2, 2); err != nil {
		return nil, err
	}
	if err := v.ConnectSWCs(ECU2, SWC2, 3, ECU1, SWC1, 1); err != nil {
		return nil, err
	}

	// The ECM reaches SW-C2 through its type I provided port S2.
	gateway.AddRoute(ECU2, SWC2, 2)

	// Vehicle configuration for the trusted server.
	ecmCfg := ECMConfig()
	v.RecordSWCConf(core.SWCConf{
		ECU: ECU1, SWC: SWC1, MemoryQuota: ecmCfg.MemoryQuota,
		MaxPlugins: ecmCfg.MaxPlugins, ECM: true, VirtualPorts: ecmCfg.VirtualPorts,
	})
	swc2Cfg := SWC2Config()
	v.RecordSWCConf(core.SWCConf{
		ECU: ECU2, SWC: SWC2, MemoryQuota: swc2Cfg.MemoryQuota,
		MaxPlugins: swc2Cfg.MaxPlugins, VirtualPorts: swc2Cfg.VirtualPorts,
	})
	if err := v.Conf().Validate(); err != nil {
		return nil, fmt.Errorf("vehicle: model car conf: %v", err)
	}

	if err := v.Start(); err != nil {
		return nil, err
	}
	return car, nil
}
