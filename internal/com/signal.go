// Package com implements the slice of the AUTOSAR communication stack the
// dynamic component model relies on (paper section 2): bit-level packing
// of signals into I-PDUs, periodic and event-triggered PDU transmission
// over CAN, signal-level reception callbacks, and a segmenting transport
// protocol (ISO-TP style) that carries payloads larger than one CAN frame
// — most importantly the plug-in installation packages distributed by the
// ECM (paper section 3.1.3).
package com

import (
	"fmt"
)

// SignalDef describes the layout of one signal inside an I-PDU.
type SignalDef struct {
	Name string
	// StartBit is the bit position of the least significant bit, counting
	// bit 0 as the LSB of byte 0.
	StartBit int
	// Length is the signal width in bits, 1..64.
	Length int
	// BigEndian selects Motorola byte order for multi-byte signals;
	// the default (false) is Intel order.
	BigEndian bool
}

// Validate checks the layout against a PDU of pduLen bytes.
func (d SignalDef) Validate(pduLen int) error {
	if d.Name == "" {
		return fmt.Errorf("com: signal with empty name")
	}
	if d.Length < 1 || d.Length > 64 {
		return fmt.Errorf("com: signal %q has invalid length %d", d.Name, d.Length)
	}
	if d.StartBit < 0 || d.StartBit+d.Length > pduLen*8 {
		return fmt.Errorf("com: signal %q (%d+%d bits) does not fit a %d-byte PDU",
			d.Name, d.StartBit, d.Length, pduLen)
	}
	return nil
}

// MaxValue returns the largest raw value the signal can carry.
func (d SignalDef) MaxValue() uint64 {
	if d.Length >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(d.Length)) - 1
}

// Pack writes value into dst according to the layout. Bits outside the
// signal are preserved, so several signals share one PDU buffer.
func (d SignalDef) Pack(dst []byte, value uint64) error {
	if err := d.Validate(len(dst)); err != nil {
		return err
	}
	if value > d.MaxValue() {
		return fmt.Errorf("com: value %d overflows signal %q (%d bits)", value, d.Name, d.Length)
	}
	if d.BigEndian {
		// Motorola: most significant bits stored first (at the start bit
		// end of the highest-addressed position). We store the value so
		// that byte order is reversed relative to Intel.
		for i := 0; i < d.Length; i++ {
			bit := (value >> uint(d.Length-1-i)) & 1
			pos := d.StartBit + i
			bytePos := pos / 8
			bitPos := 7 - pos%8
			if bit == 1 {
				dst[bytePos] |= 1 << uint(bitPos)
			} else {
				dst[bytePos] &^= 1 << uint(bitPos)
			}
		}
		return nil
	}
	for i := 0; i < d.Length; i++ {
		bit := (value >> uint(i)) & 1
		pos := d.StartBit + i
		bytePos := pos / 8
		bitPos := pos % 8
		if bit == 1 {
			dst[bytePos] |= 1 << uint(bitPos)
		} else {
			dst[bytePos] &^= 1 << uint(bitPos)
		}
	}
	return nil
}

// Unpack reads the signal value from src.
func (d SignalDef) Unpack(src []byte) (uint64, error) {
	if err := d.Validate(len(src)); err != nil {
		return 0, err
	}
	var v uint64
	if d.BigEndian {
		for i := 0; i < d.Length; i++ {
			pos := d.StartBit + i
			bytePos := pos / 8
			bitPos := 7 - pos%8
			bit := (src[bytePos] >> uint(bitPos)) & 1
			v |= uint64(bit) << uint(d.Length-1-i)
		}
		return v, nil
	}
	for i := 0; i < d.Length; i++ {
		pos := d.StartBit + i
		bytePos := pos / 8
		bitPos := pos % 8
		bit := (src[bytePos] >> uint(bitPos)) & 1
		v |= uint64(bit) << uint(i)
	}
	return v, nil
}

// ToSigned reinterprets a raw signal value as a two's-complement signed
// number of the signal's width.
func (d SignalDef) ToSigned(raw uint64) int64 {
	if d.Length >= 64 {
		return int64(raw)
	}
	signBit := uint64(1) << uint(d.Length-1)
	if raw&signBit != 0 {
		return int64(raw | ^(signBit<<1 - 1))
	}
	return int64(raw)
}

// FromSigned converts a signed value into the raw two's-complement
// representation of the signal's width.
func (d SignalDef) FromSigned(v int64) uint64 {
	if d.Length >= 64 {
		return uint64(v)
	}
	mask := (uint64(1) << uint(d.Length)) - 1
	return uint64(v) & mask
}
