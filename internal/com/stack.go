package com

import (
	"fmt"

	"dynautosar/internal/can"
	"dynautosar/internal/sim"
)

// IPDUDef declares one interaction-layer PDU: its CAN identifier, length
// and signal layout. A zero CycleTime makes the PDU event-triggered
// (transmitted on every signal update); otherwise it is sent periodically
// from its shadow buffer.
type IPDUDef struct {
	Name      string
	CANID     uint32
	Extended  bool
	Length    int
	Signals   []SignalDef
	CycleTime sim.Duration
}

// Validate checks the definition.
func (d IPDUDef) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("com: PDU with empty name")
	}
	if d.Length < 0 || d.Length > can.MaxData {
		return fmt.Errorf("com: PDU %q has invalid length %d", d.Name, d.Length)
	}
	seen := make(map[string]bool, len(d.Signals))
	for _, s := range d.Signals {
		if err := s.Validate(d.Length); err != nil {
			return fmt.Errorf("com: PDU %q: %v", d.Name, err)
		}
		if seen[s.Name] {
			return fmt.Errorf("com: PDU %q: duplicate signal %q", d.Name, s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

func (d IPDUDef) signal(name string) (SignalDef, bool) {
	for _, s := range d.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return SignalDef{}, false
}

type txPDU struct {
	def    IPDUDef
	shadow []byte
}

type rxHandler struct {
	signal SignalDef
	fn     func(uint64, sim.Time)
}

type rxPDU struct {
	def      IPDUDef
	handlers []rxHandler
	rawFns   []func([]byte, sim.Time)
	// scratch is the reusable dispatch buffer: arrivals shorter than the
	// PDU are padded into it, and raw callbacks receive it directly —
	// valid only for the duration of the callback, like the CAN layer's
	// receive buffer it usually aliases.
	scratch []byte
}

// Stack is one ECU's COM instance, bound to one CAN node.
type Stack struct {
	eng  *sim.Engine
	node *can.Node
	tx   map[string]*txPDU
	rx   map[uint32]*rxPDU
}

// NewStack creates a COM stack on the given CAN node.
func NewStack(eng *sim.Engine, node *can.Node) *Stack {
	return &Stack{
		eng:  eng,
		node: node,
		tx:   make(map[string]*txPDU),
		rx:   make(map[uint32]*rxPDU),
	}
}

// DefineTx registers a transmit PDU. Periodic PDUs start their cycle
// immediately.
func (s *Stack) DefineTx(def IPDUDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	if _, dup := s.tx[def.Name]; dup {
		return fmt.Errorf("com: tx PDU %q already defined", def.Name)
	}
	p := &txPDU{def: def, shadow: make([]byte, def.Length)}
	s.tx[def.Name] = p
	if def.CycleTime > 0 {
		var cycle func()
		cycle = func() {
			s.transmit(p)
			s.eng.After(def.CycleTime, cycle)
		}
		s.eng.After(def.CycleTime, cycle)
	}
	return nil
}

// DefineRx registers a receive PDU and hooks its CAN identifier.
func (s *Stack) DefineRx(def IPDUDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	if _, dup := s.rx[def.CANID]; dup {
		return fmt.Errorf("com: rx PDU for CAN id %03X already defined", def.CANID)
	}
	p := &rxPDU{def: def, scratch: make([]byte, def.Length)}
	s.rx[def.CANID] = p
	s.node.OnReceive(can.Filter{ID: def.CANID, Mask: ^uint32(0)}, func(f can.Frame, at sim.Time) {
		s.dispatch(p, f, at)
	})
	return nil
}

// SendSignal updates the signal in the PDU's shadow buffer; event
// triggered PDUs transmit immediately, periodic ones at the next cycle.
func (s *Stack) SendSignal(pduName, sigName string, value uint64) error {
	p, ok := s.tx[pduName]
	if !ok {
		return fmt.Errorf("com: unknown tx PDU %q", pduName)
	}
	def, ok := p.def.signal(sigName)
	if !ok {
		return fmt.Errorf("com: PDU %q has no signal %q", pduName, sigName)
	}
	if err := def.Pack(p.shadow, value); err != nil {
		return err
	}
	if p.def.CycleTime == 0 {
		return s.transmit(p)
	}
	return nil
}

// SendRaw transmits an event PDU with a verbatim payload, bypassing the
// signal layer. The payload must not exceed the PDU length.
func (s *Stack) SendRaw(pduName string, payload []byte) error {
	p, ok := s.tx[pduName]
	if !ok {
		return fmt.Errorf("com: unknown tx PDU %q", pduName)
	}
	if len(payload) > p.def.Length {
		return fmt.Errorf("com: payload of %d bytes exceeds PDU %q length %d",
			len(payload), pduName, p.def.Length)
	}
	copy(p.shadow, payload)
	for i := len(payload); i < len(p.shadow); i++ {
		p.shadow[i] = 0
	}
	return s.transmit(p)
}

// OnSignal registers a callback invoked whenever the named signal arrives.
func (s *Stack) OnSignal(canID uint32, sigName string, fn func(uint64, sim.Time)) error {
	p, ok := s.rx[canID]
	if !ok {
		return fmt.Errorf("com: no rx PDU for CAN id %03X", canID)
	}
	def, ok := p.def.signal(sigName)
	if !ok {
		return fmt.Errorf("com: rx PDU %q has no signal %q", p.def.Name, sigName)
	}
	p.handlers = append(p.handlers, rxHandler{signal: def, fn: fn})
	return nil
}

// OnPDU registers a callback for the raw bytes of every arrival of the
// PDU.
func (s *Stack) OnPDU(canID uint32, fn func([]byte, sim.Time)) error {
	p, ok := s.rx[canID]
	if !ok {
		return fmt.Errorf("com: no rx PDU for CAN id %03X", canID)
	}
	p.rawFns = append(p.rawFns, fn)
	return nil
}

func (s *Stack) transmit(p *txPDU) error {
	// Send copies the payload into its queue slot, so the shadow buffer
	// goes out directly — no per-transmission allocation.
	return s.node.Send(can.Frame{
		ID:       p.def.CANID,
		Extended: p.def.Extended,
		Data:     p.shadow,
	})
}

func (s *Stack) dispatch(p *rxPDU, f can.Frame, at sim.Time) {
	data := f.Data
	if len(data) < p.def.Length {
		// Pad short frames in the reusable scratch buffer.
		n := copy(p.scratch, data)
		for i := n; i < len(p.scratch); i++ {
			p.scratch[i] = 0
		}
		data = p.scratch
	}
	for _, fn := range p.rawFns {
		// Raw callbacks get the transient buffer; they must consume or
		// copy before returning (all in-tree consumers unpack in place).
		fn(data, at)
	}
	for _, h := range p.handlers {
		v, err := h.signal.Unpack(data)
		if err != nil {
			continue
		}
		h.fn(v, at)
	}
}
