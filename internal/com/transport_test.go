package com

import (
	"bytes"
	"testing"
	"testing/quick"

	"dynautosar/internal/can"
	"dynautosar/internal/sim"
)

// transportPair wires two transport endpoints A->B over one bus.
func transportPair(t *testing.T) (*sim.Engine, *Transport, *Transport) {
	t.Helper()
	eng := sim.NewEngine()
	bus := can.NewBus(eng, "CAN0", 500_000)
	na := bus.AttachNode("A")
	nb := bus.AttachNode("B")
	ta := NewTransport(na, 0x600, false, can.Filter{ID: 0x601, Mask: ^uint32(0)})
	tb := NewTransport(nb, 0x601, false, can.Filter{ID: 0x600, Mask: ^uint32(0)})
	return eng, ta, tb
}

func TestSingleFrame(t *testing.T) {
	eng, ta, tb := transportPair(t)
	var got []byte
	tb.OnPayload(func(p []byte, _ sim.Time) { got = append([]byte(nil), p...) })
	if err := ta.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if string(got) != "hello" {
		t.Fatalf("got = %q", got)
	}
	if ta.Sent != 1 || tb.Reassembled != 1 {
		t.Fatalf("counters: %d %d", ta.Sent, tb.Reassembled)
	}
}

func TestMultiFrame(t *testing.T) {
	eng, ta, tb := transportPair(t)
	payload := bytes.Repeat([]byte{0xA5}, 100)
	payload[0] = 1
	payload[99] = 2
	var got []byte
	tb.OnPayload(func(p []byte, _ sim.Time) { got = append([]byte(nil), p...) })
	if err := ta.Send(payload); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembly mismatch: %d bytes", len(got))
	}
}

func TestEscapeFormLargePayload(t *testing.T) {
	eng, ta, tb := transportPair(t)
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	tb.OnPayload(func(p []byte, _ sim.Time) { got = append([]byte(nil), p...) })
	if err := ta.Send(payload); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("escape-form reassembly mismatch: got %d bytes", len(got))
	}
}

func TestBidirectional(t *testing.T) {
	eng, ta, tb := transportPair(t)
	var fromA, fromB []byte
	tb.OnPayload(func(p []byte, _ sim.Time) { fromA = append([]byte(nil), p...) })
	ta.OnPayload(func(p []byte, _ sim.Time) { fromB = append([]byte(nil), p...) })
	_ = ta.Send([]byte("to-b"))
	_ = tb.Send([]byte("to-a"))
	eng.Run()
	if string(fromA) != "to-b" || string(fromB) != "to-a" {
		t.Fatalf("fromA=%q fromB=%q", fromA, fromB)
	}
}

func TestEmptyPayloadRejected(t *testing.T) {
	_, ta, _ := transportPair(t)
	if err := ta.Send(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestSequenceErrorAborts(t *testing.T) {
	eng := sim.NewEngine()
	bus := can.NewBus(eng, "CAN0", 500_000)
	raw := bus.AttachNode("RAW")
	nb := bus.AttachNode("B")
	tb := NewTransport(nb, 0x601, false, can.Filter{ID: 0x600, Mask: ^uint32(0)})
	delivered := 0
	tb.OnPayload(func([]byte, sim.Time) { delivered++ })
	// First frame announcing 20 bytes, then a consecutive frame with the
	// wrong sequence number.
	_ = raw.Send(can.Frame{ID: 0x600, Data: []byte{0x10, 20, 1, 2, 3, 4, 5, 6}})
	_ = raw.Send(can.Frame{ID: 0x600, Data: []byte{0x25, 7, 8, 9, 10, 11, 12, 13}})
	eng.Run()
	if delivered != 0 {
		t.Fatal("corrupted stream delivered")
	}
	if tb.Aborted != 1 {
		t.Fatalf("Aborted = %d", tb.Aborted)
	}
	// A consecutive frame without a first frame is also an abort.
	_ = raw.Send(can.Frame{ID: 0x600, Data: []byte{0x21, 1}})
	eng.Run()
	if tb.Aborted != 2 {
		t.Fatalf("Aborted = %d", tb.Aborted)
	}
}

func TestFrameCountMatchesActualFrames(t *testing.T) {
	for _, n := range []int{1, 7, 8, 13, 14, 100, 4095, 4096, 10_000} {
		eng := sim.NewEngine()
		bus := can.NewBus(eng, "CAN0", 500_000)
		na := bus.AttachNode("A")
		bus.AttachNode("B")
		tr := NewTransport(na, 0x600, false, can.Filter{ID: 0x601, Mask: ^uint32(0)})
		if err := tr.Send(make([]byte, n)); err != nil {
			t.Fatal(err)
		}
		frames := 0
		bus.Tap(func(can.Frame, sim.Time) { frames++ })
		eng.Run()
		if frames != FrameCount(n) {
			t.Fatalf("n=%d: frames=%d, FrameCount=%d", n, frames, FrameCount(n))
		}
	}
	if FrameCount(0) != 0 {
		t.Fatal("FrameCount(0) != 0")
	}
}

func TestQuickTransportRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 20_000 {
			payload = payload[:20_000]
		}
		eng := sim.NewEngine()
		bus := can.NewBus(eng, "CAN0", 500_000)
		na := bus.AttachNode("A")
		nb := bus.AttachNode("B")
		ta := NewTransport(na, 0x600, false, can.Filter{ID: 0x601, Mask: ^uint32(0)})
		tb := NewTransport(nb, 0x601, false, can.Filter{ID: 0x600, Mask: ^uint32(0)})
		var got []byte
		tb.OnPayload(func(p []byte, _ sim.Time) { got = append([]byte(nil), p...) })
		if err := ta.Send(payload); err != nil {
			return false
		}
		eng.Run()
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
