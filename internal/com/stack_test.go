package com

import (
	"testing"

	"dynautosar/internal/can"
	"dynautosar/internal/sim"
)

// twoStacks wires two COM stacks over one bus.
func twoStacks(t *testing.T) (*sim.Engine, *Stack, *Stack) {
	t.Helper()
	eng := sim.NewEngine()
	bus := can.NewBus(eng, "CAN0", 500_000)
	a := NewStack(eng, bus.AttachNode("A"))
	b := NewStack(eng, bus.AttachNode("B"))
	return eng, a, b
}

var speedPDU = IPDUDef{
	Name:   "VehSpeed",
	CANID:  0x120,
	Length: 8,
	Signals: []SignalDef{
		{Name: "Speed", StartBit: 0, Length: 16},
		{Name: "Valid", StartBit: 16, Length: 1},
	},
}

func TestEventTriggeredSignal(t *testing.T) {
	eng, a, b := twoStacks(t)
	if err := a.DefineTx(speedPDU); err != nil {
		t.Fatal(err)
	}
	if err := b.DefineRx(speedPDU); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if err := b.OnSignal(0x120, "Speed", func(v uint64, _ sim.Time) { got = append(got, v) }); err != nil {
		t.Fatal(err)
	}
	if err := a.SendSignal("VehSpeed", "Speed", 88); err != nil {
		t.Fatal(err)
	}
	if err := a.SendSignal("VehSpeed", "Speed", 99); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 2 || got[0] != 88 || got[1] != 99 {
		t.Fatalf("got = %v", got)
	}
}

func TestPeriodicPDUTransmitsShadow(t *testing.T) {
	eng, a, b := twoStacks(t)
	pdu := speedPDU
	pdu.CycleTime = 10 * sim.Millisecond
	if err := a.DefineTx(pdu); err != nil {
		t.Fatal(err)
	}
	if err := b.DefineRx(speedPDU); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	_ = b.OnSignal(0x120, "Speed", func(v uint64, _ sim.Time) { got = append(got, v) })
	// Update the shadow once; the periodic machinery must keep sending it.
	if err := a.SendSignal("VehSpeed", "Speed", 55); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(35 * sim.Millisecond))
	if len(got) != 3 {
		t.Fatalf("periodic deliveries = %d, want 3", len(got))
	}
	for _, v := range got {
		if v != 55 {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestMultipleSignalsSharePDU(t *testing.T) {
	eng, a, b := twoStacks(t)
	_ = a.DefineTx(speedPDU)
	_ = b.DefineRx(speedPDU)
	var speed, valid uint64
	_ = b.OnSignal(0x120, "Speed", func(v uint64, _ sim.Time) { speed = v })
	_ = b.OnSignal(0x120, "Valid", func(v uint64, _ sim.Time) { valid = v })
	_ = a.SendSignal("VehSpeed", "Speed", 123)
	eng.Run()
	_ = a.SendSignal("VehSpeed", "Valid", 1)
	eng.Run()
	if speed != 123 || valid != 1 {
		t.Fatalf("speed=%d valid=%d", speed, valid)
	}
}

func TestOnPDURaw(t *testing.T) {
	eng, a, b := twoStacks(t)
	_ = a.DefineTx(speedPDU)
	_ = b.DefineRx(speedPDU)
	var raw []byte
	_ = b.OnPDU(0x120, func(p []byte, _ sim.Time) { raw = p })
	_ = a.SendRaw("VehSpeed", []byte{1, 2, 3})
	eng.Run()
	if len(raw) != 8 || raw[0] != 1 || raw[1] != 2 || raw[2] != 3 || raw[3] != 0 {
		t.Fatalf("raw = % X", raw)
	}
}

func TestStackErrors(t *testing.T) {
	_, a, _ := twoStacks(t)
	if err := a.SendSignal("nope", "Speed", 1); err == nil {
		t.Fatal("unknown PDU accepted")
	}
	_ = a.DefineTx(speedPDU)
	if err := a.DefineTx(speedPDU); err == nil {
		t.Fatal("duplicate tx PDU accepted")
	}
	if err := a.SendSignal("VehSpeed", "nope", 1); err == nil {
		t.Fatal("unknown signal accepted")
	}
	if err := a.SendRaw("VehSpeed", make([]byte, 9)); err == nil {
		t.Fatal("oversized raw accepted")
	}
	if err := a.OnSignal(0x999, "Speed", nil); err == nil {
		t.Fatal("unknown rx id accepted")
	}
	bad := speedPDU
	bad.Length = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized PDU accepted")
	}
	dup := speedPDU
	dup.Signals = append(dup.Signals, dup.Signals[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate signal accepted")
	}
}
