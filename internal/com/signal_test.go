package com

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackIntel(t *testing.T) {
	buf := make([]byte, 8)
	def := SignalDef{Name: "speed", StartBit: 4, Length: 12}
	if err := def.Pack(buf, 0xABC); err != nil {
		t.Fatal(err)
	}
	v, err := def.Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABC {
		t.Fatalf("Unpack = %03X", v)
	}
}

func TestPackUnpackMotorola(t *testing.T) {
	buf := make([]byte, 8)
	def := SignalDef{Name: "angle", StartBit: 0, Length: 16, BigEndian: true}
	if err := def.Pack(buf, 0x1234); err != nil {
		t.Fatal(err)
	}
	// Motorola: MSB first in bit order from start bit.
	if buf[0] != 0x12 || buf[1] != 0x34 {
		t.Fatalf("buf = % X", buf[:2])
	}
	v, err := def.Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1234 {
		t.Fatalf("Unpack = %04X", v)
	}
}

func TestPackPreservesNeighbours(t *testing.T) {
	buf := make([]byte, 2)
	lo := SignalDef{Name: "lo", StartBit: 0, Length: 8}
	hi := SignalDef{Name: "hi", StartBit: 8, Length: 8}
	if err := lo.Pack(buf, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := hi.Pack(buf, 0x55); err != nil {
		t.Fatal(err)
	}
	if v, _ := lo.Unpack(buf); v != 0xAA {
		t.Fatalf("lo = %02X", v)
	}
	if v, _ := hi.Unpack(buf); v != 0x55 {
		t.Fatalf("hi = %02X", v)
	}
	// Overwriting lo must not disturb hi.
	if err := lo.Pack(buf, 0x00); err != nil {
		t.Fatal(err)
	}
	if v, _ := hi.Unpack(buf); v != 0x55 {
		t.Fatalf("hi after repack = %02X", v)
	}
}

func TestPackRejectsOverflowAndBadLayout(t *testing.T) {
	buf := make([]byte, 1)
	def := SignalDef{Name: "nibble", StartBit: 0, Length: 4}
	if err := def.Pack(buf, 16); err == nil {
		t.Fatal("overflow accepted")
	}
	bad := SignalDef{Name: "wide", StartBit: 4, Length: 8}
	if err := bad.Pack(buf, 1); err == nil {
		t.Fatal("out-of-range layout accepted")
	}
	if err := (SignalDef{Name: "", StartBit: 0, Length: 4}).Validate(8); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := (SignalDef{Name: "z", StartBit: 0, Length: 0}).Validate(8); err == nil {
		t.Fatal("zero length accepted")
	}
	if err := (SignalDef{Name: "z", StartBit: 0, Length: 65}).Validate(9); err == nil {
		t.Fatal("65-bit length accepted")
	}
}

func TestSignedConversion(t *testing.T) {
	def := SignalDef{Name: "temp", StartBit: 0, Length: 8}
	raw := def.FromSigned(-40)
	if raw != 0xD8 {
		t.Fatalf("FromSigned(-40) = %02X", raw)
	}
	if got := def.ToSigned(raw); got != -40 {
		t.Fatalf("ToSigned = %d", got)
	}
	if got := def.ToSigned(127); got != 127 {
		t.Fatalf("ToSigned(127) = %d", got)
	}
	wide := SignalDef{Name: "w", StartBit: 0, Length: 64}
	if got := wide.ToSigned(wide.FromSigned(-1)); got != -1 {
		t.Fatalf("64-bit ToSigned = %d", got)
	}
}

func TestQuickPackUnpackRoundTrip(t *testing.T) {
	f := func(value uint64, start, length uint8, bigEndian bool) bool {
		l := int(length)%64 + 1
		s := int(start) % (64 - l + 1)
		def := SignalDef{Name: "x", StartBit: s, Length: l, BigEndian: bigEndian}
		value &= def.MaxValue()
		buf := make([]byte, 8)
		if err := def.Pack(buf, value); err != nil {
			return false
		}
		got, err := def.Unpack(buf)
		return err == nil && got == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignedRoundTrip(t *testing.T) {
	f := func(v int32, length uint8) bool {
		l := int(length)%33 + 32 // 32..64 bits always hold an int32
		def := SignalDef{Name: "s", StartBit: 0, Length: l}
		return def.ToSigned(def.FromSigned(int64(v))) == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
