package com

import (
	"testing"

	"dynautosar/internal/can"
	"dynautosar/internal/sim"
)

// TestAllocFreeSignalChain pins the Fig3 signal chain at the COM/CAN
// layer: pack a signal into its I-PDU, transmit over the arbitrated
// bus, dispatch and unpack at the receiver — zero heap allocations per
// signal in steady state. The chain exercises the inline CAN transmit
// queue, the pooled simulation events, the reusable bus receive buffer
// and the rx PDU scratch pad.
func TestAllocFreeSignalChain(t *testing.T) {
	eng := sim.NewEngine()
	bus := can.NewBus(eng, "CAN0", 500_000)
	tx := NewStack(eng, bus.AttachNode("TX"))
	rx := NewStack(eng, bus.AttachNode("RX"))

	def := IPDUDef{
		Name:  "Speed",
		CANID: 0x120,
		// Length 6 < MaxData, so every arrival takes the short-frame
		// padding path through the rx scratch buffer too.
		Length: 6,
		Signals: []SignalDef{
			{Name: "speed", StartBit: 0, Length: 16},
			{Name: "flags", StartBit: 16, Length: 8},
		},
	}
	if err := tx.DefineTx(def); err != nil {
		t.Fatal(err)
	}
	if err := rx.DefineRx(def); err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := rx.OnSignal(0x120, "speed", func(v uint64, _ sim.Time) { got = v }); err != nil {
		t.Fatal(err)
	}

	v := uint64(0)
	send := func() {
		v = (v + 1) & 0xFFFF
		if err := tx.SendSignal("Speed", "speed", v); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if got != v {
			t.Fatalf("received %d, want %d", got, v)
		}
	}
	send() // warm the engine's event pool and the queue slabs
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Errorf("signal chain: %v allocs/op in steady state, want 0", allocs)
	}
}

// TestAllocFreeTransportSegmentation pins the package-distribution
// path: segmenting a multi-frame payload into the inline CAN queue
// allocates nothing on the sender side.
func TestAllocFreeTransportSegmentation(t *testing.T) {
	eng := sim.NewEngine()
	bus := can.NewBus(eng, "CAN0", 500_000)
	na := bus.AttachNode("A")
	nb := bus.AttachNode("B")
	txp := NewTransport(na, 0x600, false, can.Filter{ID: 0x601, Mask: ^uint32(0)})
	rxp := NewTransport(nb, 0x601, false, can.Filter{ID: 0x600, Mask: ^uint32(0)})
	gotLen := 0
	rxp.OnPayload(func(p []byte, _ sim.Time) { gotLen = len(p) })

	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	send := func() {
		if err := txp.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	send()
	eng.Run()
	if gotLen != len(payload) {
		t.Fatalf("reassembled %d bytes, want %d", gotLen, len(payload))
	}
	// Only the segmentation itself is pinned: reassembly on the receiver
	// legitimately builds a fresh payload buffer.
	if allocs := testing.AllocsPerRun(50, send); allocs != 0 {
		t.Errorf("transport segmentation: %v allocs/op, want 0", allocs)
	}
	eng.Run()
}
