package com

import (
	"encoding/binary"
	"fmt"

	"dynautosar/internal/can"
	"dynautosar/internal/sim"
)

// Transport is a segmenting transport protocol in the style of ISO 15765-2
// (ISO-TP), carrying payloads larger than one CAN frame between two ECUs.
// The ECM uses it to distribute plug-in installation packages to the
// target plug-in SW-Cs and to collect their acknowledgements (paper
// section 3.1.3, type I traffic crossing ECU boundaries).
//
// Frame formats (first payload byte is the protocol control information):
//
//	single    0x0L            + up to 7 data bytes (L = length)
//	first     0x1H 0xLL       + 6 data bytes (12-bit length HLL <= 4095)
//	firstEsc  0x10 0x00 + 4-byte big-endian length + 2 data bytes
//	consec    0x2S            + up to 7 data bytes (S = sequence mod 16)
//
// The escape form extends classic ISO-TP to the multi-kilobyte plug-in
// binaries of the paper's platform. Flow control frames are omitted: the
// simulated receivers are always ready, and the CAN layer already models
// the bus occupancy that flow control would shape.
type Transport struct {
	node *can.Node
	// txID is the CAN identifier this endpoint transmits on.
	txID     uint32
	extended bool

	onPayload []func([]byte, sim.Time)
	// asm holds per-sender reassembly state, keyed by CAN id.
	asm map[uint32]*assembly

	// Sent and Reassembled count completed transfers.
	Sent        uint64
	Reassembled uint64
	// Aborted counts reassemblies dropped due to protocol errors.
	Aborted uint64
}

// assembly is per-sender reassembly state. Objects stay in the asm map
// across transfers and their buffers are reused, so steady-state
// package traffic between a fixed pair of endpoints does not allocate.
type assembly struct {
	buf    []byte
	want   int
	seq    byte
	active bool
}

const (
	pciSingle = 0x0
	pciFirst  = 0x1
	pciConsec = 0x2
)

// NewTransport creates a transport endpoint on the CAN node that transmits
// with identifier txID and reassembles anything matching rxFilter.
func NewTransport(node *can.Node, txID uint32, extended bool, rxFilter can.Filter) *Transport {
	t := &Transport{node: node, txID: txID, extended: extended, asm: make(map[uint32]*assembly)}
	node.OnReceive(rxFilter, t.onFrame)
	return t
}

// OnPayload registers a handler for completely reassembled payloads.
// The payload slice aliases the transport's reassembly buffer and is
// only valid for the duration of the callback; handlers that keep the
// bytes must copy.
func (t *Transport) OnPayload(fn func([]byte, sim.Time)) {
	t.onPayload = append(t.onPayload, fn)
}

// Send segments and queues the payload for transmission. Every segment
// is staged in one stack-local frame buffer — the CAN layer copies on
// Send — so a multi-kilobyte package transfer allocates nothing here.
func (t *Transport) Send(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("com: transport: empty payload")
	}
	var buf [can.MaxData]byte
	send := func(data []byte) error {
		return t.node.Send(can.Frame{ID: t.txID, Extended: t.extended, Data: data})
	}
	if len(payload) <= 7 {
		buf[0] = byte(pciSingle<<4) | byte(len(payload))
		n := copy(buf[1:], payload)
		if err := send(buf[:1+n]); err != nil {
			return err
		}
		t.Sent++
		return nil
	}
	var rest []byte
	if len(payload) <= 4095 {
		buf[0] = byte(pciFirst<<4) | byte(len(payload)>>8)
		buf[1] = byte(len(payload))
		copy(buf[2:], payload[:6])
		if err := send(buf[:8]); err != nil {
			return err
		}
		rest = payload[6:]
	} else {
		buf[0] = pciFirst << 4
		buf[1] = 0
		binary.BigEndian.PutUint32(buf[2:6], uint32(len(payload)))
		copy(buf[6:], payload[:2])
		if err := send(buf[:8]); err != nil {
			return err
		}
		rest = payload[2:]
	}
	seq := byte(1)
	for len(rest) > 0 {
		n := len(rest)
		if n > 7 {
			n = 7
		}
		buf[0] = byte(pciConsec<<4) | (seq & 0xF)
		copy(buf[1:], rest[:n])
		if err := send(buf[:1+n]); err != nil {
			return err
		}
		rest = rest[n:]
		seq++
	}
	t.Sent++
	return nil
}

// FrameCount returns the number of CAN frames needed for a payload of n
// bytes, useful for latency modelling in benchmarks.
func FrameCount(n int) int {
	switch {
	case n <= 0:
		return 0
	case n <= 7:
		return 1
	case n <= 4095:
		rest := n - 6
		return 1 + (rest+6)/7
	default:
		rest := n - 2
		return 1 + (rest+6)/7
	}
}

func (t *Transport) onFrame(f can.Frame, at sim.Time) {
	if len(f.Data) == 0 {
		return
	}
	pci := f.Data[0] >> 4
	switch pci {
	case pciSingle:
		n := int(f.Data[0] & 0xF)
		if n == 0 || n > len(f.Data)-1 {
			t.Aborted++
			return
		}
		// The frame data is the CAN layer's receive buffer, valid for the
		// duration of this callback — exactly the OnPayload contract, so
		// it is handed through without a copy.
		t.deliver(f.Data[1:1+n], at)
	case pciFirst:
		length := int(f.Data[0]&0xF)<<8 | int(f.Data[1])
		var initial []byte
		if length == 0 {
			if len(f.Data) < 8 {
				t.Aborted++
				return
			}
			length = int(binary.BigEndian.Uint32(f.Data[2:6]))
			initial = f.Data[6:]
		} else {
			initial = f.Data[2:]
		}
		if length <= len(initial) {
			t.Aborted++
			return
		}
		a := t.asm[f.ID]
		if a == nil {
			a = &assembly{}
			t.asm[f.ID] = a
		}
		a.buf = append(a.buf[:0], initial...)
		a.want = length
		a.seq = 1
		a.active = true
	case pciConsec:
		a, ok := t.asm[f.ID]
		if !ok || !a.active {
			t.Aborted++
			return
		}
		seq := f.Data[0] & 0xF
		if seq != a.seq&0xF {
			// Sequence error: abort the reassembly (ISO-TP behaviour).
			a.active = false
			t.Aborted++
			return
		}
		a.seq++
		a.buf = append(a.buf, f.Data[1:]...)
		if len(a.buf) >= a.want {
			a.active = false
			t.deliver(a.buf[:a.want], at)
		}
	}
}

func (t *Transport) deliver(payload []byte, at sim.Time) {
	t.Reassembled++
	for _, fn := range t.onPayload {
		fn(payload, at)
	}
}
