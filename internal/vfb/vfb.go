// Package vfb models the AUTOSAR Virtual Function Bus view of application
// software (paper section 2): software component types with required and
// provided ports, sender-receiver and client-server port interfaces,
// runnables with their triggers, and composite components. The VFB lets
// SW-Cs communicate as if they were all allocated to the same ECU; the
// realisation that actually moves data — locally or over CAN — is the RTE
// (internal/rte).
package vfb

import (
	"fmt"

	"dynautosar/internal/core"
	"dynautosar/internal/osek"
	"dynautosar/internal/sim"
)

// InterfaceKind distinguishes the two interaction schemes of AUTOSAR port
// interfaces.
type InterfaceKind int

const (
	// SenderReceiver transports data elements from a provider to one or
	// more receivers.
	SenderReceiver InterfaceKind = iota + 1
	// ClientServer invokes operations on a server and returns results.
	ClientServer
)

// String implements fmt.Stringer.
func (k InterfaceKind) String() string {
	switch k {
	case SenderReceiver:
		return "sender-receiver"
	case ClientServer:
		return "client-server"
	}
	return fmt.Sprintf("InterfaceKind(%d)", int(k))
}

// Interface is a port interface: the contract of a port.
type Interface struct {
	Name string
	Kind InterfaceKind
	// MaxLen bounds the payload of a sender-receiver data element in
	// bytes; 0 means unbounded (local connections only).
	MaxLen int
	// Operations lists the operation names of a client-server interface.
	Operations []string
}

// HasOperation reports whether the interface declares the operation.
func (i Interface) HasOperation(op string) bool {
	for _, o := range i.Operations {
		if o == op {
			return true
		}
	}
	return false
}

// Validate checks internal consistency.
func (i Interface) Validate() error {
	switch i.Kind {
	case SenderReceiver:
		if len(i.Operations) > 0 {
			return fmt.Errorf("vfb: sender-receiver interface %q declares operations", i.Name)
		}
	case ClientServer:
		if len(i.Operations) == 0 {
			return fmt.Errorf("vfb: client-server interface %q declares no operations", i.Name)
		}
	default:
		return fmt.Errorf("vfb: interface %q has invalid kind %d", i.Name, i.Kind)
	}
	return nil
}

// PortDef declares one port of a component type.
type PortDef struct {
	Name      string
	Direction core.Direction
	Iface     Interface
	// QueueLen selects queued reception semantics for required
	// sender-receiver ports: arrivals are buffered FIFO up to this depth.
	// Zero selects AUTOSAR last-is-best semantics.
	QueueLen int
}

// Validate checks the definition.
func (p PortDef) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("vfb: port with empty name")
	}
	if !p.Direction.Valid() {
		return fmt.Errorf("vfb: port %q has invalid direction", p.Name)
	}
	if err := p.Iface.Validate(); err != nil {
		return fmt.Errorf("vfb: port %q: %v", p.Name, err)
	}
	if p.QueueLen < 0 {
		return fmt.Errorf("vfb: port %q has negative queue length", p.Name)
	}
	if p.QueueLen > 0 && p.Iface.Kind != SenderReceiver {
		return fmt.Errorf("vfb: port %q: queued semantics require sender-receiver", p.Name)
	}
	return nil
}

// Runtime is the API a runnable uses to touch its component's ports. It is
// implemented by the RTE; runnables never see other components directly,
// which is what makes SW-Cs relocatable (paper section 2).
type Runtime interface {
	// Write sends data on a provided sender-receiver port.
	Write(port string, data []byte) error
	// Read returns the latest (or, for queued ports, oldest buffered)
	// value of a required sender-receiver port. ok is false when nothing
	// has arrived (or the queue is empty).
	Read(port string) (data []byte, ok bool)
	// Call invokes an operation through a required client-server port.
	Call(port, op string, arg []byte) ([]byte, error)
	// Now returns the current simulated time.
	Now() sim.Time
	// Component returns the name of the running component instance.
	Component() string
}

// RunnableSpec declares one runnable entity of a component and its RTE
// trigger.
type RunnableSpec struct {
	Name string
	// Period > 0 gives a timing-event trigger with this cycle.
	Period sim.Duration
	// OnData triggers the runnable when data arrives on any of these
	// required ports.
	OnData []string
	// OnInvoke names client-server operations (of provided ports) served
	// by this runnable; Handler must be set.
	OnInvoke []string
	// Entry is the runnable body for timing/data triggers.
	Entry func(rt Runtime)
	// Handler serves operation invocations for OnInvoke runnables.
	Handler func(rt Runtime, op string, arg []byte) ([]byte, error)
	// ExecTime is the modelled execution time per activation.
	ExecTime sim.Duration
	// Priority of the OS task the runnable is mapped to.
	Priority osek.Priority
}

// ComponentType describes an atomic SW-C: its ports and runnables.
type ComponentType struct {
	Name      string
	Ports     []PortDef
	Runnables []RunnableSpec
}

// Port looks up a port definition by name.
func (c ComponentType) Port(name string) (PortDef, bool) {
	for _, p := range c.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return PortDef{}, false
}

// Validate checks the component type: unique port names, valid ports, and
// runnable triggers that reference existing ports.
func (c ComponentType) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("vfb: component with empty name")
	}
	seen := make(map[string]bool, len(c.Ports))
	for _, p := range c.Ports {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("vfb: component %q: %v", c.Name, err)
		}
		if seen[p.Name] {
			return fmt.Errorf("vfb: component %q: duplicate port %q", c.Name, p.Name)
		}
		seen[p.Name] = true
	}
	rnames := make(map[string]bool, len(c.Runnables))
	for _, r := range c.Runnables {
		if r.Name == "" {
			return fmt.Errorf("vfb: component %q: runnable with empty name", c.Name)
		}
		if rnames[r.Name] {
			return fmt.Errorf("vfb: component %q: duplicate runnable %q", c.Name, r.Name)
		}
		rnames[r.Name] = true
		triggers := 0
		if r.Period > 0 {
			triggers++
		}
		if len(r.OnData) > 0 {
			triggers++
		}
		if len(r.OnInvoke) > 0 {
			triggers++
		}
		if triggers == 0 {
			return fmt.Errorf("vfb: component %q: runnable %q has no trigger", c.Name, r.Name)
		}
		for _, port := range r.OnData {
			pd, ok := c.Port(port)
			if !ok {
				return fmt.Errorf("vfb: component %q: runnable %q triggers on unknown port %q",
					c.Name, r.Name, port)
			}
			if pd.Direction != core.Required || pd.Iface.Kind != SenderReceiver {
				return fmt.Errorf("vfb: component %q: runnable %q: data trigger needs a required sender-receiver port, got %q",
					c.Name, r.Name, port)
			}
		}
		if len(r.OnInvoke) > 0 && r.Handler == nil {
			return fmt.Errorf("vfb: component %q: runnable %q serves operations but has no handler",
				c.Name, r.Name)
		}
		if (r.Period > 0 || len(r.OnData) > 0) && r.Entry == nil {
			return fmt.Errorf("vfb: component %q: runnable %q has a trigger but no entry", c.Name, r.Name)
		}
	}
	return nil
}
