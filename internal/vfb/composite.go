package vfb

import (
	"fmt"

	"dynautosar/internal/core"
)

// Composite is a composition of component prototypes: SW-Cs can contain
// other SW-Cs (paper section 2). A composite is a design-time artifact;
// Flatten resolves it to the atomic instances and connections the RTE
// actually hosts.
type Composite struct {
	Name string
	// Children instantiates component types under instance names.
	Children map[string]ComponentType
	// Connections wire a provided port of one child to a required port of
	// another, both given as "instance.port".
	Connections []CompositeConnection
	// Delegations expose a child port under a composite-level name, so a
	// composite can itself be wired into a larger composition.
	Delegations map[string]string // composite port -> "instance.port"
}

// CompositeConnection is one internal assembly connection.
type CompositeConnection struct {
	From string // "instance.port" of the provided side
	To   string // "instance.port" of the required side
}

// FlatInstance is an atomic component instance produced by Flatten.
type FlatInstance struct {
	Instance string
	Type     ComponentType
}

// FlatConnection is a resolved provided-to-required connection.
type FlatConnection struct {
	FromInstance, FromPort string
	ToInstance, ToPort     string
}

// Flatten validates the composite and returns its atomic instances and
// connections, with instance names prefixed by the composite name
// ("Composite/child").
func (c Composite) Flatten() ([]FlatInstance, []FlatConnection, error) {
	if c.Name == "" {
		return nil, nil, fmt.Errorf("vfb: composite with empty name")
	}
	if len(c.Children) == 0 {
		return nil, nil, fmt.Errorf("vfb: composite %q has no children", c.Name)
	}
	var instances []FlatInstance
	for inst, typ := range c.Children {
		if err := typ.Validate(); err != nil {
			return nil, nil, fmt.Errorf("vfb: composite %q child %q: %v", c.Name, inst, err)
		}
		instances = append(instances, FlatInstance{Instance: c.Name + "/" + inst, Type: typ})
	}
	// Deterministic order for reproducible RTE generation.
	for i := 0; i < len(instances); i++ {
		for j := i + 1; j < len(instances); j++ {
			if instances[j].Instance < instances[i].Instance {
				instances[i], instances[j] = instances[j], instances[i]
			}
		}
	}
	var conns []FlatConnection
	for _, conn := range c.Connections {
		fi, fp, err := c.resolve(conn.From)
		if err != nil {
			return nil, nil, err
		}
		ti, tp, err := c.resolve(conn.To)
		if err != nil {
			return nil, nil, err
		}
		fromType := c.Children[fi]
		fromPort, ok := fromType.Port(fp)
		if !ok {
			return nil, nil, fmt.Errorf("vfb: composite %q: connection from unknown port %q", c.Name, conn.From)
		}
		toType := c.Children[ti]
		toPort, ok := toType.Port(tp)
		if !ok {
			return nil, nil, fmt.Errorf("vfb: composite %q: connection to unknown port %q", c.Name, conn.To)
		}
		if fromPort.Direction != core.Provided {
			return nil, nil, fmt.Errorf("vfb: composite %q: %q is not a provided port", c.Name, conn.From)
		}
		if toPort.Direction != core.Required {
			return nil, nil, fmt.Errorf("vfb: composite %q: %q is not a required port", c.Name, conn.To)
		}
		if fromPort.Iface.Kind != toPort.Iface.Kind {
			return nil, nil, fmt.Errorf("vfb: composite %q: interface kind mismatch on %q -> %q",
				c.Name, conn.From, conn.To)
		}
		conns = append(conns, FlatConnection{
			FromInstance: c.Name + "/" + fi, FromPort: fp,
			ToInstance: c.Name + "/" + ti, ToPort: tp,
		})
	}
	for compositePort, target := range c.Delegations {
		if compositePort == "" {
			return nil, nil, fmt.Errorf("vfb: composite %q: empty delegation name", c.Name)
		}
		if _, _, err := c.resolve(target); err != nil {
			return nil, nil, fmt.Errorf("vfb: composite %q: delegation %q: %v", c.Name, compositePort, err)
		}
	}
	return instances, conns, nil
}

// resolve splits "instance.port" and checks the instance exists.
func (c Composite) resolve(ref string) (instance, port string, err error) {
	for i := 0; i < len(ref); i++ {
		if ref[i] == '.' {
			instance, port = ref[:i], ref[i+1:]
			if _, ok := c.Children[instance]; !ok {
				return "", "", fmt.Errorf("vfb: composite %q: unknown child %q", c.Name, instance)
			}
			if port == "" {
				return "", "", fmt.Errorf("vfb: composite %q: empty port in %q", c.Name, ref)
			}
			return instance, port, nil
		}
	}
	return "", "", fmt.Errorf("vfb: composite %q: malformed reference %q (want instance.port)", c.Name, ref)
}
