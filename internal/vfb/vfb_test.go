package vfb

import (
	"strings"
	"testing"

	"dynautosar/internal/core"
)

func srIface(maxLen int) Interface {
	return Interface{Name: "SR", Kind: SenderReceiver, MaxLen: maxLen}
}

func csIface(ops ...string) Interface {
	return Interface{Name: "CS", Kind: ClientServer, Operations: ops}
}

func TestInterfaceValidate(t *testing.T) {
	if err := srIface(8).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := csIface("Get").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Interface{Name: "x", Kind: SenderReceiver, Operations: []string{"Op"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("SR with operations accepted")
	}
	bad = Interface{Name: "x", Kind: ClientServer}
	if err := bad.Validate(); err == nil {
		t.Fatal("CS without operations accepted")
	}
	bad = Interface{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if !csIface("Get", "Set").HasOperation("Set") || csIface("Get").HasOperation("Set") {
		t.Fatal("HasOperation mismatch")
	}
}

func TestPortDefValidate(t *testing.T) {
	good := PortDef{Name: "out", Direction: core.Provided, Iface: srIface(4)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []PortDef{
		{Name: "", Direction: core.Provided, Iface: srIface(4)},
		{Name: "x", Iface: srIface(4)},
		{Name: "x", Direction: core.Required, Iface: srIface(4), QueueLen: -1},
		{Name: "x", Direction: core.Required, Iface: csIface("Op"), QueueLen: 2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func validComponent() ComponentType {
	return ComponentType{
		Name: "Ctrl",
		Ports: []PortDef{
			{Name: "in", Direction: core.Required, Iface: srIface(8)},
			{Name: "out", Direction: core.Provided, Iface: srIface(8)},
			{Name: "svc", Direction: core.Provided, Iface: csIface("Get")},
		},
		Runnables: []RunnableSpec{
			{Name: "step", Period: 1000, Entry: func(Runtime) {}},
			{Name: "onIn", OnData: []string{"in"}, Entry: func(Runtime) {}},
			{Name: "serve", OnInvoke: []string{"Get"},
				Handler: func(Runtime, string, []byte) ([]byte, error) { return nil, nil }},
		},
	}
}

func TestComponentValidate(t *testing.T) {
	if err := validComponent().Validate(); err != nil {
		t.Fatal(err)
	}

	c := validComponent()
	c.Ports = append(c.Ports, c.Ports[0])
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate port") {
		t.Fatalf("duplicate port: %v", err)
	}

	c = validComponent()
	c.Runnables[0].Period = 0
	c.Runnables[0].OnData = nil
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no trigger") {
		t.Fatalf("no trigger: %v", err)
	}

	c = validComponent()
	c.Runnables[1].OnData = []string{"nope"}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "unknown port") {
		t.Fatalf("unknown trigger port: %v", err)
	}

	c = validComponent()
	c.Runnables[1].OnData = []string{"out"} // provided, not required
	if err := c.Validate(); err == nil {
		t.Fatal("data trigger on provided port accepted")
	}

	c = validComponent()
	c.Runnables[2].Handler = nil
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("missing handler: %v", err)
	}

	c = validComponent()
	c.Runnables[0].Entry = nil
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Fatalf("missing entry: %v", err)
	}

	c = validComponent()
	c.Runnables = append(c.Runnables, c.Runnables[0])
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate runnable") {
		t.Fatalf("duplicate runnable: %v", err)
	}
}

func TestPortLookup(t *testing.T) {
	c := validComponent()
	if p, ok := c.Port("in"); !ok || p.Direction != core.Required {
		t.Fatalf("Port(in) = %+v, %v", p, ok)
	}
	if _, ok := c.Port("missing"); ok {
		t.Fatal("Port(missing) resolved")
	}
}

func leaf(name string) ComponentType {
	return ComponentType{
		Name: name,
		Ports: []PortDef{
			{Name: "in", Direction: core.Required, Iface: srIface(8)},
			{Name: "out", Direction: core.Provided, Iface: srIface(8)},
		},
	}
}

func TestCompositeFlatten(t *testing.T) {
	comp := Composite{
		Name: "Pair",
		Children: map[string]ComponentType{
			"a": leaf("A"),
			"b": leaf("B"),
		},
		Connections: []CompositeConnection{{From: "a.out", To: "b.in"}},
		Delegations: map[string]string{"extIn": "a.in"},
	}
	instances, conns, err := comp.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 2 || instances[0].Instance != "Pair/a" || instances[1].Instance != "Pair/b" {
		t.Fatalf("instances = %+v", instances)
	}
	if len(conns) != 1 || conns[0].FromInstance != "Pair/a" || conns[0].ToPort != "in" {
		t.Fatalf("conns = %+v", conns)
	}
}

func TestCompositeFlattenErrors(t *testing.T) {
	base := func() Composite {
		return Composite{
			Name:     "C",
			Children: map[string]ComponentType{"a": leaf("A"), "b": leaf("B")},
		}
	}
	c := base()
	c.Connections = []CompositeConnection{{From: "a.out", To: "x.in"}}
	if _, _, err := c.Flatten(); err == nil {
		t.Fatal("unknown child accepted")
	}
	c = base()
	c.Connections = []CompositeConnection{{From: "a.in", To: "b.in"}}
	if _, _, err := c.Flatten(); err == nil {
		t.Fatal("required-to-required accepted")
	}
	c = base()
	c.Connections = []CompositeConnection{{From: "a.out", To: "b.out"}}
	if _, _, err := c.Flatten(); err == nil {
		t.Fatal("provided target accepted")
	}
	c = base()
	c.Connections = []CompositeConnection{{From: "malformed", To: "b.in"}}
	if _, _, err := c.Flatten(); err == nil {
		t.Fatal("malformed ref accepted")
	}
	c = base()
	c.Delegations = map[string]string{"p": "nope.in"}
	if _, _, err := c.Flatten(); err == nil {
		t.Fatal("bad delegation accepted")
	}
	empty := Composite{Name: "E"}
	if _, _, err := empty.Flatten(); err == nil {
		t.Fatal("empty composite accepted")
	}
}

func TestInterfaceKindString(t *testing.T) {
	if SenderReceiver.String() != "sender-receiver" || ClientServer.String() != "client-server" {
		t.Fatal("kind strings")
	}
}
