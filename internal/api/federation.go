package api

import "dynautosar/internal/core"

// ExternalRouter is the narrow surface the federation layer
// (internal/fes) needs from the trusted server: resolving an external
// message id to its in-vehicle destination and pushing a value there.
// Keeping it here decouples the broker from the server's wire plumbing,
// so a broker can sit on any implementation — the in-process server
// today, a remote shard tomorrow.
type ExternalRouter interface {
	// ResolveExternal finds the in-vehicle destination of an external
	// message id by walking the vehicle's installed apps.
	ResolveExternal(vehicle core.VehicleID, messageID string) (core.ECUID, core.PluginPortID, bool)
	// PushExternal delivers a value to a resolved destination through
	// the vehicle's ECM.
	PushExternal(vehicle core.VehicleID, ecu core.ECUID, port core.PluginPortID, value int64) error
}
