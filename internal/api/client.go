package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dynautosar/internal/core"
)

// Client is the typed Go client of the deployment service. It wraps any
// DeploymentService — the HTTP transport against a /v1 server, or a
// local implementation for in-process callers — and adds conveniences
// such as operation polling. The embedded interface makes Client
// itself satisfy DeploymentService, so code written against the
// interface runs unchanged on either side of the wire.
type Client struct {
	DeploymentService
}

// NewClient builds a client speaking HTTP/JSON against the /v1 surface
// at baseURL. A nil httpc uses http.DefaultClient.
func NewClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{DeploymentService: &httpTransport{base: strings.TrimRight(baseURL, "/"), hc: httpc}}
}

// NewLocalClient wraps an in-process service implementation.
func NewLocalClient(svc DeploymentService) *Client { return &Client{DeploymentService: svc} }

var _ DeploymentService = (*Client)(nil)

// WaitOperation polls an operation until it reaches a terminal state or
// the context expires. interval <= 0 uses a 50ms default.
func (c *Client) WaitOperation(ctx context.Context, id string, interval time.Duration) (Operation, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		op, err := c.GetOperation(ctx, id)
		if err != nil {
			return op, err
		}
		if op.Done {
			return op, nil
		}
		select {
		case <-ctx.Done():
			return op, Errorf(CodeUnavailable, "api: waiting for %s: %v", id, ctx.Err())
		case <-t.C:
		}
	}
}

// WaitRollout polls a rollout until it reaches a terminal state or the
// context expires. interval <= 0 uses a 50ms default.
func (c *Client) WaitRollout(ctx context.Context, id string, interval time.Duration) (RolloutStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.GetRollout(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Done {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, Errorf(CodeUnavailable, "api: waiting for rollout %s: %v", id, ctx.Err())
		case <-t.C:
		}
	}
}

// httpTransport implements DeploymentService over the /v1 wire
// protocol.
type httpTransport struct {
	base string
	hc   *http.Client
}

func (t *httpTransport) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return Errorf(CodeInvalidArgument, "api: encoding request: %v", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, body)
	if err != nil {
		return Errorf(CodeInvalidArgument, "api: building request: %v", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return Errorf(CodeUnavailable, "api: %s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return Errorf(CodeInternal, "api: decoding %s %s response: %v", method, path, err)
		}
	}
	return nil
}

// decodeError recovers the structured error from a failed response,
// falling back to the status line for foreign bodies.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env errorBody
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		return env.Error
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return &Error{Code: CodeFromHTTPStatus(resp.StatusCode), Message: fmt.Sprintf("api: %s", msg)}
}

func pageQuery(page Page) string {
	q := url.Values{}
	if page.Size > 0 {
		q.Set("pageSize", strconv.Itoa(page.Size))
	}
	if page.Token != "" {
		q.Set("pageToken", page.Token)
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

func (t *httpTransport) CreateUser(ctx context.Context, req CreateUserRequest) (User, error) {
	var u User
	err := t.do(ctx, http.MethodPost, "/v1/users", req, &u)
	return u, err
}

func (t *httpTransport) GetUser(ctx context.Context, id core.UserID) (User, error) {
	var u User
	err := t.do(ctx, http.MethodGet, "/v1/users/"+url.PathEscape(string(id)), nil, &u)
	return u, err
}

func (t *httpTransport) BindVehicle(ctx context.Context, req BindVehicleRequest) (VehicleRecord, error) {
	var vr VehicleRecord
	err := t.do(ctx, http.MethodPost, "/v1/vehicles", req, &vr)
	return vr, err
}

func (t *httpTransport) GetVehicle(ctx context.Context, id core.VehicleID) (VehicleDetail, error) {
	var vd VehicleDetail
	err := t.do(ctx, http.MethodGet, "/v1/vehicles/"+url.PathEscape(string(id)), nil, &vd)
	return vd, err
}

func (t *httpTransport) ListVehicles(ctx context.Context, page Page) (VehicleList, error) {
	var list VehicleList
	err := t.do(ctx, http.MethodGet, "/v1/vehicles"+pageQuery(page), nil, &list)
	return list, err
}

func (t *httpTransport) UploadApp(ctx context.Context, app App) (AppRef, error) {
	var ref AppRef
	err := t.do(ctx, http.MethodPost, "/v1/apps", app, &ref)
	return ref, err
}

func (t *httpTransport) GetApp(ctx context.Context, name core.AppName) (App, error) {
	var app App
	err := t.do(ctx, http.MethodGet, "/v1/apps/"+url.PathEscape(string(name)), nil, &app)
	return app, err
}

func (t *httpTransport) ListApps(ctx context.Context, page Page) (AppList, error) {
	var list AppList
	err := t.do(ctx, http.MethodGet, "/v1/apps"+pageQuery(page), nil, &list)
	return list, err
}

func (t *httpTransport) Deploy(ctx context.Context, req DeployRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/deploy", req, &op)
	return op, err
}

func (t *httpTransport) BatchDeploy(ctx context.Context, req BatchDeployRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/deploy:batch", req, &op)
	return op, err
}

func (t *httpTransport) BatchUninstall(ctx context.Context, req BatchUninstallRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/uninstall:batch", req, &op)
	return op, err
}

func (t *httpTransport) Upgrade(ctx context.Context, req UpgradeRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/upgrade", req, &op)
	return op, err
}

func (t *httpTransport) BatchUpgrade(ctx context.Context, req BatchUpgradeRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/upgrade:batch", req, &op)
	return op, err
}

func (t *httpTransport) StartRollout(ctx context.Context, req RolloutRequest) (RolloutStatus, error) {
	var st RolloutStatus
	err := t.do(ctx, http.MethodPost, "/v1/rollout", req, &st)
	return st, err
}

func (t *httpTransport) GetRollout(ctx context.Context, id string) (RolloutStatus, error) {
	var st RolloutStatus
	err := t.do(ctx, http.MethodGet, "/v1/rollouts/"+url.PathEscape(id), nil, &st)
	return st, err
}

func (t *httpTransport) AbortRollout(ctx context.Context, id string) (RolloutStatus, error) {
	var st RolloutStatus
	err := t.do(ctx, http.MethodPost, "/v1/rollouts/"+url.PathEscape(id)+":abort", nil, &st)
	return st, err
}

func (t *httpTransport) ListRollouts(ctx context.Context, page Page) (RolloutList, error) {
	var list RolloutList
	err := t.do(ctx, http.MethodGet, "/v1/rollouts"+pageQuery(page), nil, &list)
	return list, err
}

func (t *httpTransport) Uninstall(ctx context.Context, req UninstallRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/uninstall", req, &op)
	return op, err
}

func (t *httpTransport) Verify(ctx context.Context, req VerifyRequest) (VerifyReport, error) {
	var report VerifyReport
	err := t.do(ctx, http.MethodPost, "/v1/verify", req, &report)
	return report, err
}

func (t *httpTransport) Restore(ctx context.Context, req RestoreRequest) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodPost, "/v1/restore", req, &op)
	return op, err
}

func (t *httpTransport) Status(ctx context.Context, vehicle core.VehicleID, app core.AppName) (OpStatus, error) {
	var st OpStatus
	q := url.Values{"vehicle": {string(vehicle)}, "app": {string(app)}}
	err := t.do(ctx, http.MethodGet, "/v1/status?"+q.Encode(), nil, &st)
	return st, err
}

func (t *httpTransport) Health(ctx context.Context) (Health, error) {
	var h Health
	err := t.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

func (t *httpTransport) Statz(ctx context.Context) (Statz, error) {
	var st Statz
	err := t.do(ctx, http.MethodGet, "/v1/statz", nil, &st)
	return st, err
}

func (t *httpTransport) GetOperation(ctx context.Context, id string) (Operation, error) {
	var op Operation
	err := t.do(ctx, http.MethodGet, "/v1/operations/"+url.PathEscape(id), nil, &op)
	return op, err
}

func (t *httpTransport) ListOperations(ctx context.Context, page Page) (OperationList, error) {
	var list OperationList
	err := t.do(ctx, http.MethodGet, "/v1/operations"+pageQuery(page), nil, &list)
	return list, err
}
