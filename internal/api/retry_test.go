package api

import (
	"context"
	"testing"
	"time"

	"dynautosar/internal/core"
)

// flakySvc fails Deploy with a scripted error per attempt, recording
// the idempotency key each attempt carried. Only the methods the tests
// exercise are implemented; the embedded nil interface panics on any
// other call, which is exactly the regression we want to catch.
type flakySvc struct {
	DeploymentService
	errs []error // errs[i] returned on attempt i; past the end -> success
	keys []string
	gets int
}

func (s *flakySvc) Deploy(_ context.Context, req DeployRequest) (Operation, error) {
	attempt := len(s.keys)
	s.keys = append(s.keys, req.IdempotencyKey)
	if attempt < len(s.errs) {
		return Operation{}, s.errs[attempt]
	}
	return Operation{ID: "op-00000001", Vehicle: req.Vehicle, App: req.App}, nil
}

func (s *flakySvc) GetUser(context.Context, core.UserID) (User, error) {
	s.gets++
	return User{}, Errorf(CodeUnavailable, "api: shard down")
}

func noSleep(context.Context, time.Duration) error { return nil }

// TestRetryClientFailoverErrors pins the federated retry contract: a
// create that hits a deposed leader and then a dead one is retried with
// the SAME idempotency key until a live leader answers.
func TestRetryClientFailoverErrors(t *testing.T) {
	svc := &flakySvc{errs: []error{
		Errorf(CodeNotLeader, "api: shard s1 is a follower"),
		Errorf(CodeUnavailable, "api: connection refused"),
	}}
	c := NewRetryClient(svc, RetryOptions{Sleep: noSleep})
	op, err := c.Deploy(context.Background(), DeployRequest{User: "alice", Vehicle: "VIN-1", App: "A"})
	if err != nil {
		t.Fatalf("deploy through two transient errors: %v", err)
	}
	if op.ID != "op-00000001" {
		t.Fatalf("unexpected operation %+v", op)
	}
	if len(svc.keys) != 3 {
		t.Fatalf("saw %d attempts, want 3", len(svc.keys))
	}
	if svc.keys[0] == "" {
		t.Fatal("no idempotency key stamped before the first attempt")
	}
	if svc.keys[0] != svc.keys[1] || svc.keys[1] != svc.keys[2] {
		t.Fatalf("idempotency key changed across retries: %q — a failover would duplicate the operation", svc.keys)
	}
}

// TestRetryClientKeysPerCall checks a caller-provided key is honored
// and that distinct logical calls never share a generated key.
func TestRetryClientKeysPerCall(t *testing.T) {
	svc := &flakySvc{}
	c := NewRetryClient(svc, RetryOptions{Sleep: noSleep})
	ctx := context.Background()
	if _, err := c.Deploy(ctx, DeployRequest{Vehicle: "VIN-1", App: "A", IdempotencyKey: "caller-key"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(ctx, DeployRequest{Vehicle: "VIN-1", App: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(ctx, DeployRequest{Vehicle: "VIN-2", App: "A"}); err != nil {
		t.Fatal(err)
	}
	if svc.keys[0] != "caller-key" {
		t.Fatalf("caller key overwritten: %q", svc.keys[0])
	}
	if svc.keys[1] == svc.keys[2] {
		t.Fatalf("two logical creates shared generated key %q", svc.keys[1])
	}
}

// TestRetryClientNonRetryable checks a semantic rejection is surfaced
// immediately — retrying an invalid request would only hide the bug.
func TestRetryClientNonRetryable(t *testing.T) {
	svc := &flakySvc{errs: []error{Errorf(CodeInvalidArgument, "api: no such app")}}
	c := NewRetryClient(svc, RetryOptions{Sleep: noSleep})
	_, err := c.Deploy(context.Background(), DeployRequest{Vehicle: "VIN-1", App: "nope"})
	if CodeOf(err) != CodeInvalidArgument {
		t.Fatalf("got %v, want the invalid_argument surfaced unretried", err)
	}
	if len(svc.keys) != 1 {
		t.Fatalf("non-retryable error was retried %d times", len(svc.keys)-1)
	}
}

// TestRetryClientAttemptBudget checks the attempt cap: a persistently
// dead shard exhausts the budget and the last error comes back.
func TestRetryClientAttemptBudget(t *testing.T) {
	svc := &flakySvc{}
	c := NewRetryClient(svc, RetryOptions{Attempts: 3, Sleep: noSleep})
	_, err := c.GetUser(context.Background(), "alice")
	if CodeOf(err) != CodeUnavailable {
		t.Fatalf("got %v, want unavailable after budget exhaustion", err)
	}
	if svc.gets != 3 {
		t.Fatalf("made %d attempts, want exactly the budget of 3", svc.gets)
	}
}
