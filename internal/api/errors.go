package api

import (
	"errors"
	"fmt"
	"net/http"
)

// The structured error model of the v1 deployment-service API. Every
// error that crosses the API boundary carries a stable machine-readable
// code; the HTTP layer maps codes to status lines, and clients recover
// the code from the wire without parsing message text.

// ErrorCode is a stable machine-readable error category.
type ErrorCode string

const (
	// CodeInvalidArgument: the request is malformed or fails validation.
	CodeInvalidArgument ErrorCode = "invalid_argument"
	// CodeNotFound: the referenced user, vehicle, app or operation
	// does not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeAlreadyExists: the entity being created already exists
	// (duplicate user, vehicle, app, or installation).
	CodeAlreadyExists ErrorCode = "already_exists"
	// CodePermissionDenied: the user does not own the vehicle.
	CodePermissionDenied ErrorCode = "permission_denied"
	// CodeFailedPrecondition: the system state rejects the operation
	// (incompatible app, dependent apps, dependency cycles).
	CodeFailedPrecondition ErrorCode = "failed_precondition"
	// CodeResourceExhausted: the client exceeded its rate limit or a
	// request-size limit.
	CodeResourceExhausted ErrorCode = "resource_exhausted"
	// CodeUnavailable: the vehicle is not connected or the transport
	// failed; retrying later may succeed.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInterrupted: the operation was in flight when the server went
	// down and its outstanding acknowledgements are gone for good; the
	// request must be re-issued. Surfaced by crash recovery on
	// GET /v1/operations/{id}.
	CodeInterrupted ErrorCode = "interrupted"
	// CodeRolledBack: a live upgrade was automatically rolled back — the
	// new version failed its vehicle-side health probe (or the swap
	// could not complete) and the old version is running again. The
	// stable detail clients branch on when polling an upgrade operation.
	CodeRolledBack ErrorCode = "rollback"
	// CodeUnsafePlan: the static plan verifier rejected the operation —
	// some intermediate configuration along the reconfiguration path
	// violates a declared invariant (link compatibility, orphaned
	// ports, port-id collisions, the quiesce buffering bound, or
	// safe-state reachability). The message carries the minimal
	// counterexample path; nothing was pushed to the vehicle.
	CodeUnsafePlan ErrorCode = "unsafe_plan"
	// CodeRolloutUnhealthy: a progressive rollout's per-wave health gate
	// tripped — too many failed or vehicle-rolled-back upgrades in the
	// wave, or the ack-latency bound was exceeded — and the fleet was
	// automatically downgraded in reverse wave order. Carried as the
	// rollout's terminal error so clients polling GET /v1/rollouts/{id}
	// can branch on it.
	CodeRolloutUnhealthy ErrorCode = "rollout_unhealthy"
	// CodeRolloutAborted: the operator aborted a progressive rollout
	// (POST /v1/rollouts/{id}:abort) and the fleet was downgraded. The
	// rollout's terminal error when no health gate tripped first.
	CodeRolloutAborted ErrorCode = "rollout_aborted"
	// CodeNotLeader: the addressed server is not the current leader of
	// the vehicle's shard — it is a replication follower (or a deposed
	// leader). The request itself may be fine; re-resolving the shard's
	// leader and retrying there succeeds. Clients treat it like
	// unavailable but with a routing hint: rotate replicas before
	// backing off.
	CodeNotLeader ErrorCode = "not_leader"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// Error is the typed error of the deployment-service API.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements the error interface with the bare message, so
// existing substring checks on error text keep working.
func (e *Error) Error() string { return e.Message }

// Errorf builds an *Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// AsError coerces any error into an *Error; untyped errors become
// CodeInternal. A nil error stays nil.
func AsError(err error) *Error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Code: CodeInternal, Message: err.Error()}
}

// CodeOf extracts the error code, CodeInternal for untyped errors and
// "" for nil.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return ""
	}
	return AsError(err).Code
}

// HTTPStatus maps an error code to its HTTP status line.
func HTTPStatus(code ErrorCode) int {
	switch code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeAlreadyExists, CodeFailedPrecondition, CodeRolledBack, CodeUnsafePlan,
		CodeRolloutUnhealthy, CodeRolloutAborted:
		return http.StatusConflict
	case CodePermissionDenied:
		return http.StatusForbidden
	case CodeResourceExhausted:
		return http.StatusTooManyRequests
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeNotLeader:
		// Misdirected Request: right API, wrong server. Unique status so
		// bare-body responses still round-trip the code.
		return http.StatusMisdirectedRequest
	case CodeInterrupted:
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// CodeFromHTTPStatus recovers a best-effort code from a bare HTTP
// status, for responses that lack a structured body.
func CodeFromHTTPStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeAlreadyExists
	case http.StatusForbidden:
		return CodePermissionDenied
	case http.StatusTooManyRequests:
		return CodeResourceExhausted
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusMisdirectedRequest:
		return CodeNotLeader
	default:
		return CodeInternal
	}
}

// errorBody is the wire envelope of every v1 error response.
type errorBody struct {
	Error *Error `json:"error"`
}

// ErrorBody wraps an error in the v1 wire envelope, for handlers that
// need to emit the structured body directly.
func ErrorBody(err error) any { return errorBody{Error: AsError(err)} }
