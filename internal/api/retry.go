package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"

	"dynautosar/internal/core"
)

// The retrying transport: a DeploymentService decorator that absorbs
// the transient error shapes of a federated control plane — a shard
// leader dying mid-request (`unavailable`) or a request landing on a
// follower or deposed leader (`not_leader`) — with capped jittered
// backoff. Reads are retried as-is; operation-creating calls are made
// safe to retry by stamping a per-operation idempotency key before the
// first attempt, so a request whose response was lost to a failover is
// answered on retry with the originally created operation instead of a
// duplicate.

// RetryOptions tunes NewRetryClient.
type RetryOptions struct {
	// Attempts caps total tries per call (first try included); 0 means
	// the default (6).
	Attempts int
	// Backoff paces the waits between tries; the zero value uses the
	// core.Backoff defaults (100ms base, 30s cap, 0.5 jitter).
	Backoff core.Backoff
	// Sleep, when non-nil, replaces the real wait (tests).
	Sleep func(context.Context, time.Duration) error
	// Logf receives one line per retried attempt; nil disables.
	Logf func(format string, args ...any)
}

const defaultRetryAttempts = 6

// retryable reports whether err is worth retrying against another (or
// the same, later) replica.
func retryable(err error) bool {
	switch CodeOf(err) {
	case CodeUnavailable, CodeNotLeader:
		return true
	}
	return false
}

// retryClient wraps an inner DeploymentService with retry semantics.
type retryClient struct {
	inner DeploymentService
	o     RetryOptions
	// prefix + seq generate distinct idempotency keys; the random
	// prefix keeps keys unique across client restarts.
	prefix string
	seq    atomic.Uint64
}

// NewRetryClient wraps svc — typically an httpTransport from NewClient,
// or a federation router — in the retrying transport and returns it as
// a Client. Callers may pre-fill IdempotencyKey on op-creating
// requests; otherwise one is generated per call (not per attempt), so
// every retry of one logical create carries the same key.
func NewRetryClient(svc DeploymentService, opts RetryOptions) *Client {
	if opts.Attempts <= 0 {
		opts.Attempts = defaultRetryAttempts
	}
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return Errorf(CodeUnavailable, "api: retry wait: %v", ctx.Err())
			case <-t.C:
				return nil
			}
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// fixed prefix rather than failing client construction.
		copy(raw[:], "idemkey0")
	}
	if u, ok := svc.(*Client); ok {
		svc = u.DeploymentService
	}
	return &Client{DeploymentService: &retryClient{
		inner: svc, o: opts, prefix: hex.EncodeToString(raw[:]),
	}}
}

// nextKey mints a fresh idempotency key.
func (r *retryClient) nextKey() string {
	return "idem-" + r.prefix + "-" + itoa(r.seq.Add(1))
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// retry runs fn up to the attempt budget, backing off between tries.
func retry[T any](ctx context.Context, r *retryClient, what string, fn func() (T, error)) (T, error) {
	b := r.o.Backoff
	var out T
	var err error
	for attempt := 1; ; attempt++ {
		out, err = fn()
		if err == nil || !retryable(err) || attempt >= r.o.Attempts {
			return out, err
		}
		d := b.Next()
		r.o.Logf("api: %s attempt %d failed (%s), retrying in %s", what, attempt, CodeOf(err), d)
		if serr := r.o.Sleep(ctx, d); serr != nil {
			return out, err
		}
	}
}

var _ DeploymentService = (*retryClient)(nil)

func (r *retryClient) CreateUser(ctx context.Context, req CreateUserRequest) (User, error) {
	return retry(ctx, r, "CreateUser", func() (User, error) { return r.inner.CreateUser(ctx, req) })
}

func (r *retryClient) GetUser(ctx context.Context, id core.UserID) (User, error) {
	return retry(ctx, r, "GetUser", func() (User, error) { return r.inner.GetUser(ctx, id) })
}

func (r *retryClient) BindVehicle(ctx context.Context, req BindVehicleRequest) (VehicleRecord, error) {
	return retry(ctx, r, "BindVehicle", func() (VehicleRecord, error) { return r.inner.BindVehicle(ctx, req) })
}

func (r *retryClient) GetVehicle(ctx context.Context, id core.VehicleID) (VehicleDetail, error) {
	return retry(ctx, r, "GetVehicle", func() (VehicleDetail, error) { return r.inner.GetVehicle(ctx, id) })
}

func (r *retryClient) ListVehicles(ctx context.Context, page Page) (VehicleList, error) {
	return retry(ctx, r, "ListVehicles", func() (VehicleList, error) { return r.inner.ListVehicles(ctx, page) })
}

func (r *retryClient) UploadApp(ctx context.Context, app App) (AppRef, error) {
	return retry(ctx, r, "UploadApp", func() (AppRef, error) { return r.inner.UploadApp(ctx, app) })
}

func (r *retryClient) GetApp(ctx context.Context, name core.AppName) (App, error) {
	return retry(ctx, r, "GetApp", func() (App, error) { return r.inner.GetApp(ctx, name) })
}

func (r *retryClient) ListApps(ctx context.Context, page Page) (AppList, error) {
	return retry(ctx, r, "ListApps", func() (AppList, error) { return r.inner.ListApps(ctx, page) })
}

func (r *retryClient) Deploy(ctx context.Context, req DeployRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "Deploy", func() (Operation, error) { return r.inner.Deploy(ctx, req) })
}

func (r *retryClient) BatchDeploy(ctx context.Context, req BatchDeployRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "BatchDeploy", func() (Operation, error) { return r.inner.BatchDeploy(ctx, req) })
}

func (r *retryClient) Uninstall(ctx context.Context, req UninstallRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "Uninstall", func() (Operation, error) { return r.inner.Uninstall(ctx, req) })
}

func (r *retryClient) BatchUninstall(ctx context.Context, req BatchUninstallRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "BatchUninstall", func() (Operation, error) { return r.inner.BatchUninstall(ctx, req) })
}

func (r *retryClient) Upgrade(ctx context.Context, req UpgradeRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "Upgrade", func() (Operation, error) { return r.inner.Upgrade(ctx, req) })
}

func (r *retryClient) BatchUpgrade(ctx context.Context, req BatchUpgradeRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "BatchUpgrade", func() (Operation, error) { return r.inner.BatchUpgrade(ctx, req) })
}

func (r *retryClient) Restore(ctx context.Context, req RestoreRequest) (Operation, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.nextKey()
	}
	return retry(ctx, r, "Restore", func() (Operation, error) { return r.inner.Restore(ctx, req) })
}

func (r *retryClient) StartRollout(ctx context.Context, req RolloutRequest) (RolloutStatus, error) {
	// Rollouts have no idempotency key yet; retry only the error shapes
	// that cannot have created one (the request never reached a leader).
	return retry(ctx, r, "StartRollout", func() (RolloutStatus, error) { return r.inner.StartRollout(ctx, req) })
}

func (r *retryClient) GetRollout(ctx context.Context, id string) (RolloutStatus, error) {
	return retry(ctx, r, "GetRollout", func() (RolloutStatus, error) { return r.inner.GetRollout(ctx, id) })
}

func (r *retryClient) AbortRollout(ctx context.Context, id string) (RolloutStatus, error) {
	return retry(ctx, r, "AbortRollout", func() (RolloutStatus, error) { return r.inner.AbortRollout(ctx, id) })
}

func (r *retryClient) ListRollouts(ctx context.Context, page Page) (RolloutList, error) {
	return retry(ctx, r, "ListRollouts", func() (RolloutList, error) { return r.inner.ListRollouts(ctx, page) })
}

func (r *retryClient) Verify(ctx context.Context, req VerifyRequest) (VerifyReport, error) {
	return retry(ctx, r, "Verify", func() (VerifyReport, error) { return r.inner.Verify(ctx, req) })
}

func (r *retryClient) Status(ctx context.Context, vehicle core.VehicleID, app core.AppName) (OpStatus, error) {
	return retry(ctx, r, "Status", func() (OpStatus, error) { return r.inner.Status(ctx, vehicle, app) })
}

func (r *retryClient) Health(ctx context.Context) (Health, error) {
	return retry(ctx, r, "Health", func() (Health, error) { return r.inner.Health(ctx) })
}

func (r *retryClient) Statz(ctx context.Context) (Statz, error) {
	return retry(ctx, r, "Statz", func() (Statz, error) { return r.inner.Statz(ctx) })
}

func (r *retryClient) GetOperation(ctx context.Context, id string) (Operation, error) {
	return retry(ctx, r, "GetOperation", func() (Operation, error) { return r.inner.GetOperation(ctx, id) })
}

func (r *retryClient) ListOperations(ctx context.Context, page Page) (OperationList, error) {
	return retry(ctx, r, "ListOperations", func() (OperationList, error) { return r.inner.ListOperations(ctx, page) })
}
