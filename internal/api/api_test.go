package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestErrorCodesMapToHTTPAndBack(t *testing.T) {
	cases := []struct {
		code   ErrorCode
		status int
	}{
		{CodeInvalidArgument, http.StatusBadRequest},
		{CodeNotFound, http.StatusNotFound},
		{CodeAlreadyExists, http.StatusConflict},
		{CodePermissionDenied, http.StatusForbidden},
		{CodeFailedPrecondition, http.StatusConflict},
		{CodeResourceExhausted, http.StatusTooManyRequests},
		{CodeUnavailable, http.StatusServiceUnavailable},
		{CodeInternal, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.code); got != c.status {
			t.Errorf("HTTPStatus(%s) = %d, want %d", c.code, got, c.status)
		}
	}
	// The reverse mapping recovers a usable code for every mapped status.
	for _, c := range cases {
		if c.code == CodeFailedPrecondition {
			continue // 409 maps back to already_exists
		}
		if got := CodeFromHTTPStatus(c.status); got != c.code {
			t.Errorf("CodeFromHTTPStatus(%d) = %s, want %s", c.status, got, c.code)
		}
	}
}

func TestErrorHelpers(t *testing.T) {
	err := Errorf(CodeNotFound, "no vehicle %s", "VIN1")
	if err.Error() != "no vehicle VIN1" {
		t.Fatalf("message = %q", err.Error())
	}
	if CodeOf(err) != CodeNotFound {
		t.Fatalf("code = %s", CodeOf(err))
	}
	if CodeOf(nil) != "" {
		t.Fatal("nil error has a code")
	}
	// Wrapped API errors keep their code; foreign errors become internal.
	wrapped := fmt.Errorf("outer: %w", err)
	if CodeOf(wrapped) != CodeNotFound {
		t.Fatalf("wrapped code = %s", CodeOf(wrapped))
	}
	if CodeOf(fmt.Errorf("plain")) != CodeInternal {
		t.Fatalf("plain error code = %s", CodeOf(fmt.Errorf("plain")))
	}
	// The wire envelope round-trips the code.
	raw, _ := json.Marshal(ErrorBody(err))
	var env struct {
		Error *Error `json:"error"`
	}
	if json.Unmarshal(raw, &env) != nil || env.Error.Code != CodeNotFound {
		t.Fatalf("envelope round trip = %s", raw)
	}
}

func TestPaginate(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	key := func(s string) string { return s }

	page, next := Paginate(items, Page{Size: 2}, key)
	if len(page) != 2 || page[0] != "a" || next != "b" {
		t.Fatalf("first page = %v next %q", page, next)
	}
	page, next = Paginate(items, Page{Size: 2, Token: next}, key)
	if len(page) != 2 || page[0] != "c" || next != "d" {
		t.Fatalf("second page = %v next %q", page, next)
	}
	page, next = Paginate(items, Page{Size: 2, Token: next}, key)
	if len(page) != 1 || page[0] != "e" || next != "" {
		t.Fatalf("last page = %v next %q", page, next)
	}
	// Default size swallows the whole list; a stale token past the end
	// yields an empty page.
	page, next = Paginate(items, Page{}, key)
	if len(page) != 5 || next != "" {
		t.Fatalf("default page = %v next %q", page, next)
	}
	page, _ = Paginate(items, Page{Size: 2, Token: "z"}, key)
	if len(page) != 0 {
		t.Fatalf("past-the-end page = %v", page)
	}
}

// panicSvc panics on every call, to exercise the recovery middleware.
// The embedded nil interface makes any other method panic as well.
type panicSvc struct{ DeploymentService }

func (panicSvc) ListApps(context.Context, Page) (AppList, error) { panic("boom") }

func TestHandlerRecoversPanics(t *testing.T) {
	h := NewHandler(panicSvc{}, &HandlerOptions{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d", resp.StatusCode)
	}
	var env struct {
		Error *Error `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&env) != nil || env.Error == nil || env.Error.Code != CodeInternal {
		t.Fatalf("panic body = %+v", env)
	}
}

func TestHandlerRejectsOversizedBodies(t *testing.T) {
	h := NewHandler(panicSvc{}, &HandlerOptions{MaxBodyBytes: 64})
	srv := httptest.NewServer(h)
	defer srv.Close()

	big := strings.NewReader(`{"id": "` + strings.Repeat("x", 1024) + `"}`)
	resp, err := http.Post(srv.URL+"/v1/users", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized body = %d", resp.StatusCode)
	}
}

func TestRateLimiter(t *testing.T) {
	l := newRateLimiter(10, 2)
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst refused")
	}
	if l.allow("a") {
		t.Fatal("over-burst allowed")
	}
	// Another client has its own bucket.
	if !l.allow("b") {
		t.Fatal("fresh client refused")
	}
	// Tokens refill with time.
	time.Sleep(150 * time.Millisecond)
	if !l.allow("a") {
		t.Fatal("refill failed")
	}
}

func TestWaitOperationHonoursContext(t *testing.T) {
	c := NewLocalClient(stuckSvc{})
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	_, err := c.WaitOperation(ctx, "op-1", 10*time.Millisecond)
	if CodeOf(err) != CodeUnavailable {
		t.Fatalf("WaitOperation on stuck op = %v", err)
	}
}

// stuckSvc reports one never-finishing operation.
type stuckSvc struct{ DeploymentService }

func (stuckSvc) GetOperation(_ context.Context, id string) (Operation, error) {
	return Operation{ID: id, State: StateRunning}, nil
}
