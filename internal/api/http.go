package api

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynautosar/internal/core"
)

// The /v1 HTTP surface, generated over DeploymentService:
//
//	POST /v1/users                    create a user account
//	GET  /v1/users/{id}               fetch a user
//	POST /v1/vehicles                 bind a vehicle conf to a user
//	GET  /v1/vehicles                 list vehicles (paginated)
//	GET  /v1/vehicles/{id}            vehicle record + installed apps
//	POST /v1/apps                     upload an application
//	GET  /v1/apps                     list app names (paginated)
//	GET  /v1/apps/{name}              fetch an application
//	POST /v1/deploy                   start an async deployment -> Operation
//	POST /v1/deploy:batch             start a fleet-wide deployment -> parent Operation
//	POST /v1/uninstall                start an async uninstallation -> Operation
//	POST /v1/uninstall:batch          start a fleet-wide uninstallation -> parent Operation
//	POST /v1/upgrade                  start a live in-place upgrade -> Operation
//	POST /v1/upgrade:batch            start a fleet-wide live upgrade -> parent Operation
//	POST /v1/rollout                  start a progressive health-gated rollout -> RolloutStatus
//	GET  /v1/rollouts                 list rollouts (paginated)
//	GET  /v1/rollouts/{id}            rollout status with per-wave detail
//	POST /v1/rollouts/{id}:abort      abort a running rollout (fleet rollback)
//	POST /v1/restore                  start an async ECU restore -> Operation
//	POST /v1/verify                   dry-run the static plan verifier -> VerifyReport
//	GET  /v1/status?vehicle=V&app=A   per-app ack progress
//	GET  /v1/healthz                  readiness + recovery counters
//	GET  /v1/statz                    monitoring counters since process start
//	GET  /v1/operations               list operations (paginated)
//	GET  /v1/operations/{id}          poll one operation
//
// List endpoints take ?pageSize= and ?pageToken=. Every error response
// is the structured envelope {"error": {"code": ..., "message": ...}}.

// HandlerOptions tunes the middleware around the v1 surface.
type HandlerOptions struct {
	// Logf receives one line per request and every handler diagnostic;
	// nil disables logging.
	Logf func(format string, args ...any)
	// MaxBodyBytes caps request bodies; 0 means the 8 MiB default,
	// negative disables the cap.
	MaxBodyBytes int64
	// RatePerSecond is the steady per-client request rate; 0 means the
	// default (200/s), negative disables rate limiting.
	RatePerSecond float64
	// Burst is the per-client burst allowance; 0 means 2x the rate.
	Burst float64
	// ClientKey identifies a client for rate limiting; the default is
	// the remote IP.
	ClientKey func(*http.Request) string
}

const defaultMaxBody = 8 << 20

func (o *HandlerOptions) withDefaults() HandlerOptions {
	out := HandlerOptions{}
	if o != nil {
		out = *o
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	if out.MaxBodyBytes == 0 {
		out.MaxBodyBytes = defaultMaxBody
	}
	if out.RatePerSecond == 0 {
		out.RatePerSecond = 200
	}
	if out.Burst == 0 {
		out.Burst = 2 * out.RatePerSecond
	}
	if out.ClientKey == nil {
		out.ClientKey = func(r *http.Request) string {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				return r.RemoteAddr
			}
			return host
		}
	}
	return out
}

// NewHandler builds the /v1 HTTP handler over a DeploymentService with
// the middleware chain: request logging, panic recovery, per-client
// rate limiting and request-size limits.
func NewHandler(svc DeploymentService, opts *HandlerOptions) http.Handler {
	h := &handler{svc: svc, o: opts.withDefaults()}
	if h.o.RatePerSecond > 0 {
		h.limiter = newRateLimiter(h.o.RatePerSecond, h.o.Burst)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/users", h.createUser)
	mux.HandleFunc("GET /v1/users/{id}", h.getUser)
	mux.HandleFunc("POST /v1/vehicles", h.bindVehicle)
	mux.HandleFunc("GET /v1/vehicles", h.listVehicles)
	mux.HandleFunc("GET /v1/vehicles/{id}", h.getVehicle)
	mux.HandleFunc("POST /v1/apps", h.uploadApp)
	mux.HandleFunc("GET /v1/apps", h.listApps)
	mux.HandleFunc("GET /v1/apps/{name}", h.getApp)
	mux.HandleFunc("POST /v1/deploy", h.deploy)
	mux.HandleFunc("POST /v1/deploy:batch", h.batchDeploy)
	mux.HandleFunc("POST /v1/uninstall", h.uninstall)
	mux.HandleFunc("POST /v1/uninstall:batch", h.batchUninstall)
	mux.HandleFunc("POST /v1/upgrade", h.upgrade)
	mux.HandleFunc("POST /v1/upgrade:batch", h.batchUpgrade)
	mux.HandleFunc("POST /v1/rollout", h.startRollout)
	mux.HandleFunc("GET /v1/rollouts", h.listRollouts)
	mux.HandleFunc("GET /v1/rollouts/{id}", h.getRollout)
	// {id} wildcards span the whole segment, so the :abort verb arrives
	// inside the path value and is parsed off by the handler.
	mux.HandleFunc("POST /v1/rollouts/{id}", h.postRollout)
	mux.HandleFunc("POST /v1/restore", h.restore)
	mux.HandleFunc("POST /v1/verify", h.verify)
	mux.HandleFunc("GET /v1/status", h.status)
	mux.HandleFunc("GET /v1/healthz", h.healthz)
	mux.HandleFunc("GET /v1/statz", h.statz)
	mux.HandleFunc("GET /v1/operations", h.listOperations)
	mux.HandleFunc("GET /v1/operations/{id}", h.getOperation)
	mux.HandleFunc("/v1/", h.notFound)

	return h.logMW(h.recoverMW(h.rateMW(h.limitMW(mux))))
}

type handler struct {
	svc     DeploymentService
	o       HandlerOptions
	limiter *rateLimiter
}

// statusRecorder captures the status line for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (h *handler) logMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		h.o.Logf("api: %s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

func (h *handler) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				h.o.Logf("api: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				h.writeError(w, Errorf(CodeInternal, "api: internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (h *handler) rateMW(next http.Handler) http.Handler {
	if h.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Readiness probes and monitoring scrapes are exempt:
		// orchestrators gate traffic on /v1/healthz, and a probe sharing
		// a NAT'd client key with API traffic must never see a healthy
		// server answer 429; /v1/statz is scraped on a fixed interval by
		// collectors that must keep observing exactly when the server is
		// saturated enough to rate-limit.
		if r.URL.Path != "/v1/healthz" && r.URL.Path != "/v1/statz" && !h.limiter.allow(h.o.ClientKey(r)) {
			h.writeError(w, Errorf(CodeResourceExhausted, "api: rate limit exceeded"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (h *handler) limitMW(next http.Handler) http.Handler {
	if h.o.MaxBodyBytes < 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, h.o.MaxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// WriteJSON writes v with the API content type; encode failures (the
// status line is already gone) go to logf, which may be nil. Shared by
// the v1 handler and the server's legacy shims so the write policy has
// one home.
func WriteJSON(w http.ResponseWriter, status int, v any, logf func(format string, args ...any)) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && logf != nil {
		logf("api: encoding response: %v", err)
	}
}

// DecodeJSON strictly decodes a request body into v (unknown fields
// rejected), returning a typed *Error on failure.
func DecodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return Errorf(CodeResourceExhausted, "api: request body over %d bytes", tooLarge.Limit)
		}
		return Errorf(CodeInvalidArgument, "api: bad request body: %v", err)
	}
	return nil
}

func (h *handler) writeJSON(w http.ResponseWriter, status int, v any) {
	WriteJSON(w, status, v, h.o.Logf)
}

func (h *handler) writeError(w http.ResponseWriter, err error) {
	e := AsError(err)
	h.writeJSON(w, HTTPStatus(e.Code), errorBody{Error: e})
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := DecodeJSON(r, v); err != nil {
		h.writeError(w, err)
		return false
	}
	return true
}

func pageOf(r *http.Request) (Page, error) {
	var p Page
	if raw := r.URL.Query().Get("pageSize"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return p, Errorf(CodeInvalidArgument, "api: bad pageSize %q", raw)
		}
		p.Size = n
	}
	p.Token = r.URL.Query().Get("pageToken")
	return p, nil
}

func (h *handler) notFound(w http.ResponseWriter, r *http.Request) {
	h.writeError(w, Errorf(CodeNotFound, "api: no such endpoint %s %s", r.Method, r.URL.Path))
}

func (h *handler) createUser(w http.ResponseWriter, r *http.Request) {
	var req CreateUserRequest
	if !h.decode(w, r, &req) {
		return
	}
	u, err := h.svc.CreateUser(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusCreated, u)
}

func (h *handler) getUser(w http.ResponseWriter, r *http.Request) {
	u, err := h.svc.GetUser(r.Context(), core.UserID(r.PathValue("id")))
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, u)
}

func (h *handler) bindVehicle(w http.ResponseWriter, r *http.Request) {
	var req BindVehicleRequest
	if !h.decode(w, r, &req) {
		return
	}
	vr, err := h.svc.BindVehicle(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusCreated, vr)
}

func (h *handler) listVehicles(w http.ResponseWriter, r *http.Request) {
	page, err := pageOf(r)
	if err != nil {
		h.writeError(w, err)
		return
	}
	list, err := h.svc.ListVehicles(r.Context(), page)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, list)
}

func (h *handler) getVehicle(w http.ResponseWriter, r *http.Request) {
	vd, err := h.svc.GetVehicle(r.Context(), core.VehicleID(r.PathValue("id")))
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, vd)
}

func (h *handler) uploadApp(w http.ResponseWriter, r *http.Request) {
	var app App
	if !h.decode(w, r, &app) {
		return
	}
	ref, err := h.svc.UploadApp(r.Context(), app)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusCreated, ref)
}

func (h *handler) listApps(w http.ResponseWriter, r *http.Request) {
	page, err := pageOf(r)
	if err != nil {
		h.writeError(w, err)
		return
	}
	list, err := h.svc.ListApps(r.Context(), page)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, list)
}

func (h *handler) getApp(w http.ResponseWriter, r *http.Request) {
	app, err := h.svc.GetApp(r.Context(), core.AppName(r.PathValue("name")))
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, app)
}

func (h *handler) deploy(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.Deploy(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) batchDeploy(w http.ResponseWriter, r *http.Request) {
	var req BatchDeployRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.BatchDeploy(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) batchUninstall(w http.ResponseWriter, r *http.Request) {
	var req BatchUninstallRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.BatchUninstall(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) upgrade(w http.ResponseWriter, r *http.Request) {
	var req UpgradeRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.Upgrade(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) batchUpgrade(w http.ResponseWriter, r *http.Request) {
	var req BatchUpgradeRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.BatchUpgrade(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) startRollout(w http.ResponseWriter, r *http.Request) {
	var req RolloutRequest
	if !h.decode(w, r, &req) {
		return
	}
	st, err := h.svc.StartRollout(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, st)
}

func (h *handler) listRollouts(w http.ResponseWriter, r *http.Request) {
	page, err := pageOf(r)
	if err != nil {
		h.writeError(w, err)
		return
	}
	list, err := h.svc.ListRollouts(r.Context(), page)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, list)
}

func (h *handler) getRollout(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.GetRollout(r.Context(), r.PathValue("id"))
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, st)
}

// postRollout dispatches the custom verbs of the rollout resource; the
// only one today is {id}:abort.
func (h *handler) postRollout(w http.ResponseWriter, r *http.Request) {
	id, verb, ok := strings.Cut(r.PathValue("id"), ":")
	if !ok || verb != "abort" || id == "" {
		h.writeError(w, Errorf(CodeInvalidArgument, "api: POST /v1/rollouts/{id}:abort is the only rollout verb"))
		return
	}
	st, err := h.svc.AbortRollout(r.Context(), id)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, st)
}

func (h *handler) uninstall(w http.ResponseWriter, r *http.Request) {
	var req UninstallRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.Uninstall(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) restore(w http.ResponseWriter, r *http.Request) {
	var req RestoreRequest
	if !h.decode(w, r, &req) {
		return
	}
	op, err := h.svc.Restore(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, op)
}

func (h *handler) verify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !h.decode(w, r, &req) {
		return
	}
	report, err := h.svc.Verify(r.Context(), req)
	if err != nil {
		h.writeError(w, err)
		return
	}
	// A rejected plan is a successful dry-run: the verdict travels in
	// the 200 body, not in the status line.
	h.writeJSON(w, http.StatusOK, report)
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	vehicle := core.VehicleID(r.URL.Query().Get("vehicle"))
	app := core.AppName(r.URL.Query().Get("app"))
	if vehicle == "" || app == "" {
		h.writeError(w, Errorf(CodeInvalidArgument, "api: vehicle and app query parameters required"))
		return
	}
	st, err := h.svc.Status(r.Context(), vehicle, app)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, st)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	hl, err := h.svc.Health(r.Context())
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, hl)
}

func (h *handler) statz(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.Statz(r.Context())
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, st)
}

func (h *handler) listOperations(w http.ResponseWriter, r *http.Request) {
	page, err := pageOf(r)
	if err != nil {
		h.writeError(w, err)
		return
	}
	list, err := h.svc.ListOperations(r.Context(), page)
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, list)
}

func (h *handler) getOperation(w http.ResponseWriter, r *http.Request) {
	op, err := h.svc.GetOperation(r.Context(), r.PathValue("id"))
	if err != nil {
		h.writeError(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, op)
}

// rateLimiter is a per-client token bucket with a hard cap on tracked
// clients: idle buckets are pruned first, and if every bucket is still
// active a random one is evicted, so memory stays bounded even under
// fleet-scale distinct-client load (an evicted client merely restarts
// with a fresh burst).
type rateLimiter struct {
	rate, burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

const maxBuckets = 4096

func newRateLimiter(rate, burst float64) *rateLimiter {
	return &rateLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

func (l *rateLimiter) allow(key string) bool {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.prune(now)
			for k := range l.buckets {
				if len(l.buckets) < maxBuckets {
					break
				}
				delete(l.buckets, k)
			}
		}
		b = &bucket{tokens: l.burst}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune drops buckets that have fully refilled; called with l.mu held.
func (l *rateLimiter) prune(now time.Time) {
	idle := time.Duration(float64(time.Second) * l.burst / l.rate)
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}
