package api

import (
	"context"

	"dynautosar/internal/core"
)

// Typed requests and responses of the v1 deployment-service API.

// CreateUserRequest registers a user account (user setup, paper
// section 3.2.2).
type CreateUserRequest struct {
	ID core.UserID `json:"id"`
}

// BindVehicleRequest registers a vehicle configuration and binds it to
// its owner.
type BindVehicleRequest struct {
	Owner core.UserID      `json:"owner"`
	Conf  core.VehicleConf `json:"conf"`
}

// DeployRequest asks for app to be deployed on vehicle.
type DeployRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	App     core.AppName   `json:"app"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// UninstallRequest asks for app to be removed from vehicle.
type UninstallRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	App     core.AppName   `json:"app"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// FleetSelector names a fleet by attributes instead of ids: the
// vehicles of an owner and/or a model. An empty Owner defaults to the
// requesting user; naming another user's fleet is refused.
type FleetSelector struct {
	Owner core.UserID `json:"owner,omitempty"`
	Model string      `json:"model,omitempty"`
}

// BatchDeployRequest asks for app to be deployed across a fleet, named
// either by an explicit vehicle list or by a selector (exactly one of
// the two). The call returns one parent Operation with a child
// operation per vehicle and partial-failure semantics: vehicles fail
// individually without aborting the rest of the batch.
type BatchDeployRequest struct {
	User     core.UserID      `json:"user"`
	Vehicles []core.VehicleID `json:"vehicles,omitempty"`
	Selector *FleetSelector   `json:"selector,omitempty"`
	App      core.AppName     `json:"app"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// BatchUninstallRequest asks for app to be removed across a fleet, with
// the same shape and semantics as BatchDeployRequest.
type BatchUninstallRequest struct {
	User     core.UserID      `json:"user"`
	Vehicles []core.VehicleID `json:"vehicles,omitempty"`
	Selector *FleetSelector   `json:"selector,omitempty"`
	App      core.AppName     `json:"app"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// UpgradeRequest asks for the installed app From to be live-upgraded in
// place to the stored app To on a running vehicle: the vehicle quiesces
// each plug-in (buffering its traffic), transfers exported state into
// the new version, health-probes it and rolls back to From on failure.
type UpgradeRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	From    core.AppName   `json:"from"`
	To      core.AppName   `json:"to"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// BatchUpgradeRequest asks for a live upgrade across a fleet, with the
// same fleet-naming shape and partial-failure semantics as
// BatchDeployRequest.
type BatchUpgradeRequest struct {
	User     core.UserID      `json:"user"`
	Vehicles []core.VehicleID `json:"vehicles,omitempty"`
	Selector *FleetSelector   `json:"selector,omitempty"`
	From     core.AppName     `json:"from"`
	To       core.AppName     `json:"to"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// RolloutWave selects how much of the fleet is cumulatively covered
// after one wave of a progressive rollout: an absolute vehicle count
// (Count > 0 wins) or a fraction of the resolved fleet in (0, 1].
// Resolved boundaries must be strictly increasing and the last wave
// must cover the whole fleet.
type RolloutWave struct {
	Count    int     `json:"count,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
}

// RolloutHealthPolicy is the per-wave promotion gate of a progressive
// rollout. The zero value is the strictest gate: any failed child
// upgrade (nack, disconnect, or vehicle-side probe rollback) trips it.
type RolloutHealthPolicy struct {
	// MaxFailureRate is the tolerated fraction of failed child upgrades
	// per wave, in [0, 1).
	MaxFailureRate float64 `json:"maxFailureRate,omitempty"`
	// MaxProbeFailures is the tolerated absolute number of vehicle-side
	// probe rollbacks (children failing with the "rollback" code) per
	// wave; probe failures are the strongest unhealthy signal, so they
	// gate separately from the overall rate.
	MaxProbeFailures int `json:"maxProbeFailures,omitempty"`
	// MaxAckP99Millis bounds the p99 settle latency of the wave's child
	// upgrades in milliseconds; 0 disables the latency gate.
	MaxAckP99Millis float64 `json:"maxAckP99Millis,omitempty"`
}

// RolloutRequest starts a health-gated progressive rollout: the fleet
// (explicit vehicle list or selector, exactly one) is bucketed
// deterministically by hashed vehicle id, split into canary waves, and
// upgraded From -> To one wave at a time; each wave must pass the
// health policy before the next launches, and a tripped gate (or an
// operator abort) downgrades every already-upgraded vehicle in reverse
// wave order. An empty Waves plan defaults to 1 vehicle -> 10% -> all.
type RolloutRequest struct {
	User     core.UserID          `json:"user"`
	Vehicles []core.VehicleID     `json:"vehicles,omitempty"`
	Selector *FleetSelector       `json:"selector,omitempty"`
	From     core.AppName         `json:"from"`
	To       core.AppName         `json:"to"`
	Waves    []RolloutWave        `json:"waves,omitempty"`
	Health   *RolloutHealthPolicy `json:"health,omitempty"`
}

// RolloutState is the lifecycle state of a progressive rollout.
type RolloutState string

const (
	// RolloutRunning: waves are executing or awaiting promotion.
	RolloutRunning RolloutState = "running"
	// RolloutRollingBack: the gate tripped or the operator aborted;
	// already-upgraded vehicles are being downgraded.
	RolloutRollingBack RolloutState = "rolling_back"
	// RolloutSucceeded: every wave promoted; the fleet runs the new
	// version.
	RolloutSucceeded RolloutState = "succeeded"
	// RolloutRolledBack: the downgrade completed; Error carries why
	// ("rollout_unhealthy" or "rollout_aborted").
	RolloutRolledBack RolloutState = "rolled_back"
)

// RolloutWaveStatus reports one wave's execution. BatchOp is the batch
// upgrade parent the wave ran as (its children carry per-vehicle
// detail); RollbackOp the batch that downgraded the wave, when the
// rollout rolled back.
type RolloutWaveStatus struct {
	// Targets is the number of vehicles in this wave (bucket order).
	Targets int `json:"targets"`
	// Started reports that the wave's batch was launched.
	Started bool `json:"started,omitempty"`
	// Promoted reports that the wave passed its health gate.
	Promoted   bool   `json:"promoted,omitempty"`
	BatchOp    string `json:"batchOp,omitempty"`
	RollbackOp string `json:"rollbackOp,omitempty"`
	// Succeeded/Failed count the wave's child upgrades by outcome;
	// ProbeFailures counts children that failed with the "rollback"
	// code (vehicle-side health-probe rollbacks), a subset of Failed.
	Succeeded     int `json:"succeeded,omitempty"`
	Failed        int `json:"failed,omitempty"`
	ProbeFailures int `json:"probeFailures,omitempty"`
	// AckP99Millis is the p99 settle latency of the wave's children.
	AckP99Millis float64 `json:"ackP99Millis,omitempty"`
}

// RolloutStatus is the rollout resource: POST /v1/rollout returns one
// immediately and GET /v1/rollouts/{id} reports wave progress.
type RolloutStatus struct {
	ID    string       `json:"id"`
	User  core.UserID  `json:"user"`
	From  core.AppName `json:"from"`
	To    core.AppName `json:"to"`
	State RolloutState `json:"state"`
	// Vehicles is the resolved fleet in deterministic bucket order;
	// waves are contiguous prefixes of it.
	Vehicles []core.VehicleID    `json:"vehicles,omitempty"`
	Waves    []RolloutWaveStatus `json:"waves"`
	// CurrentWave indexes the wave executing (or rolling back); equal
	// to len(Waves) when every wave promoted.
	CurrentWave int `json:"currentWave"`
	// GateReason is why the rollout left the forward path: the tripped
	// health gate's description, or the operator abort.
	GateReason string `json:"gateReason,omitempty"`
	// Error carries the terminal failure code ("rollout_unhealthy" or
	// "rollout_aborted"); nil while running and on success.
	Error *Error `json:"error,omitempty"`
	// Done reports whether the rollout reached a terminal state.
	Done bool `json:"done"`
}

// RolloutList is one page of rollouts, oldest first.
type RolloutList struct {
	Rollouts      []RolloutStatus `json:"rollouts"`
	NextPageToken string          `json:"nextPageToken,omitempty"`
}

// VerifyRequest asks the static plan verifier to dry-run an operation:
// plan it exactly as Deploy/Uninstall/Upgrade would, walk every
// intermediate configuration of the reconfiguration path, and report —
// without pushing anything to the vehicle or reserving any state. Kind
// selects the operation; App names the app to deploy or uninstall (the
// installed app for upgrades), To the upgrade target.
type VerifyRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	Kind    OperationKind  `json:"kind"`
	App     core.AppName   `json:"app"`
	To      core.AppName   `json:"to,omitempty"`
}

// VerifyReport is the verdict of a verification dry-run. OK reports
// that every intermediate configuration satisfies the invariant
// catalogue; Steps lists the plan's step path. On rejection Error
// carries the stable code (usually "unsafe_plan") and the minimal
// counterexample path in its message.
type VerifyReport struct {
	OK    bool     `json:"ok"`
	Steps []string `json:"steps,omitempty"`
	Error *Error   `json:"error,omitempty"`
}

// RestoreRequest asks for the plug-ins of a replaced ECU to be
// re-installed with their recorded port ids.
type RestoreRequest struct {
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	ECU     core.ECUID     `json:"ecu"`
	// IdempotencyKey, when non-empty, makes the create idempotent: a
	// retry carrying the same key returns the originally created
	// operation instead of creating a second one. Retrying transports
	// (see NewRetryClient) fill it automatically.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// AppRef names a stored application.
type AppRef struct {
	Name core.AppName `json:"name"`
}

// VehicleDetail is a vehicle record together with its InstalledAPP
// rows.
type VehicleDetail struct {
	VehicleRecord
	Installed []InstalledApp `json:"installed"`
}

// AppList is one page of application names.
type AppList struct {
	Apps          []core.AppName `json:"apps"`
	NextPageToken string         `json:"nextPageToken,omitempty"`
}

// VehicleList is one page of vehicle records.
type VehicleList struct {
	Vehicles      []VehicleRecord `json:"vehicles"`
	NextPageToken string          `json:"nextPageToken,omitempty"`
}

// OperationList is one page of operations, oldest first.
type OperationList struct {
	Operations    []Operation `json:"operations"`
	NextPageToken string      `json:"nextPageToken,omitempty"`
}

// Health is the GET /v1/healthz body: the readiness signal orchestrators
// gate traffic on, plus the durable-state recovery counters. A server
// answers only after recovery completed, so a responding endpoint
// reports "ok" — unless the journal has failed (disk gone, sync
// errors), in which case Status is "degraded" and JournalError carries
// the reason: the server still serves reads but no longer persists.
type Health struct {
	Status string `json:"status"`
	// JournalError is the journal's sticky failure, "" while healthy.
	JournalError string `json:"journalError,omitempty"`
	// Journal reports whether durable state is enabled (-data-dir set).
	Journal bool `json:"journal"`
	// RecoveredRecords counts journal records replayed at start-up.
	RecoveredRecords int `json:"recoveredRecords"`
	// InterruptedOperations counts operations that were in flight at
	// crash time and were settled as failed/interrupted during recovery.
	InterruptedOperations int `json:"interruptedOperations"`
	// SnapshotAge is the age of the newest snapshot in seconds, -1 when
	// no snapshot exists (journal disabled or none taken yet).
	SnapshotAge float64 `json:"snapshotAge"`
	// TornTail reports that recovery dropped a truncated final record —
	// the expected shape of a crash mid-append, kept visible for
	// diagnostics.
	TornTail bool `json:"tornTail,omitempty"`

	// Federation fields (empty on an unsharded server). Shard is the
	// shard this server belongs to, Role is "leader" or "follower",
	// ShardEpoch the leadership epoch the current leader serves under.
	Shard      string `json:"shard,omitempty"`
	Role       string `json:"role,omitempty"`
	ShardEpoch uint64 `json:"shardEpoch,omitempty"`
	// Replication is the leader's per-follower shipping status, nil on
	// followers and unsharded servers.
	Replication []FollowerHealth `json:"replication,omitempty"`
}

// FollowerHealth is one follower's replication position as the leader
// sees it: how far shipping got, how far the follower confirmed, and
// the byte lag between the leader's durable watermark and that
// confirmation.
type FollowerHealth struct {
	Name              string `json:"name"`
	LastShippedGen    uint64 `json:"lastShippedGen"`
	LastShippedOffset int64  `json:"lastShippedOffset"`
	AckedGen          uint64 `json:"ackedGen"`
	AckedOffset       int64  `json:"ackedOffset"`
	LagBytes          int64  `json:"lagBytes"`
	Resyncs           uint64 `json:"resyncs"`
	LastError         string `json:"lastError,omitempty"`
}

// Statz is the GET /v1/statz body: cheap monotonic counters for
// monitoring and load generators (the fleet simulator's measurement
// layer reads these instead of poking server internals). All counters
// are "since process start" — they reset on restart, unlike the
// journal-backed state behind /v1/healthz.
type Statz struct {
	// OpsCreated counts async operations registered (batch children
	// included); OpsOpen is how many are currently non-terminal.
	OpsCreated uint64 `json:"opsCreated"`
	OpsOpen    int    `json:"opsOpen"`
	// OpsSettled counts terminal operations by outcome: "ok" for
	// succeeded, the stable error code for failures that carry one,
	// "failed" for nack-only failures.
	OpsSettled map[string]uint64 `json:"opsSettled,omitempty"`
	// PendingAcks is the current depth of the push queue: frames on
	// vehicle links whose acknowledgement has not arrived.
	PendingAcks int `json:"pendingAcks"`
	// VehiclesConnected and PushesSent describe the pusher: live
	// identified links, and downstream frames written since start.
	VehiclesConnected int    `json:"vehiclesConnected"`
	PushesSent        uint64 `json:"pushesSent"`
	// Journal counters (zero when running memory-only): records
	// flushed, group commits (write+fsync pairs, the "syncs"), records
	// since the last snapshot, and the snapshot generation.
	JournalRecords       uint64 `json:"journalRecords"`
	JournalCommits       uint64 `json:"journalCommits"`
	JournalSinceSnapshot int    `json:"journalSinceSnapshot"`
	JournalGen           uint64 `json:"journalGen"`
	// Federation counters (zero/empty on an unsharded server): the
	// shard identity and role, the leadership epoch, the worst
	// per-follower replication lag in bytes, and the newest segment
	// generation handed to any follower.
	Shard              string `json:"shard,omitempty"`
	Role               string `json:"role,omitempty"`
	ShardEpoch         uint64 `json:"shardEpoch,omitempty"`
	ReplLagBytes       int64  `json:"replLagBytes,omitempty"`
	LastSegmentShipped uint64 `json:"lastSegmentShipped,omitempty"`
}

// DeploymentService is the transport-agnostic core of the trusted
// server's public surface: every operation group of paper section 3.2.2
// (user setup, upload, (re)deployment) plus the async operations
// resource. The server core implements it; the /v1 HTTP layer and the
// typed client are generated over it, so in-process and remote callers
// share one contract.
//
// Deploy, Uninstall and Restore are asynchronous: they validate cheap
// preconditions, return an Operation immediately and complete it as
// vehicle acknowledgements arrive. Errors carry stable codes (*Error).
type DeploymentService interface {
	// CreateUser registers an account.
	CreateUser(ctx context.Context, req CreateUserRequest) (User, error)
	// GetUser returns an account and its bound vehicles.
	GetUser(ctx context.Context, id core.UserID) (User, error)

	// BindVehicle registers a vehicle conf under its owner.
	BindVehicle(ctx context.Context, req BindVehicleRequest) (VehicleRecord, error)
	// GetVehicle returns a vehicle with its installed apps.
	GetVehicle(ctx context.Context, id core.VehicleID) (VehicleDetail, error)
	// ListVehicles pages through all vehicle records, ordered by id.
	ListVehicles(ctx context.Context, page Page) (VehicleList, error)

	// UploadApp stores a validated application.
	UploadApp(ctx context.Context, app App) (AppRef, error)
	// GetApp returns a stored application.
	GetApp(ctx context.Context, name core.AppName) (App, error)
	// ListApps pages through stored application names, sorted.
	ListApps(ctx context.Context, page Page) (AppList, error)

	// Deploy starts an async deployment and returns its operation.
	Deploy(ctx context.Context, req DeployRequest) (Operation, error)
	// Uninstall starts an async uninstallation.
	Uninstall(ctx context.Context, req UninstallRequest) (Operation, error)
	// Upgrade starts an async live in-place upgrade; a vehicle-side
	// rollback settles the operation failed with the stable "rollback"
	// error code.
	Upgrade(ctx context.Context, req UpgradeRequest) (Operation, error)
	// Restore starts an async restore of a replaced ECU.
	Restore(ctx context.Context, req RestoreRequest) (Operation, error)

	// Verify dry-runs an operation through the static plan verifier and
	// returns the verdict; nothing is pushed or reserved. The report is
	// returned with a nil error even when the plan is rejected — the
	// rejection travels inside the report — so callers can distinguish
	// "unsafe plan" from "request failed".
	Verify(ctx context.Context, req VerifyRequest) (VerifyReport, error)

	// BatchDeploy starts an async fleet-wide deployment and returns its
	// parent operation; per-vehicle progress rides on child operations.
	BatchDeploy(ctx context.Context, req BatchDeployRequest) (Operation, error)
	// BatchUninstall starts an async fleet-wide uninstallation.
	BatchUninstall(ctx context.Context, req BatchUninstallRequest) (Operation, error)
	// BatchUpgrade starts an async fleet-wide live upgrade.
	BatchUpgrade(ctx context.Context, req BatchUpgradeRequest) (Operation, error)

	// StartRollout starts a health-gated progressive rollout and
	// returns its status resource; waves execute asynchronously.
	StartRollout(ctx context.Context, req RolloutRequest) (RolloutStatus, error)
	// GetRollout returns one rollout by id.
	GetRollout(ctx context.Context, id string) (RolloutStatus, error)
	// AbortRollout requests a fleet rollback of a running rollout; a
	// terminal rollout is refused with "failed_precondition".
	AbortRollout(ctx context.Context, id string) (RolloutStatus, error)
	// ListRollouts pages through rollouts, oldest first.
	ListRollouts(ctx context.Context, page Page) (RolloutList, error)

	// Status reports per-app ack progress on a vehicle.
	Status(ctx context.Context, vehicle core.VehicleID, app core.AppName) (OpStatus, error)
	// Health reports readiness and the durable-state recovery counters.
	Health(ctx context.Context) (Health, error)
	// Statz reports the monitoring counters (operations, pushes,
	// journal) since process start.
	Statz(ctx context.Context) (Statz, error)
	// GetOperation returns one async operation by id.
	GetOperation(ctx context.Context, id string) (Operation, error)
	// ListOperations pages through operations, oldest first.
	ListOperations(ctx context.Context, page Page) (OperationList, error)
}
