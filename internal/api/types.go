// Package api defines the versioned, transport-agnostic surface of the
// trusted server's deployment service (paper section 3.2.2): the data
// model shared by every transport, typed request/response DTOs, a
// structured error model with stable codes, the DeploymentService
// interface that the server core implements, a /v1 HTTP handler
// generated over that interface, and a typed client usable both
// in-process and over HTTP. Deployment mutations — deploy, uninstall,
// live upgrade, restore, and their fleet-scale batch forms — are
// asynchronous: each returns an Operation that settles as the vehicle
// acknowledges, with failures carrying stable codes (a vehicle-side
// upgrade rollback surfaces as "rollback").
package api

import (
	"fmt"

	"dynautosar/internal/core"
	"dynautosar/internal/plugin"
)

// The data model of paper Figure 2: User and Vehicle on the user side,
// APP with its binaries and SW confs on the developer side, the
// InstalledAPP table tying them together. These are the canonical wire
// types; internal/server re-exports them as aliases.

// User is one account on the server.
type User struct {
	ID core.UserID `json:"id"`
	// Vehicles bound to this user.
	Vehicles []core.VehicleID `json:"vehicles"`
}

// VehicleRecord is the server's knowledge of one vehicle.
type VehicleRecord struct {
	ID core.VehicleID `json:"id"`
	// Owner is the bound user.
	Owner core.UserID `json:"owner"`
	// Conf is the uploaded HW conf + SystemSW conf.
	Conf core.VehicleConf `json:"conf"`
}

// App is one application in the APP database: binaries plus per-model
// SW confs.
type App struct {
	Name     core.AppName    `json:"name"`
	Binaries []plugin.Binary `json:"binaries"`
	Confs    []SWConf        `json:"confs"`
}

// Binary returns the named plug-in binary of the app.
func (a App) Binary(name core.PluginName) (plugin.Binary, bool) {
	for _, b := range a.Binaries {
		if b.Manifest.Name == name {
			return b, true
		}
	}
	return plugin.Binary{}, false
}

// ConfFor returns the SW conf matching a vehicle model.
func (a App) ConfFor(model string) (SWConf, bool) {
	for _, c := range a.Confs {
		if c.Model == model {
			return c, true
		}
	}
	return SWConf{}, false
}

// SWConf describes, for one vehicle model, how an APP's plug-ins are
// distributed over the vehicle and how their ports are connected (paper
// section 3.2.1: "each APP comes with one or several configurations,
// which describe for various vehicle models how the plug-ins should be
// distributed in the vehicle and how the different plug-in ports should
// be connected").
type SWConf struct {
	// Model selects the vehicle models this configuration fits.
	Model string `json:"model"`
	// Deployments place each plug-in of the APP on a plug-in SW-C.
	Deployments []Deployment `json:"deployments"`
}

// Deployment places one plug-in and declares its port connections.
type Deployment struct {
	Plugin core.PluginName `json:"plugin"`
	ECU    core.ECUID      `json:"ecu"`
	SWC    core.SWCID      `json:"swc"`
	// Connections wire the plug-in's ports; ports without a connection
	// become PIRTE-direct ("P0-") posts.
	Connections []PortConnection `json:"connections"`
}

// PortConnection wires one developer-named plug-in port. Exactly one of
// the target fields is used:
//
//   - Virtual: a named virtual port on the same SW-C (type I/III), the
//     paper's "connected to the SpeedReq virtual port" case;
//   - RemotePlugin/RemotePort: a port of another plug-in; same SW-C
//     becomes a peer link, another SW-C goes through the type II mux with
//     the recipient id attached;
//   - External: an off-board resource, generating an ECC entry.
type PortConnection struct {
	Port string `json:"port"`

	Virtual string `json:"virtual,omitempty"`

	RemotePlugin core.PluginName `json:"remotePlugin,omitempty"`
	RemotePort   string          `json:"remotePort,omitempty"`

	External *ExternalSpec `json:"external,omitempty"`
}

// ExternalSpec names an off-board resource and the message id used on
// its link.
type ExternalSpec struct {
	Endpoint  string `json:"endpoint"`
	MessageID string `json:"messageId"`
}

// Validate checks structural consistency of the configuration.
func (c SWConf) Validate() error {
	if c.Model == "" {
		return Errorf(CodeInvalidArgument, "api: SW conf without vehicle model")
	}
	if len(c.Deployments) == 0 {
		return Errorf(CodeInvalidArgument, "api: SW conf for %q has no deployments", c.Model)
	}
	seen := make(map[core.PluginName]bool, len(c.Deployments))
	for _, d := range c.Deployments {
		if d.Plugin == "" || d.ECU == "" || d.SWC == "" {
			return Errorf(CodeInvalidArgument, "api: SW conf for %q: incomplete deployment %+v", c.Model, d)
		}
		if seen[d.Plugin] {
			return Errorf(CodeInvalidArgument, "api: SW conf for %q deploys %s twice", c.Model, d.Plugin)
		}
		seen[d.Plugin] = true
		ports := make(map[string]bool, len(d.Connections))
		for _, conn := range d.Connections {
			if conn.Port == "" {
				return Errorf(CodeInvalidArgument, "api: SW conf for %q: connection without port on %s", c.Model, d.Plugin)
			}
			if ports[conn.Port] {
				return Errorf(CodeInvalidArgument, "api: SW conf for %q: port %q of %s connected twice",
					c.Model, conn.Port, d.Plugin)
			}
			ports[conn.Port] = true
			targets := 0
			if conn.Virtual != "" {
				targets++
			}
			if conn.RemotePlugin != "" || conn.RemotePort != "" {
				if conn.RemotePlugin == "" || conn.RemotePort == "" {
					return Errorf(CodeInvalidArgument, "api: SW conf for %q: incomplete remote target on %s.%s",
						c.Model, d.Plugin, conn.Port)
				}
				targets++
			}
			if conn.External != nil {
				if conn.External.Endpoint == "" || conn.External.MessageID == "" {
					return Errorf(CodeInvalidArgument, "api: SW conf for %q: incomplete external target on %s.%s",
						c.Model, d.Plugin, conn.Port)
				}
				targets++
			}
			if targets != 1 {
				return Errorf(CodeInvalidArgument, "api: SW conf for %q: port %s.%s needs exactly one target, has %d",
					c.Model, d.Plugin, conn.Port, targets)
			}
		}
	}
	return nil
}

// Deployment returns the deployment of a plug-in.
func (c SWConf) Deployment(name core.PluginName) (Deployment, bool) {
	for _, d := range c.Deployments {
		if d.Plugin == name {
			return d, true
		}
	}
	return Deployment{}, false
}

// InstalledPlugin records where one plug-in of an installed APP lives
// and which port ids it received.
type InstalledPlugin struct {
	Plugin core.PluginName `json:"plugin"`
	ECU    core.ECUID      `json:"ecu"`
	SWC    core.SWCID      `json:"swc"`
	PIC    core.PIC        `json:"pic"`
	// Acked becomes true when the vehicle acknowledged the installation.
	Acked bool `json:"acked"`
}

// InstalledApp is one row of the InstalledAPP table.
type InstalledApp struct {
	App     core.AppName      `json:"app"`
	Vehicle core.VehicleID    `json:"vehicle"`
	Plugins []InstalledPlugin `json:"plugins"`
}

// Complete reports whether every plug-in has been acknowledged.
func (ia InstalledApp) Complete() bool {
	for _, p := range ia.Plugins {
		if !p.Acked {
			return false
		}
	}
	return true
}

// OpStatus reports the progress of the most recent operation on an app
// (the legacy /status shape, kept on v1 for per-app progress).
type OpStatus struct {
	App      core.AppName `json:"app"`
	Total    int          `json:"total"`
	Acked    int          `json:"acked"`
	Failures []string     `json:"failures"`
}

// Complete reports whether all operations acknowledged successfully.
func (st OpStatus) Complete() bool { return st.Acked == st.Total && len(st.Failures) == 0 }

// OperationKind names what an async operation does.
type OperationKind string

const (
	OpDeploy    OperationKind = "deploy"
	OpUninstall OperationKind = "uninstall"
	OpRestore   OperationKind = "restore"
	// OpUpgrade is a live in-place upgrade: the installed App is
	// hot-swapped to ToApp on the running vehicle with state carried
	// over, rolling back to App if the new version fails its health
	// probe.
	OpUpgrade OperationKind = "upgrade"
	// OpBatchDeploy/OpBatchUninstall/OpBatchUpgrade are fleet-scale
	// parents: one child operation of the matching singular kind runs
	// per target vehicle.
	OpBatchDeploy    OperationKind = "deploy:batch"
	OpBatchUninstall OperationKind = "uninstall:batch"
	OpBatchUpgrade   OperationKind = "upgrade:batch"
)

// OperationState is the lifecycle state of an async operation.
type OperationState string

const (
	// StatePending: accepted, packages not yet pushed.
	StatePending OperationState = "pending"
	// StateRunning: packages pushed, awaiting vehicle acknowledgements.
	StateRunning OperationState = "running"
	// StateSucceeded: every push acknowledged successfully.
	StateSucceeded OperationState = "succeeded"
	// StateFailed: launch failed or at least one push was nacked.
	StateFailed OperationState = "failed"
)

// Operation is the async-operation resource: POST /v1/deploy and
// friends return one immediately, and GET /v1/operations/{id} reports
// its ack/nack progress.
type Operation struct {
	ID      string         `json:"id"`
	Kind    OperationKind  `json:"kind"`
	User    core.UserID    `json:"user"`
	Vehicle core.VehicleID `json:"vehicle"`
	App     core.AppName   `json:"app,omitempty"`
	// ToApp is the target of an upgrade operation; App is the version
	// being replaced.
	ToApp core.AppName   `json:"toApp,omitempty"`
	ECU   core.ECUID     `json:"ecu,omitempty"`
	State OperationState `json:"state"`
	// Total counts pushed packages; Acked counts successful
	// acknowledgements.
	Total int `json:"total"`
	Acked int `json:"acked"`
	// Failures lists nack reasons, one per failed plug-in; on a batch
	// parent each entry is prefixed with the vehicle it belongs to.
	Failures []string `json:"failures,omitempty"`
	// Error is set when the operation failed before or during launch.
	Error *Error `json:"error,omitempty"`
	// Done reports whether the operation reached a terminal state.
	Done bool `json:"done"`
	// IdempotencyKey echoes the key the creating request carried, ""
	// for none. The server registers each key exactly once — journaled
	// with the op_created record, so the claim survives crashes and
	// shard failover — and answers a repeated key with this same
	// operation instead of creating a duplicate.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`

	// Batch fields. A batch parent fans out over Vehicles with one child
	// operation each; a child points back through Parent. The parent's
	// Total/Acked/Failures aggregate over every child, and the
	// vehicle counters are its partial-failure report: the parent
	// succeeds only when every child did.

	// Vehicles is the resolved per-vehicle target list of a batch.
	Vehicles []core.VehicleID `json:"vehicles,omitempty"`
	// Parent is the owning batch operation id ("" for top-level).
	Parent string `json:"parent,omitempty"`
	// Children lists the per-vehicle child operation ids of a batch, in
	// Vehicles order.
	Children []string `json:"children,omitempty"`
	// VehiclesSucceeded counts children that reached succeeded.
	VehiclesSucceeded int `json:"vehiclesSucceeded,omitempty"`
	// VehiclesFailed counts children that reached failed.
	VehiclesFailed int `json:"vehiclesFailed,omitempty"`
}

// Page selects one page of a list endpoint. A zero Page asks for the
// first page with the default size.
type Page struct {
	// Size caps the number of items returned; 0 means the default.
	Size int
	// Token continues a previous listing; it is the NextPageToken of
	// the prior response.
	Token string
}

const (
	defaultPageSize = 50
	maxPageSize     = 500
)

// Paginate slices a key-sorted item list according to a page request;
// key must be strictly increasing over items. It returns the page and
// the token of the next one ("" when exhausted).
func Paginate[T any](items []T, page Page, key func(T) string) ([]T, string) {
	size := page.Size
	if size <= 0 {
		size = defaultPageSize
	}
	if size > maxPageSize {
		size = maxPageSize
	}
	start := 0
	if page.Token != "" {
		for i, it := range items {
			if key(it) > page.Token {
				start = i
				break
			}
			start = i + 1
		}
	}
	end := start + size
	if end >= len(items) {
		return items[start:], ""
	}
	return items[start:end], key(items[end-1])
}

func (p Page) String() string { return fmt.Sprintf("{size=%d token=%q}", p.Size, p.Token) }
